//! The unified superstep engine: one BFS lifecycle over a pluggable
//! [`Transport`].
//!
//! The paper's contribution is a single traversal pipeline —
//! direction-optimized supersteps, contention-free shuffling, group
//! relay — that is independent of which fabric carries the messages.
//! [`SuperstepEngine`] owns that pipeline once: construction and 1-D
//! partitioning, the [`BfsConfig`] + [`crate::faults::RetryPolicy`]
//! handling, the Top-Down/Bottom-Up policy loop, fault-plan arming and
//! degraded-level tracking, the `Option<&Tracer>` span taxonomy
//! (gen/handle/bucket/deliver/relay/level/hub-gather), and the single
//! [`crate::instrument::absorb_exchange`] counter-merge path. The
//! fabric-specific residue — how one phase's records physically move —
//! lives behind the [`Transport`] trait, implemented by [`SharedMem`]
//! (the pooled-arena fabric of the original `ThreadedCluster`) and
//! [`Channels`] (the crossbeam mesh of the original `ChannelCluster`).
//!
//! Construction goes through [`ClusterBuilder`]:
//!
//! ```
//! use swbfs_core::engine::{Channels, ClusterBuilder};
//! use swbfs_core::BfsConfig;
//! use sw_graph::{generate_kronecker, KroneckerConfig};
//!
//! let el = generate_kronecker(&KroneckerConfig::graph500(10, 1));
//! let cfg = BfsConfig::threaded_small(2);
//! // Default shared-memory fabric…
//! let mut bfs = ClusterBuilder::new(&el, 4, cfg).build().unwrap();
//! // …or any other transport, same lifecycle.
//! let mut over_channels = ClusterBuilder::new(&el, 4, cfg)
//!     .transport(Channels::new())
//!     .build()
//!     .unwrap();
//! assert_eq!(
//!     bfs.run(1).unwrap().parents,
//!     over_channels.run(1).unwrap().parents,
//! );
//! ```

#![deny(missing_docs)]

mod channels;
mod shared_mem;
#[cfg(unix)]
pub mod socket;
mod transport;

pub use channels::Channels;
pub use shared_mem::SharedMem;
#[cfg(unix)]
pub use socket::{RankTelemetry, SocketTransport};
pub use transport::Transport;

use crate::config::BfsConfig;
use crate::error::ExecError;
use crate::exchange::{Codec, ExchangeStats};
use crate::faults::{FaultPlan, FaultSession, InjectionEvent};
use crate::hubs::{gather_hub_level, HubState};
use crate::instrument as ins;
use crate::messages::EdgeRec;
use crate::modules::{
    backward_generator, backward_handler, forward_generator, forward_handler, ModuleStats,
    Outboxes,
};
use crate::policy::{Direction, PolicyInputs, TraversalPolicy};
use crate::rank::RankState;
use crate::result::{BfsOutput, LevelStats};
use crate::shuffling::check_chip_feasibility;
use crate::NO_PARENT;
use rayon::prelude::*;
use std::path::{Path, PathBuf};
use sw_arch::ChipConfig;
use sw_graph::hub::HubSet;
use sw_graph::store::{partition_path, PartitionMeta};
use sw_graph::{Bitmap, EdgeList, GraphStore, Partition1D, StorageBackend, StoreManifest, Vid};
use sw_net::GroupLayout;
use sw_trace::{CounterSet, Tracer, NO_LEVEL};

/// Where a builder gets its graph: the classic in-memory edge list, or
/// a persisted store directory whose partitions open as zero-copy views.
enum Source<'a> {
    /// Partition and build from an edge list (the cold-build path).
    Edges(&'a EdgeList),
    /// Open `part-NNNNN.swgs` files under a directory written by
    /// [`SuperstepEngine::persist_store`] (the restart path).
    Store { dir: PathBuf, backend: StorageBackend },
}

/// Builds a [`SuperstepEngine`] over a chosen [`Transport`].
///
/// `ClusterBuilder::new(el, ranks, cfg)` starts on the default
/// [`SharedMem`] fabric; [`ClusterBuilder::transport`] swaps in any
/// other. Tracers and fault plans can be armed up front or later via
/// the engine's setters.
pub struct ClusterBuilder<'a, T: Transport = SharedMem> {
    source: Source<'a>,
    num_ranks: u32,
    cfg: BfsConfig,
    tracer: Option<Tracer>,
    fault_plan: Option<FaultPlan>,
    transport: T,
}

impl<'a> ClusterBuilder<'a, SharedMem> {
    /// A builder over `el` partitioned across `num_ranks` ranks, on the
    /// default shared-memory transport.
    pub fn new(el: &'a EdgeList, num_ranks: u32, cfg: BfsConfig) -> Self {
        Self {
            source: Source::Edges(el),
            num_ranks,
            cfg,
            tracer: None,
            fault_plan: None,
            transport: SharedMem::new(),
        }
    }
}

impl ClusterBuilder<'static, SharedMem> {
    /// A builder over a persisted store directory (written by
    /// [`SuperstepEngine::persist_store`]): the rank count comes from
    /// the manifest and each rank's partition file opens as zero-copy
    /// views — `mmap`-backed by default (see
    /// [`ClusterBuilder::storage`]) — instead of rebuilding from edges.
    ///
    /// The store is a *sealed* adjacency, so `cfg` must request exactly
    /// the preparation that was persisted (`degree_ordered_adjacency`,
    /// `compress_hub_rows`, `hub_compress_min_degree`); [`build`]
    /// refuses a disagreement rather than traversing a graph the config
    /// mis-describes.
    ///
    /// [`build`]: ClusterBuilder::build
    pub fn from_store_dir(dir: impl Into<PathBuf>, cfg: BfsConfig) -> Self {
        Self {
            source: Source::Store {
                dir: dir.into(),
                backend: StorageBackend::Mapped,
            },
            num_ranks: 0, // manifest-authoritative; unused for stores
            cfg,
            tracer: None,
            fault_plan: None,
            transport: SharedMem::new(),
        }
    }
}

impl<'a, T: Transport> ClusterBuilder<'a, T> {
    /// Swaps the message fabric the engine will run over.
    pub fn transport<U: Transport>(self, transport: U) -> ClusterBuilder<'a, U> {
        ClusterBuilder {
            source: self.source,
            num_ranks: self.num_ranks,
            cfg: self.cfg,
            tracer: self.tracer,
            fault_plan: self.fault_plan,
            transport,
        }
    }

    /// Picks the storage backend for a store-directory source ([`Heap`]
    /// copies once into aligned buffers, [`Mapped`] — the default — maps
    /// the files in place). No effect on an edge-list source.
    ///
    /// [`Heap`]: StorageBackend::Heap
    /// [`Mapped`]: StorageBackend::Mapped
    #[must_use]
    pub fn storage(mut self, backend: StorageBackend) -> Self {
        if let Source::Store { backend: b, .. } = &mut self.source {
            *b = backend;
        }
        self
    }

    /// Swaps in the multi-process socket fabric (Unix-domain sockets,
    /// one `swbfs-rankd` process per rank). Shorthand for
    /// `.transport(SocketTransport::unix())`; use
    /// [`SocketTransport::tcp`] via [`ClusterBuilder::transport`] for
    /// the TCP flavour.
    #[cfg(unix)]
    pub fn socket(self) -> ClusterBuilder<'a, SocketTransport> {
        self.transport(SocketTransport::unix())
    }

    /// Arms a span tracer ([`Tracer::for_ranks`] lane convention).
    #[must_use]
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Arms a deterministic fault schedule.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builds the engine: validates the configuration, partitions the
    /// graph, builds per-rank state and the distributed hub selection,
    /// and sets the transport up for the job size.
    pub fn build(self) -> Result<SuperstepEngine<T>, ExecError> {
        let mut engine = match self.source {
            Source::Edges(el) => {
                SuperstepEngine::with_transport(el, self.num_ranks, self.cfg, self.transport)?
            }
            Source::Store { dir, backend } => {
                SuperstepEngine::from_store_with_transport(&dir, backend, self.cfg, self.transport)?
            }
        };
        engine.set_tracer(self.tracer);
        engine.set_fault_plan(self.fault_plan);
        Ok(engine)
    }

    /// [`ClusterBuilder::build`] through the *distributed* construction
    /// path (Graph500 step 3 as the machine runs it): generator chunks
    /// are shuffled to endpoint owners over the configured messaging
    /// mode before the local CSR builds. Functionally identical to
    /// [`ClusterBuilder::build`]; also returns the construction traffic.
    pub fn build_distributed(self) -> Result<(SuperstepEngine<T>, ExchangeStats), ExecError> {
        let el = match &self.source {
            Source::Edges(el) => *el,
            Source::Store { .. } => {
                return Err(ExecError::BadSetup(
                    "distributed construction shuffles generator chunks, so it needs an \
                     edge-list source; a persisted store is already partitioned — use build()"
                        .into(),
                ))
            }
        };
        let messaging = self.cfg.messaging;
        let mut engine = self.build()?;
        let built = crate::construction::build_distributed(
            el,
            &engine.part,
            &engine.layout,
            messaging,
        );
        for (rank, csr) in built.csrs.into_iter().enumerate() {
            debug_assert_eq!(csr, engine.ranks[rank].csr);
            engine.ranks[rank].csr = csr;
        }
        Ok((engine, built.stats))
    }
}

/// The one BFS lifecycle, generic over the message fabric.
///
/// Every run executes the Figure 1 module graph level-synchronously:
/// the policy decides the direction from global sums, generators fill
/// per-source outboxes in parallel, the [`Transport`] moves the records
/// (under the fault session's deterministic schedule when armed),
/// handlers apply them, and the replicated hub bitmaps are re-gathered.
/// Statistics flatten through the single
/// [`crate::instrument::absorb_exchange`] merge path regardless of
/// fabric, which is what keeps the counter key sets — and, on identical
/// traffic, the values — identical across transports.
pub struct SuperstepEngine<T: Transport> {
    cfg: BfsConfig,
    part: Partition1D,
    layout: GroupLayout,
    ranks: Vec<RankState>,
    hub_states: Vec<HubState>,
    /// `(hub_index, local_index)` pairs per rank, for contribution builds.
    owned_hubs: Vec<Vec<(u32, u32)>>,
    total_directed_edges: u64,
    input_edges: u64,
    /// Rows holding a byte-coded copy, summed over ranks at construction.
    rows_compressed: u64,
    /// Storage accounting from construction: zero for edge-list builds,
    /// open costs summed over partitions for store restarts.
    store_stats: ins::StoreStats,
    transport: T,
    /// Canonical counter set of the most recent [`Self::run`].
    metrics: CounterSet,
    tracer: Option<Tracer>,
    fault_plan: Option<FaultPlan>,
    faults: Option<FaultSession>,
    /// Tests flip this to route records through the seed's nested-Vec
    /// exchange, the differential oracle for the pooled-arena path.
    #[cfg(test)]
    pub(crate) use_legacy_exchange: bool,
}

impl SuperstepEngine<SharedMem> {
    /// Shared-memory engine over `el` — the constructor the deprecated
    /// `ThreadedCluster` facade forwards to.
    pub fn new(el: &EdgeList, num_ranks: u32, cfg: BfsConfig) -> Result<Self, ExecError> {
        ClusterBuilder::new(el, num_ranks, cfg).build()
    }

    /// [`Self::new`] through the distributed construction path; also
    /// returns the construction traffic.
    pub fn new_distributed(
        el: &EdgeList,
        num_ranks: u32,
        cfg: BfsConfig,
    ) -> Result<(Self, ExchangeStats), ExecError> {
        ClusterBuilder::new(el, num_ranks, cfg).build_distributed()
    }
}

impl SuperstepEngine<Channels> {
    /// Channel-fabric engine over `el` — the constructor the deprecated
    /// `ChannelCluster` facade forwards to.
    pub fn new(el: &EdgeList, num_ranks: u32, cfg: BfsConfig) -> Result<Self, ExecError> {
        ClusterBuilder::new(el, num_ranks, cfg)
            .transport(Channels::new())
            .build()
    }
}

impl<T: Transport> SuperstepEngine<T> {
    /// Partitions `el` over `num_ranks` ranks, builds all per-rank state
    /// including the distributed hub selection, and sets `transport` up
    /// for the job size.
    pub fn with_transport(
        el: &EdgeList,
        num_ranks: u32,
        cfg: BfsConfig,
        transport: T,
    ) -> Result<Self, ExecError> {
        if num_ranks == 0 {
            return Err(ExecError::BadSetup("zero ranks".into()));
        }
        cfg.validate().map_err(ExecError::BadSetup)?;
        if el.num_vertices < num_ranks as u64 {
            return Err(ExecError::BadSetup(format!(
                "{} ranks for {} vertices",
                num_ranks, el.num_vertices
            )));
        }
        // Wall-clock leg of the build-once/serve-forever comparison:
        // landed next to `store.map_micros` so the live plane shows what
        // a restart saves.
        let live_t0 = sw_trace::live::armed().then(std::time::Instant::now);
        let part = Partition1D::new(el.num_vertices, num_ranks);
        let layout = GroupLayout::new(num_ranks, cfg.group_size.min(num_ranks));
        check_chip_feasibility(&cfg, &ChipConfig::sw26010(), &layout)?;

        let mut ranks: Vec<RankState> = (0..num_ranks)
            .into_par_iter()
            .map(|r| RankState::build(r, part, el))
            .collect();

        if cfg.degree_ordered_adjacency {
            // Yasui-style Bottom-Up refinement: likely parents (hubs)
            // first in every neighbour list. Degrees are global, so build
            // the lookup once from all ranks' owned degrees.
            let mut degrees = vec![0u64; el.num_vertices as usize];
            for r in &ranks {
                for (v, d) in r.owned_degrees() {
                    degrees[v as usize] = d;
                }
            }
            let degrees = &degrees;
            ranks
                .par_iter_mut()
                .for_each(|r| r.csr.reorder_neighbors_by_degree(|v| degrees[v as usize]));
        }

        // Byte-coded sidecar for high-degree rows — built *after* any
        // adjacency reorder, since the coding snapshots rows as they are.
        let rows_compressed: u64 = if cfg.compress_hub_rows {
            ranks
                .par_iter_mut()
                .map(|r| r.seal_adjacency(cfg.hub_compress_min_degree))
                .sum()
        } else {
            0
        };

        let engine = Self::assemble(
            cfg,
            part,
            layout,
            ranks,
            rows_compressed,
            el.len() as u64,
            ins::StoreStats::default(),
            transport,
        );
        Self::live_record_build("store.cold_build_micros", live_t0);
        Ok(engine)
    }

    /// Opens every partition of a persisted store directory and builds
    /// the engine over zero-copy views — the restart path of
    /// build-once/serve-forever. Refuses a manifest that disagrees with
    /// `cfg` about the sealed preparation (degree order, sidecar,
    /// hub threshold), a partition whose header disagrees with the
    /// manifest, and any file the store layer's checksum/coherence
    /// verification rejects.
    pub fn from_store_with_transport(
        dir: &Path,
        backend: StorageBackend,
        cfg: BfsConfig,
        transport: T,
    ) -> Result<Self, ExecError> {
        let manifest = StoreManifest::read(dir).map_err(|e| {
            ExecError::BadSetup(format!("store manifest in {}: {e}", dir.display()))
        })?;
        cfg.validate().map_err(ExecError::BadSetup)?;
        if cfg.degree_ordered_adjacency != manifest.degree_ordered
            || cfg.compress_hub_rows != manifest.compressed
            || (manifest.compressed && cfg.hub_compress_min_degree != manifest.hub_min_degree)
        {
            return Err(ExecError::BadSetup(format!(
                "store {} was sealed with degree_ordered={} compressed={} hub_min_degree={}; \
                 the config asks for degree_ordered={} compressed={} hub_min_degree={} — \
                 a persisted adjacency cannot be re-prepared, rebuild from edges instead",
                dir.display(),
                manifest.degree_ordered,
                manifest.compressed,
                manifest.hub_min_degree,
                cfg.degree_ordered_adjacency,
                cfg.compress_hub_rows,
                cfg.hub_compress_min_degree,
            )));
        }
        let num_ranks = manifest.num_ranks;
        if num_ranks == 0 {
            return Err(ExecError::BadSetup("store manifest: zero ranks".into()));
        }
        if manifest.num_vertices < num_ranks as u64 {
            return Err(ExecError::BadSetup(format!(
                "{} ranks for {} vertices",
                num_ranks, manifest.num_vertices
            )));
        }
        let live_t0 = sw_trace::live::armed().then(std::time::Instant::now);
        let part = Partition1D::new(manifest.num_vertices, num_ranks);
        let layout = GroupLayout::new(num_ranks, cfg.group_size.min(num_ranks));
        check_chip_feasibility(&cfg, &ChipConfig::sw26010(), &layout)?;

        let mut store_stats = ins::StoreStats::default();
        let mut ranks = Vec::with_capacity(num_ranks as usize);
        for r in 0..num_ranks {
            let path = partition_path(dir, r as usize);
            let store = GraphStore::open(&path, backend)
                .map_err(|e| ExecError::BadSetup(format!("{}: {e}", path.display())))?;
            let h = store.header();
            let (lo, hi) = part.range(r);
            if h.rank != r
                || h.num_ranks != num_ranks
                || h.num_vertices != manifest.num_vertices
                || h.row_base != lo
                || h.rows != hi - lo
                || h.degree_ordered() != manifest.degree_ordered
                || h.has_compressed() != manifest.compressed
            {
                return Err(ExecError::BadSetup(format!(
                    "{}: partition header disagrees with the manifest \
                     (rank {}/{}, rows {}..{}, expected rank {}/{}, rows {}..{})",
                    path.display(),
                    h.rank,
                    h.num_ranks,
                    h.row_base,
                    h.row_base + h.rows,
                    r,
                    num_ranks,
                    lo,
                    hi,
                )));
            }
            store_stats.absorb_open(store.stats());
            ranks.push(RankState::from_store(r, part, &store));
        }
        let rows_compressed = ranks
            .iter()
            .map(|r| r.adjacency.as_ref().map_or(0, |a| a.coded_rows() as u64))
            .sum();

        let engine = Self::assemble(
            cfg,
            part,
            layout,
            ranks,
            rows_compressed,
            manifest.input_edges,
            store_stats,
            transport,
        );
        Self::live_record_build("store.map_micros", live_t0);
        Ok(engine)
    }

    /// The construction tail both sources share: distributed hub
    /// selection, edge totals, transport setup. Hub selection reads only
    /// owned degrees — identical between a cold build and a store
    /// restart of the same graph, which is what makes restarts
    /// bit-reproducible.
    #[allow(clippy::too_many_arguments)] // internal seam between two constructors
    fn assemble(
        cfg: BfsConfig,
        part: Partition1D,
        layout: GroupLayout,
        ranks: Vec<RankState>,
        rows_compressed: u64,
        input_edges: u64,
        store_stats: ins::StoreStats,
        mut transport: T,
    ) -> Self {
        let num_ranks = part.num_ranks();
        // Distributed hub selection: every rank nominates its local top-k;
        // the global top-k is drawn from the union of nominations.
        let k = cfg.bottom_up_hubs;
        let nominations: Vec<(Vid, u64)> = ranks
            .par_iter()
            .flat_map_iter(|r| {
                let mut d = r.owned_degrees();
                d.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                d.truncate(k);
                d
            })
            .collect();
        let set = HubSet::from_degrees(nominations, k);
        let td_limit = cfg.top_down_hubs.min(set.len()) as u32;
        let hub_states: Vec<HubState> = (0..num_ranks)
            .map(|_| HubState::with_td_limit(set.clone(), td_limit))
            .collect();
        let owned_hubs: Vec<Vec<(u32, u32)>> = (0..num_ranks)
            .map(|r| {
                set.hubs()
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| part.owner(v) == r)
                    .map(|(i, &v)| (i as u32, part.to_local(v)))
                    .collect()
            })
            .collect();

        let total_directed_edges = ranks.iter().map(|r| r.csr.num_entries()).sum();
        transport.setup(num_ranks as usize);
        Self {
            cfg,
            part,
            layout,
            ranks,
            hub_states,
            owned_hubs,
            total_directed_edges,
            input_edges,
            rows_compressed,
            store_stats,
            transport,
            metrics: CounterSet::new(),
            tracer: None,
            fault_plan: None,
            faults: None,
            #[cfg(test)]
            use_legacy_exchange: false,
        }
    }

    /// Publishes one construction's wall-clock duration to the armed
    /// live plane, under the source-specific histogram (`cold_build` for
    /// edge lists, `map` for store restarts).
    fn live_record_build(histogram: &'static str, live_t0: Option<std::time::Instant>) {
        if let Some(t0) = live_t0 {
            sw_trace::live::global()
                .histogram(histogram)
                .record(t0.elapsed().as_micros() as u64);
        }
    }

    /// Persists every rank's partition plus the directory manifest under
    /// `dir` (created if absent) — the build-once half of
    /// build-once/serve-forever. Each partition writes through a temp
    /// file + rename, and the manifest is written last, so a crashed
    /// persist never leaves a directory that opens.
    pub fn persist_store(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let hub_min_degree = if self.cfg.compress_hub_rows {
            self.cfg.hub_compress_min_degree
        } else {
            0
        };
        for r in &self.ranks {
            let meta = PartitionMeta {
                rank: r.rank,
                num_ranks: self.part.num_ranks(),
                input_edges: self.input_edges,
                degree_ordered: self.cfg.degree_ordered_adjacency,
                hub_min_degree,
            };
            GraphStore::persist(dir, &r.csr, r.adjacency.as_ref(), &meta)?;
        }
        StoreManifest {
            num_vertices: self.part.num_vertices(),
            num_ranks: self.part.num_ranks(),
            input_edges: self.input_edges,
            degree_ordered: self.cfg.degree_ordered_adjacency,
            compressed: self.cfg.compress_hub_rows,
            hub_min_degree,
        }
        .write(dir)
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> u32 {
        self.part.num_ranks()
    }

    /// Global vertex count.
    pub fn num_vertices(&self) -> Vid {
        self.part.num_vertices()
    }

    /// Total directed adjacency entries.
    pub fn total_directed_edges(&self) -> u64 {
        self.total_directed_edges
    }

    /// Input edge tuples (the Graph500 TEPS numerator).
    pub fn input_edges(&self) -> u64 {
        self.input_edges
    }

    /// The BFS configuration in use.
    pub fn config(&self) -> &BfsConfig {
        &self.cfg
    }

    /// The message fabric this engine runs over.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutable access to the fabric — for out-of-band transport
    /// operations like an early explicit [`Transport::teardown`]
    /// (idempotent on every fabric; the socket transport then exposes
    /// post-mortem state such as [`SocketTransport::last_exits`]).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Degree (with multiplicity) of a global vertex.
    pub fn degree_of(&self, v: Vid) -> u64 {
        self.ranks[self.part.owner(v) as usize].csr.degree(v)
    }

    /// Buffer-pool telemetry for the most recent [`Self::run`]:
    /// `(buffer growths, bytes served from pooled capacity)`. On the
    /// pooled shared-memory fabric the growth count is zero from the
    /// second run on; pool-less fabrics report zeroes throughout. A view
    /// over [`Self::metrics`].
    pub fn pool_counters(&self) -> (u64, u64) {
        (
            self.metrics.get(ins::POOL_ALLOCS),
            self.metrics.get(ins::POOL_REUSED_BYTES),
        )
    }

    /// Storage telemetry fixed at construction: `(bytes mapped, bytes
    /// copied, sections verified, partitions opened)`. All zero for an
    /// edge-list build; on a store restart the backend shows here —
    /// `Mapped` reports mapped bytes and zero copies (the zero-copy
    /// assertion), `Heap` the inverse. Re-recorded into
    /// [`Self::metrics`] on every run as the `store.*` counters.
    pub fn store_counters(&self) -> (u64, u64, u64, u64) {
        let s = self.store_stats;
        (
            s.bytes_mapped,
            s.bytes_copied,
            s.sections_verified,
            s.partitions_mapped,
        )
    }

    /// The canonical counter set of the most recent [`Self::run`] —
    /// every exchange/pool/fault statistic flattened through
    /// [`crate::instrument::absorb_exchange`], the single merge path
    /// shared by every transport.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Arms (or disarms with `None`) a span tracer. Lanes follow the
    /// [`Tracer::for_ranks`] convention: lane `r` records rank `r`'s
    /// module and transport phases, the trailing lane records run-wide
    /// phases (whole levels, hub gathers).
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.transport.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Builder form of [`Self::set_tracer`].
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.set_tracer(Some(tracer));
        self
    }

    /// Arms (or disarms, with `None`) a deterministic fault schedule.
    /// Every subsequent [`Self::run`] replays the schedule from phase 0
    /// with a fresh session, so faulty runs are as repeatable as clean
    /// ones.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan.clone().map(FaultSession::new);
        self.fault_plan = plan;
    }

    /// Builder form of [`Self::set_fault_plan`].
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(Some(plan));
        self
    }

    /// Fault-layer telemetry for the most recent [`Self::run`]:
    /// `(re-sends, faults injected, levels delivered degraded)`. All
    /// zero without an armed plan. A view over [`Self::metrics`].
    pub fn fault_counters(&self) -> (u64, u64, u64) {
        (
            self.metrics.get(ins::FAULTS_RETRIES),
            self.metrics.get(ins::FAULTS_INJECTED),
            self.metrics.get(ins::FAULTS_DEGRADED_LEVELS),
        )
    }

    /// The injection trace of the most recent [`Self::run`], in
    /// injection order (empty without an armed plan).
    pub fn injection_trace(&self) -> &[InjectionEvent] {
        self.faults.as_ref().map_or(&[], |s| s.trace())
    }

    /// Did the most recent [`Self::run`] engage a graceful degradation
    /// (relay→direct fallback or compression disable)?
    pub fn is_degraded(&self) -> bool {
        self.faults.as_ref().is_some_and(|s| s.is_degraded())
    }

    /// Runs one BFS from `root`, returning the parent map and per-level
    /// statistics. The engine resets itself first, so runs are
    /// repeatable.
    pub fn run(&mut self, root: Vid) -> Result<BfsOutput, ExecError> {
        if root >= self.part.num_vertices() {
            return Err(ExecError::BadRoot {
                root,
                reason: "outside the vertex id space",
            });
        }
        self.reset();
        // Construction-time facts, re-recorded per run because reset()
        // clears the counter set; recorded even at zero so counter key
        // sets stay identical across configurations, transports, and
        // storage backends.
        self.metrics
            .record(ins::KERNEL_ROWS_COMPRESSED, self.rows_compressed);
        ins::absorb_store(&mut self.metrics, &self.store_stats);

        // Seed the root and promote it into the first frontier.
        let owner = self.part.owner(root) as usize;
        let rl = self.part.to_local(root) as usize;
        self.ranks[owner].claim(rl, root);
        let mut gather = self.traced_update_hubs(NO_LEVEL);
        for r in &mut self.ranks {
            r.advance_level();
        }

        let mut policy = TraversalPolicy::new(self.cfg.alpha, self.cfg.beta);
        let mut levels: Vec<LevelStats> = Vec::new();
        let mut level = 0u32;

        loop {
            let n_f: u64 = self.ranks.iter().map(|r| r.frontier_vertices()).sum();
            if n_f == 0 {
                break;
            }
            let m_f: u64 = self.ranks.par_iter().map(|r| r.frontier_edges()).sum();
            let m_u: u64 = self.ranks.par_iter().map(|r| r.unvisited_edges()).sum();
            let dir = if self.cfg.force_top_down {
                Direction::TopDown
            } else {
                policy.decide(&PolicyInputs {
                    frontier_vertices: n_f,
                    frontier_edges: m_f,
                    unvisited_edges: m_u,
                    total_vertices: self.part.num_vertices(),
                })
            };

            let mut ls = LevelStats {
                level,
                direction: dir,
                frontier_vertices: n_f,
                frontier_edges: m_f,
                unvisited_edges: m_u,
                hub_gather_bytes: gather,
                ..Default::default()
            };

            self.transport.set_trace_level(level);
            let lt0 = ins::span_begin(self.tracer.as_ref());
            match dir {
                Direction::TopDown => self.top_down_level(&mut ls)?,
                Direction::BottomUp => self.bottom_up_level(&mut ls)?,
            }
            // Level work is charged in transport-invariant units (edges
            // scanned + records generated + 1), so virtual-domain level
            // spans line up across Direct and Relay.
            if let Some(t) = &self.tracer {
                t.end(
                    t.run_lane(),
                    ins::SPAN_LEVEL,
                    ins::CAT_RUN,
                    level,
                    lt0,
                    ls.edges_scanned + ls.records_generated + 1,
                );
            }
            if self.is_degraded() {
                self.metrics.add(ins::FAULTS_DEGRADED_LEVELS, 1);
            }

            gather = self.traced_update_hubs(level);
            ls.settled = self.ranks.iter_mut().map(|r| r.advance_level()).sum();
            ins::absorb_kernel(&mut self.metrics, &ls);
            levels.push(ls);
            level += 1;
        }

        // Gather the distributed parent map.
        let mut parents = vec![NO_PARENT; self.part.num_vertices() as usize];
        for r in &self.ranks {
            let (start, _) = self.part.range(r.rank);
            parents[start as usize..start as usize + r.owned()].copy_from_slice(&r.parent);
        }
        Ok(BfsOutput {
            root,
            parents,
            levels,
        })
    }

    fn reset(&mut self) {
        self.metrics.clear();
        self.transport.set_trace_level(NO_LEVEL);
        // Replay the fault schedule from phase 0 so repeat runs stay
        // bit-identical.
        self.faults = self.fault_plan.clone().map(FaultSession::new);
        for r in &mut self.ranks {
            r.reset();
        }
        for h in &mut self.hub_states {
            h.curr.clear_all();
            h.visited.clear_all();
        }
    }

    /// One Top-Down level: Forward Generator → exchange → Forward Handler.
    fn top_down_level(&mut self, ls: &mut LevelStats) -> Result<(), ExecError> {
        let trace = self.tracer.clone();
        let trace = trace.as_ref();
        let lvl = ls.level;
        let reference = self.cfg.reference_kernels;
        let mut outs = self.transport.lend_outboxes();
        let gen: Vec<ModuleStats> = self
            .ranks
            .par_iter_mut()
            .zip(self.hub_states.par_iter())
            .zip(outs.par_iter_mut())
            .map(|((r, h), out)| {
                let t0 = ins::span_begin(trace);
                let st = if reference {
                    crate::modules::reference::forward_generator(r, h, out)
                } else {
                    forward_generator(r, h, out)
                };
                ins::span_end(trace, r.rank as usize, ins::SPAN_GEN, ins::CAT_COMPUTE, lvl, t0, st.records_out);
                st
            })
            .collect();
        for st in gen {
            ls.edges_scanned += st.edges_scanned;
            ls.local_claims += st.local_claims;
            ls.hub_skips += st.hub_skips;
            ls.records_generated += st.records_out;
            ls.words_scanned += st.words_scanned;
            ls.words_skipped += st.words_skipped;
            ls.bytes_decoded += st.bytes_decoded;
        }

        let inboxes = self.run_exchange(outs, ls)?;

        self.ranks
            .par_iter_mut()
            .zip(inboxes.par_iter())
            .for_each(|(r, inbox)| {
                let t0 = ins::span_begin(trace);
                forward_handler(r, inbox);
                ins::span_end(trace, r.rank as usize, ins::SPAN_HANDLE, ins::CAT_COMPUTE, lvl, t0, inbox.len() as u64);
            });
        self.transport.recycle_inboxes(inboxes);
        Ok(())
    }

    /// One Bottom-Up level: Backward Generator → exchange → Backward
    /// Handler → exchange → Forward Handler.
    fn bottom_up_level(&mut self, ls: &mut LevelStats) -> Result<(), ExecError> {
        let trace = self.tracer.clone();
        let trace = trace.as_ref();
        let lvl = ls.level;
        let reference = self.cfg.reference_kernels;
        let mut outs = self.transport.lend_outboxes();
        let gen: Vec<ModuleStats> = self
            .ranks
            .par_iter_mut()
            .zip(self.hub_states.par_iter())
            .zip(outs.par_iter_mut())
            .map(|((r, h), out)| {
                let t0 = ins::span_begin(trace);
                let st = if reference {
                    crate::modules::reference::backward_generator(r, h, out)
                } else {
                    backward_generator(r, h, out)
                };
                ins::span_end(trace, r.rank as usize, ins::SPAN_GEN, ins::CAT_COMPUTE, lvl, t0, st.records_out);
                st
            })
            .collect();
        for st in gen {
            ls.edges_scanned += st.edges_scanned;
            ls.local_claims += st.local_claims;
            ls.hub_skips += st.hub_skips;
            ls.records_generated += st.records_out;
            ls.words_scanned += st.words_scanned;
            ls.words_skipped += st.words_skipped;
            ls.bytes_decoded += st.bytes_decoded;
        }

        let inboxes = self.run_exchange(outs, ls)?;

        let mut replies = self.transport.lend_outboxes();
        let handled: Vec<ModuleStats> = self
            .ranks
            .par_iter_mut()
            .zip(inboxes.par_iter())
            .zip(replies.par_iter_mut())
            .map(|((r, inbox), out)| {
                let t0 = ins::span_begin(trace);
                let st = backward_handler(r, inbox, out);
                ins::span_end(trace, r.rank as usize, ins::SPAN_HANDLE, ins::CAT_COMPUTE, lvl, t0, inbox.len() as u64);
                st
            })
            .collect();
        // Return the query inboxes *before* the reply exchange so a
        // pooled transport's assembly pass finds its buffers in their
        // slots.
        self.transport.recycle_inboxes(inboxes);
        for st in handled {
            ls.edges_scanned += st.edges_scanned;
            ls.local_claims += st.local_claims;
            ls.records_generated += st.records_out;
        }

        let inboxes = self.run_exchange(replies, ls)?;

        self.ranks
            .par_iter_mut()
            .zip(inboxes.par_iter())
            .for_each(|(r, inbox)| {
                let t0 = ins::span_begin(trace);
                forward_handler(r, inbox);
                ins::span_end(trace, r.rank as usize, ins::SPAN_HANDLE, ins::CAT_COMPUTE, lvl, t0, inbox.len() as u64);
            });
        self.transport.recycle_inboxes(inboxes);
        Ok(())
    }

    /// Runs one record exchange through the transport — or, when a test
    /// has requested the oracle, through the seed's nested-Vec path —
    /// and folds the transport stats into `ls`. With an armed fault
    /// session the exchange runs the injection/retry/degradation
    /// pipeline; an unsurvivable schedule surfaces as a structured error
    /// here.
    fn run_exchange(
        &mut self,
        out: Vec<Outboxes>,
        ls: &mut LevelStats,
    ) -> Result<Vec<Vec<EdgeRec>>, ExecError> {
        #[cfg(test)]
        if self.use_legacy_exchange {
            let nested: Vec<Vec<Vec<EdgeRec>>> =
                out.into_iter().map(|o| o.into_inner()).collect();
            let (inboxes, xs) = crate::exchange::legacy::exchange(
                self.cfg.messaging,
                nested,
                &self.layout,
                self.cfg.codec(),
            );
            self.absorb_exchange(ls, &xs);
            return Ok(self.canonicalize(inboxes));
        }
        // Wall-clock leg of the observability split: when the live
        // plane is armed, each exchange also lands in a log2-bucketed
        // latency histogram. The timer wraps the deterministic work but
        // never feeds it — `exchange.*` counters come only from
        // `ExchangeStats`.
        let live_t0 = sw_trace::live::armed().then(std::time::Instant::now);
        if self.faults.is_some() {
            let plain = Codec::Fixed(self.cfg.edge_msg_bytes);
            let (messaging, codec, retry) = (self.cfg.messaging, self.cfg.codec(), self.cfg.retry);
            let (result, xs) = self.transport.exchange_faulty(
                messaging,
                out,
                &self.layout,
                codec,
                plain,
                &retry,
                self.faults.as_mut().expect("checked above"),
            );
            self.absorb_exchange(ls, &xs);
            let inboxes = result?;
            Self::live_record_exchange(live_t0);
            return Ok(self.canonicalize(inboxes));
        }
        let (inboxes, xs) =
            self.transport
                .exchange(self.cfg.messaging, out, &self.layout, self.cfg.codec())?;
        self.absorb_exchange(ls, &xs);
        Self::live_record_exchange(live_t0);
        Ok(self.canonicalize(inboxes))
    }

    /// Publishes one exchange's wall-clock duration to the armed live
    /// plane. A `None` start means the plane was disarmed when the
    /// exchange began — record nothing rather than half a sample.
    fn live_record_exchange(live_t0: Option<std::time::Instant>) {
        if let Some(t0) = live_t0 {
            sw_trace::live::global()
                .histogram("exchange.micros")
                .record(t0.elapsed().as_micros() as u64);
        }
    }

    /// Folds one exchange into the level record and the canonical
    /// counter set. The per-counter merge semantics (sum vs per-phase
    /// maximum) live in [`crate::instrument::absorb_exchange`], shared
    /// by every transport — not re-implemented here.
    fn absorb_exchange(&mut self, ls: &mut LevelStats, xs: &ExchangeStats) {
        ls.records_sent += xs.record_hops;
        ls.messages_sent += xs.messages;
        ls.bytes_sent += xs.bytes;
        ins::absorb_exchange(&mut self.metrics, xs);
    }

    fn canonicalize(&self, mut inboxes: Vec<Vec<EdgeRec>>) -> Vec<Vec<EdgeRec>> {
        if self.cfg.canonical_order && !self.transport.delivers_sorted() {
            inboxes.par_iter_mut().for_each(|b| b.sort_unstable());
        }
        inboxes
    }

    /// [`Self::update_hubs`] under a `hub_gather` span on the run lane,
    /// charged with the gather bytes (transport-invariant).
    fn traced_update_hubs(&mut self, level: u32) -> u64 {
        let t0 = ins::span_begin(self.tracer.as_ref());
        let bytes = self.update_hubs();
        if let Some(t) = &self.tracer {
            t.end(t.run_lane(), ins::SPAN_HUB_GATHER, ins::CAT_GATHER, level, t0, bytes);
        }
        bytes
    }

    /// Rebuilds the replicated hub bitmaps from every rank's `next` +
    /// parent state; returns the gather traffic in bytes.
    fn update_hubs(&mut self) -> u64 {
        let num_ranks = self.part.num_ranks() as usize;
        let nbits = self.hub_states[0].curr.len();
        let mut contrib_curr = Vec::with_capacity(num_ranks);
        let mut contrib_visited = Vec::with_capacity(num_ranks);
        for r in 0..num_ranks {
            let mut c = Bitmap::new(nbits);
            let mut v = Bitmap::new(nbits);
            for &(hub_idx, local) in &self.owned_hubs[r] {
                if self.ranks[r].next.contains(local as usize) {
                    c.set(hub_idx as usize);
                }
                if self.ranks[r].visited(local as usize) {
                    v.set(hub_idx as usize);
                }
            }
            contrib_curr.push(c);
            contrib_visited.push(v);
        }
        gather_hub_level(&mut self.hub_states, &contrib_curr, &contrib_visited).bytes
    }
}

impl<T: Transport> Drop for SuperstepEngine<T> {
    fn drop(&mut self) {
        self.transport.teardown();
    }
}
