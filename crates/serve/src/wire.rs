//! Byte-stream plumbing shared by the server and the client: one
//! enum over Unix-domain and TCP sockets plus blocking frame
//! read/write helpers on top of [`sw_net::framing::FrameDecoder`].
//!
//! The service reuses the rank fabric's framing untouched — the only
//! new machinery is mapping [`FrameError`] onto `io::Error` so both
//! sides surface a torn or misaligned stream as a structured
//! `InvalidData` failure instead of a stall.

use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

use sw_net::framing::{Frame, FrameDecoder, FrameError};

/// A connected byte stream of either address family.
#[derive(Debug)]
pub enum Stream {
    /// A Unix-domain socket (the default for same-host serving).
    #[cfg(unix)]
    Unix(UnixStream),
    /// A TCP socket.
    Tcp(TcpStream),
}

impl Stream {
    /// Clones the underlying OS handle (shared file offset/state).
    pub fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    /// Bounds how long a single `read` may block.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    /// Shuts both directions down, unblocking any reader.
    pub fn shutdown(&self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Maps a framing failure onto a structured I/O error.
pub fn frame_err(e: FrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("framing: {e:?}"))
}

/// Writes one frame and flushes it.
pub fn write_frame(stream: &mut Stream, frame: &Frame) -> io::Result<()> {
    stream.write_all(&frame.encode())?;
    stream.flush()
}

/// Events a frame-reading loop distinguishes.
pub enum ReadEvent {
    /// One complete frame arrived.
    Frame(Frame),
    /// The peer closed the stream cleanly (no partial frame pending).
    Closed,
    /// The read timed out with the stream still healthy.
    TimedOut,
}

/// Blocks (up to the stream's read timeout) for the next frame.
///
/// Mid-frame EOF and garbage bytes both surface as `InvalidData`.
pub fn read_frame(stream: &mut Stream, dec: &mut FrameDecoder) -> io::Result<ReadEvent> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if let Some(frame) = dec.next_frame().map_err(frame_err)? {
            return Ok(ReadEvent::Frame(frame));
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                dec.finish().map_err(frame_err)?;
                return Ok(ReadEvent::Closed);
            }
            Ok(n) => dec.extend(&buf[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(ReadEvent::TimedOut);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}
