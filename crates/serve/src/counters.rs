//! The `serve.*` counter namespace — named once, like
//! `swbfs_core::instrument` names the exchange counters.
//!
//! Every counter is a pure count of service decisions (no wall-clock
//! flavoured values), so a fixed admitted query sequence yields a
//! bit-identical counter set — which is what lets `svcbench`
//! snapshot-check the service against `BENCH_service.json` with exact
//! tolerance, regress-sentinel style.

/// Queries dequeued by the worker (admitted, whatever their outcome).
pub const QUERIES: &str = "serve.queries";
/// Queries answered `Ok`.
pub const RESULTS_OK: &str = "serve.results_ok";
/// Queries whose deadline expired before the answer was ready.
pub const TIMEOUTS: &str = "serve.timeouts";
/// Malformed queries (root/target outside the vertex space).
pub const BAD_QUERIES: &str = "serve.bad_queries";
/// Queries shed at admission with a `BUSY` frame.
pub const SHED: &str = "serve.shed";
/// MS-BFS sweeps run.
pub const BATCHES: &str = "serve.batches";
/// Roots swept, summed over batches.
pub const SWEPT_ROOTS: &str = "serve.swept_roots";
/// Largest single-sweep root count (merged by maximum).
pub const MAX_ROOTS_PER_BATCH: &str = "serve.max_roots_per_batch";
/// Synchronous rounds run by sweeps, summed.
pub const SWEEP_ROUNDS: &str = "serve.sweep_rounds";
/// Queries answered from the hot-root cache without a sweep.
pub const CACHE_HITS: &str = "serve.cache_hits";
/// Roots that had to be swept (cache misses).
pub const CACHE_MISSES: &str = "serve.cache_misses";
/// Level arrays evicted from the cache.
pub const CACHE_EVICTIONS: &str = "serve.cache_evictions";
/// Queries that joined a root another query of the same cycle already
/// requested (batch coalescing wins beyond cache hits).
pub const COALESCED: &str = "serve.coalesced";
/// Queries deferred to the next cycle because the sweep was full.
pub const CARRIED: &str = "serve.carried";

/// Span name: one answered query (work = server latency in µs).
pub const SPAN_QUERY: &str = "query";
/// Span name: one MS-BFS sweep (work = roots swept).
pub const SPAN_SWEEP: &str = "sweep";
/// Span category for all service spans.
pub const CAT_SERVE: &str = "serve";
