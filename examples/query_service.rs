//! The always-on query service end to end: load a Kronecker graph
//! once, serve BFS-distance / reachability / k-hop queries over the
//! framed wire protocol, and watch MS-BFS batching coalesce a burst of
//! distinct roots into a single bit-parallel sweep.
//!
//! ```bash
//! cargo run --release --example query_service
//! ```

use swbfs::graph::{generate_kronecker, KroneckerConfig};
use swbfs::net::framing::{QueryOp, QueryStatus};
use swbfs::serve::{Client, Response, ServeConfig, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One graph, loaded once, served for the process lifetime.
    let el = generate_kronecker(&KroneckerConfig::graph500(14, 42));
    println!(
        "serving a scale-14 Kronecker graph: {} vertices, {} edges",
        el.num_vertices,
        el.edges.len()
    );
    let server = Server::start(&el, ServeConfig::default())?;
    let mut client = Client::connect(&server.addr())?;

    // Three query shapes, one answer rule: everything is a function of
    // the root's BFS level array.
    match client.query(QueryOp::Distance, 1, 4242, 0, 0)? {
        Response::Answer(a) => println!("distance 1 → 4242: {} hops", a.value),
        Response::Busy(b) => println!("shed at queue depth {}", b.queue_depth),
    }
    if let Response::Answer(a) = client.query(QueryOp::Reachable, 1, 9999, 0, 0)? {
        println!("reachable 1 → 9999: {}", a.value == 1);
    }
    if let Response::Answer(a) = client.query(QueryOp::KHop, 1, 0, 2, 0)? {
        println!("|2-hop neighbourhood of 1|: {}", a.value);
    }

    // Batching: stage a burst of 32 distinct roots while the worker is
    // paused, then release it — one MS-BFS sweep answers all of them,
    // and every answer carries the batch attribution.
    server.pause();
    for root in 0..32u64 {
        client.send(QueryOp::Distance, root * 17 % el.num_vertices, 1, 0, 0)?;
    }
    while server.queue_depth() < 32 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    server.resume();
    let mut batched = 0;
    for _ in 0..32 {
        if let Response::Answer(a) = client.recv()? {
            assert_eq!(a.status, QueryStatus::Ok);
            if a.batch_roots > 1 {
                batched += 1;
            }
        }
    }
    println!("burst of 32: {batched} answers served by one multi-root sweep");

    // A deadline the service cannot meet comes back as a structured
    // Timeout answer — never a hang.
    if let Response::Answer(a) = client.query(QueryOp::Distance, 77, 3, 0, 1)? {
        println!("1 ms deadline on a cold root: {:?} after {} µs", a.status, a.micros);
    }

    let m = server.metrics();
    println!(
        "served {} queries with {} sweeps ({} roots, max batch {}), {} cache hits, {} shed",
        m.get("serve.queries"),
        m.get("serve.batches"),
        m.get("serve.swept_roots"),
        m.get("serve.max_roots_per_batch"),
        m.get("serve.cache_hits"),
        m.get("serve.shed"),
    );
    Ok(())
}
