//! Property tests for the byte-coded compressed CSR: every row —
//! Kronecker-realistic or adversarial — must round-trip exactly, and
//! early-exit / mid-row decode must agree with the plain representation.

use proptest::prelude::*;
use sw_graph::compressed::{CompressedCsr, CHUNK_TARGETS};
use sw_graph::{generate_kronecker, Csr, KroneckerConfig, Vid};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A batch of adversarial rows driven by one seed: empties, singletons,
/// a long hub row, sorted small-gap rows, unsorted rows, and rows that
/// alternate between 0 and huge values (max-magnitude deltas both ways).
fn adversarial_rows(seed: u64) -> Vec<Vec<Vid>> {
    let mut st = seed;
    let mut rows: Vec<Vec<Vid>> = vec![
        vec![],
        vec![splitmix(&mut st)],
        // Single hub row long enough to span many chunks.
        {
            let mut v: Vec<Vid> = (0..((splitmix(&mut st) % 2000) + CHUNK_TARGETS as u64))
                .map(|_| splitmix(&mut st) % (1 << 30))
                .collect();
            v.sort_unstable();
            v
        },
        // Max-delta gaps: 0 -> u64::MAX -> 0 -> ...
        (0..130u64)
            .map(|i| if i % 2 == 0 { 0 } else { u64::MAX })
            .collect(),
        // Exactly one chunk, exactly one chunk plus one target.
        (0..CHUNK_TARGETS as u64).collect(),
        (0..CHUNK_TARGETS as u64 + 1).collect(),
    ];
    // A spread of random rows, half left unsorted.
    for r in 0..12 {
        let len = (splitmix(&mut st) % 200) as usize;
        let mut row: Vec<Vid> = (0..len).map(|_| splitmix(&mut st)).collect();
        if r % 2 == 0 {
            row.sort_unstable();
        }
        rows.push(row);
    }
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// decode(encode(row)) == row for adversarial row shapes, from the
    /// start and from every chunk header.
    #[test]
    fn adversarial_rows_round_trip(seed in 0u64..u64::MAX) {
        let rows = adversarial_rows(seed);
        let c = CompressedCsr::from_rows(&rows);
        prop_assert_eq!(c.coded_rows(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            let decoded: Vec<Vid> = c.coded_row(i).unwrap().collect();
            prop_assert_eq!(&decoded, row);
            for k in 0..c.num_chunks(i).unwrap() {
                let suffix: Vec<Vid> = c.decode_from_chunk(i, k).collect();
                prop_assert_eq!(&suffix, &row[k * CHUNK_TARGETS..]);
            }
        }
    }

    /// Hub rows of a real Kronecker graph round-trip through the
    /// sidecar, the threshold selects exactly the rows it should, and
    /// early-exit decode sees the same prefix the plain CSR serves.
    #[test]
    fn kronecker_hub_rows_round_trip(
        seed in 0u64..u64::MAX,
        scale in 8u32..11,
        min_degree in 1u64..64,
    ) {
        let el = generate_kronecker(&KroneckerConfig::graph500(scale, seed));
        let csr = Csr::from_edge_list(&el);
        let c = CompressedCsr::from_csr(&csr, min_degree);
        prop_assert_eq!(c.num_rows(), csr.num_rows() as usize);
        let mut coded = 0usize;
        for i in 0..csr.num_rows() as usize {
            let plain = csr.neighbors_local(i);
            if csr.degree_local(i) >= min_degree {
                prop_assert!(c.is_compressed(i));
                coded += 1;
                let decoded: Vec<Vid> = c.coded_row(i).unwrap().collect();
                prop_assert_eq!(decoded.as_slice(), plain);
                // CSR rows are sorted, so the coding must agree and an
                // early-exit scan (stop at the first target >= limit)
                // must see the identical prefix.
                prop_assert_eq!(c.row_sorted(i), Some(true));
                let limit = plain[plain.len() / 2];
                let coded_prefix: Vec<Vid> = c
                    .coded_row(i)
                    .unwrap()
                    .take_while(|&t| t < limit)
                    .collect();
                let plain_prefix: Vec<Vid> =
                    plain.iter().copied().take_while(|&t| t < limit).collect();
                prop_assert_eq!(coded_prefix, plain_prefix);
            } else {
                prop_assert!(!c.is_compressed(i));
            }
        }
        prop_assert_eq!(c.coded_rows(), coded);
    }
}
