//! `swbfs-rankd` — one rank endpoint of the socket fabric.
//!
//! Spawned by the orchestrator ([`swbfs_core::engine::SocketTransport`]),
//! one process per rank: `swbfs-rankd <ctrl-addr> <rank> <num-ranks>`.
//! Holds no BFS state; moves encoded record batches across the real
//! socket mesh, realizing scheduled faults as short writes and closed
//! connections. Exit codes: 0 clean teardown, 41 chaos die-knob,
//! 43 protocol violation, 2 bad invocation.

#[cfg(unix)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(swbfs_core::engine::socket::daemon_main(&args));
}

#[cfg(not(unix))]
fn main() {
    eprintln!("swbfs-rankd: the socket fabric requires a Unix platform");
    std::process::exit(2);
}
