//! Differential proof of the MS-BFS batching trick: a batch of K
//! sources swept bit-parallel must produce level arrays bit-identical
//! to K *independent* single-source runs — for K ∈ {1, 3, 64}, across
//! the in-process shared-memory fabric and the multi-process socket
//! fabric, and against the sequential oracle.
//!
//! The socket half discovers `swbfs-rankd` at runtime like the
//! graph500 smoke test; with `SWBFS_RANKD_REQUIRE` set (ci.sh does,
//! right after building the daemon) a missing binary is a hard failure
//! rather than a silent skip.

use sw_algos::msbfs::{bfs_levels_oracle, msbfs_distributed, MAX_BATCH};
use sw_algos::runtime::AlgoCluster;
use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig, Vid};
use swbfs_core::config::Messaging;

/// Distinct deterministic sources spread over the id space.
fn pick_sources(n: u64, k: usize) -> Vec<Vid> {
    let mut out = Vec::with_capacity(k);
    let mut x = 0x9E37_79B9u64;
    while out.len() < k {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = x % n;
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// The shared differential core: batch-of-K over `make()`-built
/// clusters equals K independent single-source runs (each on a fresh
/// cluster, so no state can leak between them) and the oracle.
fn assert_batch_equals_independent<T, F>(el: &EdgeList, k: usize, mut make: F)
where
    T: swbfs_core::engine::Transport,
    F: FnMut() -> AlgoCluster<T>,
{
    let sources = pick_sources(el.num_vertices, k);
    let batch = {
        let mut c = make();
        msbfs_distributed(&mut c, &sources)
    };
    assert_eq!(batch.levels.len(), k);
    for (i, &s) in sources.iter().enumerate() {
        let single = {
            let mut c = make();
            msbfs_distributed(&mut c, &[s])
        };
        assert_eq!(
            batch.levels[i], single.levels[0],
            "K={k}: batch bit {i} (source {s}) differs from its independent run"
        );
        assert_eq!(
            batch.levels[i],
            bfs_levels_oracle(el, s),
            "K={k}: source {s} differs from the sequential oracle"
        );
    }
}

#[test]
fn shared_mem_batch_equals_independent_runs() {
    let el = generate_kronecker(&KroneckerConfig::graph500(12, 11));
    for k in [1usize, 3, MAX_BATCH] {
        assert_batch_equals_independent(&el, k, || {
            AlgoCluster::new(&el, 6, 3, Messaging::Relay)
        });
    }
}

/// Storage differential: a batched sweep over a store-restored cluster
/// (both backends) is bit-identical to the heap-built run, and the
/// `store.*` counters prove the mmap path copied no adjacency bytes.
#[test]
fn store_restored_batches_are_bit_identical() {
    let el = generate_kronecker(&KroneckerConfig::graph500(11, 29));
    let sources = pick_sources(el.num_vertices, 32);
    let dir = std::env::temp_dir().join("sw_algos_msbfs_store");
    std::fs::remove_dir_all(&dir).ok();
    let mut cold = AlgoCluster::new(&el, 5, 2, Messaging::Relay);
    cold.persist_store(&dir).unwrap();
    let oracle = msbfs_distributed(&mut cold, &sources);
    for backend in [sw_graph::StorageBackend::Mapped, sw_graph::StorageBackend::Heap] {
        let mut warm =
            AlgoCluster::from_store_dir(&dir, backend, 2, Messaging::Relay).unwrap();
        let out = msbfs_distributed(&mut warm, &sources);
        assert_eq!(out.levels, oracle.levels, "{backend:?}: levels diverge");
        assert_eq!(out.rounds, oracle.rounds, "{backend:?}: rounds diverge");
        let copied = warm.metrics().get("store.bytes_copied");
        let mapped = warm.metrics().get("store.bytes_mapped");
        assert_eq!(warm.metrics().get("store.partitions_mapped"), 5);
        match backend {
            sw_graph::StorageBackend::Mapped => {
                assert!(mapped > 0 && copied == 0, "mmap restore must be zero-copy")
            }
            sw_graph::StorageBackend::Heap => {
                assert!(copied > 0 && mapped == 0, "heap restore copies once")
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn direct_and_relay_batches_agree() {
    let el = generate_kronecker(&KroneckerConfig::graph500(11, 4));
    let sources = pick_sources(el.num_vertices, 17);
    let mut a = AlgoCluster::new(&el, 5, 2, Messaging::Direct);
    let mut b = AlgoCluster::new(&el, 5, 2, Messaging::Relay);
    let oa = msbfs_distributed(&mut a, &sources);
    let ob = msbfs_distributed(&mut b, &sources);
    assert_eq!(oa.levels, ob.levels);
    assert_eq!(oa.rounds, ob.rounds);
}

#[cfg(unix)]
mod socket {
    use super::*;
    use swbfs_core::engine::SocketTransport;

    /// Resolves the rank daemon; honours the CI contract that a
    /// missing daemon under `SWBFS_RANKD_REQUIRE` fails loudly.
    fn rankd_or_skip() -> Option<std::path::PathBuf> {
        match SocketTransport::unix().resolve_rankd() {
            Some(p) => Some(p),
            None => {
                if std::env::var_os("SWBFS_RANKD_REQUIRE").is_some() {
                    panic!(
                        "SWBFS_RANKD_REQUIRE is set but swbfs-rankd was not found — \
                         build it first: cargo build -p swbfs-core --bin swbfs-rankd"
                    );
                }
                eprintln!(
                    "skipping: swbfs-rankd not found — \
                     `cargo build -p swbfs-core --bin swbfs-rankd` or set SWBFS_RANKD"
                );
                None
            }
        }
    }

    #[test]
    fn socket_batch_equals_independent_runs() {
        let Some(rankd) = rankd_or_skip() else { return };
        // Smaller instance: every make() spawns a 4-process fabric.
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 23));
        for k in [1usize, 3, MAX_BATCH] {
            assert_batch_equals_independent(&el, k, || {
                AlgoCluster::with_transport(
                    &el,
                    4,
                    2,
                    Messaging::Relay,
                    SocketTransport::unix().with_rankd(rankd.clone()),
                )
            });
        }
    }

    /// The store restart seam is orthogonal to the fabric: a sweep over
    /// mmap-restored partitions on the socket transport matches the
    /// heap-built shared-memory run bit for bit.
    #[test]
    fn socket_sweep_over_mapped_store_matches_heap_build() {
        let Some(rankd) = rankd_or_skip() else { return };
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 31));
        let sources = pick_sources(el.num_vertices, 16);
        let dir = std::env::temp_dir().join("sw_algos_msbfs_store_socket");
        std::fs::remove_dir_all(&dir).ok();
        let mut cold = AlgoCluster::new(&el, 4, 2, Messaging::Direct);
        cold.persist_store(&dir).unwrap();
        let oracle = msbfs_distributed(&mut cold, &sources);
        let mut warm = AlgoCluster::from_store_with_transport(
            &dir,
            sw_graph::StorageBackend::Mapped,
            2,
            Messaging::Direct,
            SocketTransport::unix().with_rankd(rankd),
        )
        .unwrap();
        let out = msbfs_distributed(&mut warm, &sources);
        assert_eq!(out.levels, oracle.levels);
        assert_eq!(out.rounds, oracle.rounds);
        assert_eq!(warm.metrics().get("store.bytes_copied"), 0);
        assert!(warm.metrics().get("store.bytes_mapped") > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn socket_and_shared_mem_sweeps_are_bit_identical() {
        let Some(rankd) = rankd_or_skip() else { return };
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 42));
        let sources = pick_sources(el.num_vertices, 32);
        let mut shm = AlgoCluster::new(&el, 4, 2, Messaging::Direct);
        let mut sock = AlgoCluster::with_transport(
            &el,
            4,
            2,
            Messaging::Direct,
            SocketTransport::unix().with_rankd(rankd),
        );
        let a = msbfs_distributed(&mut shm, &sources);
        let b = msbfs_distributed(&mut sock, &sources);
        assert_eq!(a.levels, b.levels, "fabrics disagree on a batched sweep");
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(
            shm.stats.record_hops, sock.stats.record_hops,
            "fabrics count different record hops on identical traffic"
        );
    }
}
