//! Graph500 Kronecker (R-MAT) edge-list generator.
//!
//! Implements step (1) of the benchmark with the spec's fixed initiator
//! matrix (A = 0.57, B = 0.19, C = 0.19, D = 0.05) and default edge factor
//! 16, following the reference Octave kernel: each of the `scale` bit levels
//! of the two endpoints is drawn independently per edge, then vertex labels
//! are scrambled by a random permutation so that vertex id carries no degree
//! information (this is what makes 1-D *block* partitioning balanced in
//! expectation, the paper's "balance the graph partitioning").
//!
//! Generation is deterministic for a given seed independent of the number of
//! rayon worker threads: edges are produced in fixed-size chunks, each chunk
//! seeded from `(seed, chunk_index)`.

use crate::{EdgeList, Vid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Configuration for the Kronecker generator.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KroneckerConfig {
    /// log2 of the number of vertices ("SCALE" in Graph500).
    pub scale: u32,
    /// Edges per vertex; the benchmark fixes this to 16.
    pub edge_factor: u64,
    /// Initiator matrix upper-left probability.
    pub a: f64,
    /// Initiator matrix upper-right probability.
    pub b: f64,
    /// Initiator matrix lower-left probability.
    pub c: f64,
    /// RNG seed for edge sampling and the vertex permutation.
    pub seed: u64,
    /// If true, scramble vertex labels with a random permutation (the
    /// benchmark requires this; tests sometimes disable it to inspect the
    /// raw R-MAT structure).
    pub permute_vertices: bool,
}

impl KroneckerConfig {
    /// Graph500-conformant parameters for a given scale and seed.
    pub fn graph500(scale: u32, seed: u64) -> Self {
        Self {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
            permute_vertices: true,
        }
    }

    /// Number of vertices, `2^scale`.
    pub fn num_vertices(&self) -> Vid {
        1u64 << self.scale
    }

    /// Number of generated edge tuples, `edge_factor * 2^scale`.
    pub fn num_edges(&self) -> u64 {
        self.edge_factor << self.scale
    }
}

/// Edges generated per independently-seeded chunk. Fixed so that results do
/// not depend on thread count.
const CHUNK_EDGES: u64 = 1 << 15;

/// Generates a Graph500 Kronecker edge list.
///
/// ```
/// use sw_graph::{generate_kronecker, KroneckerConfig};
///
/// let el = generate_kronecker(&KroneckerConfig::graph500(8, 1));
/// assert_eq!(el.num_vertices, 256);
/// assert_eq!(el.len(), 16 * 256); // edge factor 16
/// ```
///
/// # Panics
/// Panics if `scale == 0` or `scale > 40`, or if the initiator probabilities
/// are not a sub-distribution.
pub fn generate_kronecker(cfg: &KroneckerConfig) -> EdgeList {
    assert!(cfg.scale >= 1 && cfg.scale <= 40, "scale out of range");
    assert!(
        cfg.a > 0.0 && cfg.b >= 0.0 && cfg.c >= 0.0 && cfg.a + cfg.b + cfg.c < 1.0,
        "initiator probabilities must leave room for D"
    );

    let m = cfg.num_edges();
    let n = cfg.num_vertices();
    let num_chunks = m.div_ceil(CHUNK_EDGES);

    // Spec constants derived from the initiator matrix.
    let ab = cfg.a + cfg.b;
    let c_norm = cfg.c / (1.0 - ab);
    let a_norm = cfg.a / ab;

    let mut edges: Vec<(Vid, Vid)> = (0..num_chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let lo = chunk * CHUNK_EDGES;
            let hi = (lo + CHUNK_EDGES).min(m);
            let mut rng = chunk_rng(cfg.seed, chunk);
            (lo..hi).map(move |_| {
                let mut u: Vid = 0;
                let mut v: Vid = 0;
                for bit in 0..cfg.scale {
                    let ii: bool = rng.gen::<f64>() > ab;
                    let threshold = if ii { c_norm } else { a_norm };
                    let jj: bool = rng.gen::<f64>() > threshold;
                    u |= (ii as Vid) << bit;
                    v |= (jj as Vid) << bit;
                }
                (u, v)
            })
        })
        .collect();

    if cfg.permute_vertices {
        let perm = random_permutation(n, cfg.seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
        edges
            .par_iter_mut()
            .for_each(|e| *e = (perm[e.0 as usize], perm[e.1 as usize]));
    }

    EdgeList::new(n, edges)
}

/// A seeded random permutation of `0..n` (Fisher–Yates).
pub fn random_permutation(n: Vid, seed: u64) -> Vec<Vid> {
    let n = usize::try_from(n).expect("permutation larger than address space");
    let mut perm: Vec<Vid> = (0..n as Vid).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

fn chunk_rng(seed: u64, chunk: u64) -> StdRng {
    // SplitMix64-style mixing so adjacent chunk seeds decorrelate.
    let mut z = seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sizes_match_spec() {
        let cfg = KroneckerConfig::graph500(10, 42);
        let el = generate_kronecker(&cfg);
        assert_eq!(el.num_vertices, 1024);
        assert_eq!(el.len(), 16 * 1024);
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = KroneckerConfig::graph500(8, 7);
        let a = generate_kronecker(&cfg);
        let b = generate_kronecker(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_kronecker(&KroneckerConfig::graph500(8, 1));
        let b = generate_kronecker(&KroneckerConfig::graph500(8, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn determinism_independent_of_thread_count() {
        let cfg = KroneckerConfig::graph500(9, 123);
        let baseline = generate_kronecker(&cfg);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let single = pool.install(|| generate_kronecker(&cfg));
        assert_eq!(baseline, single);
    }

    #[test]
    fn endpoints_in_range() {
        let cfg = KroneckerConfig::graph500(6, 3);
        let el = generate_kronecker(&cfg);
        assert!(el.edges.iter().all(|&(u, v)| u < 64 && v < 64));
    }

    #[test]
    fn unpermuted_rmat_is_skewed_toward_low_ids() {
        // With A=0.57 the zero bit is favoured at every level, so vertex 0's
        // quadrant accumulates far more endpoints than the top quadrant.
        let mut cfg = KroneckerConfig::graph500(10, 9);
        cfg.permute_vertices = false;
        let el = generate_kronecker(&cfg);
        let half = el.num_vertices / 2;
        let low = el
            .edges
            .iter()
            .filter(|&&(u, v)| u < half && v < half)
            .count();
        assert!(
            low * 2 > el.len(),
            "expected >half of edges in the low quadrant, got {low}/{}",
            el.len()
        );
    }

    #[test]
    fn permutation_is_bijective() {
        let p = random_permutation(1 << 12, 5);
        let set: HashSet<_> = p.iter().copied().collect();
        assert_eq!(set.len(), 1 << 12);
        assert_eq!(*p.iter().max().unwrap(), (1 << 12) - 1);
    }

    #[test]
    fn permutation_scrambles_degree_locality() {
        // After permutation the low half of the id space should hold roughly
        // half of the endpoints. The degree mass is heavy-tailed, so the
        // split fluctuates by several percent across RNG streams; without
        // permutation it sits far above 0.6 (see the quadrant test above).
        let cfg = KroneckerConfig::graph500(12, 11);
        let el = generate_kronecker(&cfg);
        let half = el.num_vertices / 2;
        let low_endpoints = el
            .edges
            .iter()
            .flat_map(|&(u, v)| [u, v])
            .filter(|&x| x < half)
            .count();
        let total = el.len() * 2;
        let frac = low_endpoints as f64 / total as f64;
        assert!(
            (0.42..0.58).contains(&frac),
            "permuted endpoint split should be ~50%, got {frac}"
        );
    }
}
