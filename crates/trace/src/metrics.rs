//! Counters and gauges: atomic registry cells for concurrent writers,
//! plain deterministic maps for merging and export.
//!
//! One merge rule serves the whole workspace: a key whose final
//! dot-separated segment starts with `max_` merges by **maximum**,
//! every other key merges by **sum**. Encoding the semantics in the
//! name keeps merge sites trivial (no schema object to thread around)
//! and makes the rule visible in every exported snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Does `name` merge by maximum rather than by sum?
pub fn is_max_key(name: &str) -> bool {
    name.rsplit('.').next().is_some_and(|s| s.starts_with("max_"))
}

/// An ordered name → value map with deterministic merge and JSON
/// round-trip. The common currency of every stats producer in the
/// workspace: `ExchangeStats`, fault counters, network tier occupancy
/// and chip counters all flatten into one of these.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSet {
    vals: BTreeMap<String, u64>,
}

impl CounterSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to `name` (sum semantics, regardless of the key name).
    pub fn add(&mut self, name: &str, v: u64) {
        *self.entry(name) += v;
    }

    /// Raises `name` to at least `v` (max semantics).
    pub fn set_max(&mut self, name: &str, v: u64) {
        let e = self.entry(name);
        *e = (*e).max(v);
    }

    /// Overwrites `name` with `v`.
    pub fn set(&mut self, name: &str, v: u64) {
        *self.entry(name) = v;
    }

    /// Folds `v` into `name` using the key's merge rule.
    pub fn record(&mut self, name: &str, v: u64) {
        if is_max_key(name) {
            self.set_max(name, v);
        } else {
            self.add(name, v);
        }
    }

    /// Current value of `name` (0 if never recorded).
    pub fn get(&self, name: &str) -> u64 {
        self.vals.get(name).copied().unwrap_or(0)
    }

    /// Merges every entry of `other` into `self` under the per-key
    /// merge rule — the single merge path all backends share.
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, &v) in &other.vals {
            self.record(k, v);
        }
    }

    /// [`Self::merge`] with `prefix` and a `.` separator prepended to
    /// every incoming key (namespacing per backend/subsystem in a
    /// combined snapshot). A trailing `.` on `prefix` is not doubled.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &CounterSet) {
        let prefix = prefix.strip_suffix('.').unwrap_or(prefix);
        for (k, &v) in &other.vals {
            self.record(&format!("{prefix}.{k}"), v);
        }
    }

    /// The sub-set of keys starting with `prefix`, prefix stripped.
    pub fn section(&self, prefix: &str) -> CounterSet {
        let mut out = CounterSet::new();
        for (k, &v) in &self.vals {
            if let Some(rest) = k.strip_prefix(prefix) {
                out.set(rest, v);
            }
        }
        out
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.vals.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// No keys recorded?
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.vals.clear();
    }

    /// Serializes as a flat JSON object, one key per line, keys in
    /// lexicographic order — byte-deterministic, diff-friendly.
    pub fn to_json(&self) -> String {
        if self.vals.is_empty() {
            return "{}".into();
        }
        let body: Vec<String> = self
            .vals
            .iter()
            .map(|(k, v)| format!("  \"{}\": {v}", crate::json::escape(k)))
            .collect();
        format!("{{\n{}\n}}", body.join(",\n"))
    }

    /// Parses the [`Self::to_json`] format (any flat object of unsigned
    /// integers; later duplicate keys win).
    pub fn from_json(s: &str) -> Result<CounterSet, String> {
        let mut out = CounterSet::new();
        for (k, v) in crate::json::parse_flat_u64(s)? {
            out.set(&k, v);
        }
        Ok(out)
    }

    fn entry(&mut self, name: &str) -> &mut u64 {
        if !self.vals.contains_key(name) {
            self.vals.insert(name.to_string(), 0);
        }
        self.vals.get_mut(name).expect("just inserted")
    }
}

/// A concurrent counter/gauge registry: named atomic cells handed out
/// as cheap clones, snapshotted into a [`CounterSet`] at export time.
/// Registration takes a short lock; the cells themselves are
/// wait-free.
#[derive(Default)]
pub struct Registry {
    cells: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter cell named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.cell(name),
        }
    }

    /// The gauge cell named `name`, created on first use. Counters and
    /// gauges with the same name share the cell.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.cell(name),
        }
    }

    /// Folds a finished [`CounterSet`] into the registry under the
    /// per-key merge rule.
    pub fn absorb(&self, cs: &CounterSet) {
        for (k, v) in cs.iter() {
            if is_max_key(k) {
                self.gauge(k).record_max(v);
            } else {
                self.counter(k).add(v);
            }
        }
    }

    /// Copies every cell's current value.
    pub fn snapshot(&self) -> CounterSet {
        let mut out = CounterSet::new();
        for (k, cell) in self.cells.lock().expect("registry poisoned").iter() {
            out.set(k, cell.load(Ordering::Relaxed));
        }
        out
    }

    /// Zeroes every cell (handles stay valid).
    pub fn reset(&self) {
        for cell in self.cells.lock().expect("registry poisoned").values() {
            cell.store(0, Ordering::Relaxed);
        }
    }

    fn cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut cells = self.cells.lock().expect("registry poisoned");
        if let Some(c) = cells.get(name) {
            return c.clone();
        }
        let c = Arc::new(AtomicU64::new(0));
        cells.insert(name.to_string(), c.clone());
        c
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("cells", &self.snapshot())
            .finish()
    }
}

/// A wait-free additive counter handle.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `v`.
    pub fn add(&self, v: u64) {
        self.cell.fetch_add(v, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A wait-free gauge handle (set / running maximum).
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Raises the value to at least `v`.
    pub fn record_max(&self, v: u64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_keys_are_named_not_typed() {
        assert!(is_max_key("exchange.max_send_msgs_per_rank"));
        assert!(is_max_key("max_x"));
        assert!(!is_max_key("exchange.messages"));
        assert!(!is_max_key("pool.climax_events"));
    }

    #[test]
    fn merge_respects_per_key_semantics() {
        let mut a = CounterSet::new();
        a.add("exchange.bytes", 10);
        a.set_max("exchange.max_send_bytes_per_rank", 5);
        let mut b = CounterSet::new();
        b.add("exchange.bytes", 7);
        b.set_max("exchange.max_send_bytes_per_rank", 3);
        a.merge(&b);
        assert_eq!(a.get("exchange.bytes"), 17);
        assert_eq!(a.get("exchange.max_send_bytes_per_rank"), 5);
    }

    #[test]
    fn sections_and_prefixes_round_trip() {
        let mut a = CounterSet::new();
        a.add("net.bytes", 3);
        a.add("pool.allocs", 1);
        let mut all = CounterSet::new();
        all.merge_prefixed("direct.", &a);
        assert_eq!(all.get("direct.net.bytes"), 3);
        let sec = all.section("direct.");
        assert_eq!(sec, a);
    }

    #[test]
    fn json_round_trip_is_stable() {
        let mut a = CounterSet::new();
        a.add("b", 2);
        a.add("a", 1);
        let j = a.to_json();
        assert_eq!(j, "{\n  \"a\": 1,\n  \"b\": 2\n}");
        assert_eq!(CounterSet::from_json(&j).unwrap(), a);
        assert_eq!(CounterSet::new().to_json(), "{}");
    }

    #[test]
    fn registry_cells_are_shared_and_snapshotted() {
        let r = Registry::new();
        let c = r.counter("hits");
        let c2 = r.counter("hits");
        c.add(2);
        c2.incr();
        r.gauge("max_depth").record_max(9);
        r.gauge("max_depth").record_max(4);
        let snap = r.snapshot();
        assert_eq!(snap.get("hits"), 3);
        assert_eq!(snap.get("max_depth"), 9);
        r.reset();
        assert_eq!(r.snapshot().get("hits"), 0);
        assert_eq!(c.get(), 0, "handles observe the reset");
    }
}
