//! Pipelined module mapping (§4.2): which on-chip unit runs what, and how
//! long a level's module work takes on one node.
//!
//! The paper dedicates MPEs to communication (M0 sends, M1 receives) and
//! hands each module activation to an idle CPE cluster, first-come-first-
//! served. Notifications are flag polls through main memory (interrupts
//! are 10 µs, §3.1). Two §5 refinements are modeled: inputs under 1 KB are
//! processed directly on the MPE (notification would cost more than the
//! work), and when all four clusters are busy — possible in Bottom-Up,
//! which has five modules — the surplus module runs on a spare MPE rather
//! than deadlocking the scheduler.

use crate::config::{BfsConfig, Processing};
use crate::shuffling::processing_rate_gbps;
use sw_arch::{ChipConfig, Mpe, SimNanos};

/// The BFS processing modules of Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Module {
    /// Scans the frontier, emits forward records.
    ForwardGenerator,
    /// Re-buckets relayed forward records (Relay messaging only).
    ForwardRelay,
    /// Applies forward claims.
    ForwardHandler,
    /// Scans unvisited vertices, emits backward queries.
    BackwardGenerator,
    /// Re-buckets relayed backward records (Relay messaging only).
    BackwardRelay,
    /// Answers backward queries with forward records.
    BackwardHandler,
}

/// One module activation: the module and its input size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Activation {
    /// Which module runs.
    pub module: Module,
    /// Bytes of input it must stream.
    pub input_bytes: u64,
}

/// Node-level execution model for module work.
#[derive(Clone, Copy, Debug)]
pub struct PipelineModel {
    /// Effective streaming rate of the configured processing unit, GB/s.
    rate_gbps: f64,
    /// MPE fallback rate, GB/s (used for small inputs and spill-over).
    mpe_rate_gbps: f64,
    /// Workers available for module processing (4 CPE clusters, or the 2
    /// spare MPEs in MPE mode).
    workers: usize,
    /// Whether a spare MPE can absorb overflow modules (CPE mode only; in
    /// MPE mode the spare MPEs *are* the workers).
    has_spill: bool,
    small_input_bytes: u64,
    notify_ns: SimNanos,
}

impl PipelineModel {
    /// Builds the model for a BFS configuration.
    pub fn new(cfg: &BfsConfig, chip: &ChipConfig) -> Self {
        let mpe_cfg = BfsConfig {
            processing: Processing::Mpe,
            ..*cfg
        };
        let mpe_rate = processing_rate_gbps(&mpe_cfg, chip);
        let (rate, workers, has_spill) = match cfg.processing {
            Processing::Cpe => (processing_rate_gbps(cfg, chip), 4, true),
            Processing::Mpe => (mpe_rate, 2, false),
        };
        Self {
            rate_gbps: rate,
            mpe_rate_gbps: mpe_rate,
            workers,
            has_spill,
            small_input_bytes: cfg.small_input_bytes as u64,
            notify_ns: Mpe::new(*chip).notify_cluster_ns(),
        }
    }

    /// Effective streaming rate, GB/s.
    pub fn rate_gbps(&self) -> f64 {
        self.rate_gbps
    }

    /// Time for one module activation on its assigned unit.
    pub fn activation_ns(&self, a: &Activation) -> SimNanos {
        if a.input_bytes == 0 {
            return 0.0;
        }
        if a.input_bytes < self.small_input_bytes {
            // §5 quick path: the MPE does it in place, no notification.
            return a.input_bytes as f64 / self.mpe_rate_gbps;
        }
        self.notify_ns + a.input_bytes as f64 / self.rate_gbps
    }

    /// Makespan of a level's activations under FCFS list scheduling on the
    /// available workers; when every worker is busy the activation spills
    /// to a (10× slower in CPE mode) MPE, as §4.4 prescribes, instead of
    /// waiting — but only if that is actually faster than queueing.
    pub fn level_makespan_ns(&self, activations: &[Activation]) -> SimNanos {
        let mut workers = vec![0.0f64; self.workers];
        let mut spill_mpe = 0.0f64; // one spare MPE absorbs overflow work
        for a in activations {
            let t = self.activation_ns(a);
            if t == 0.0 {
                continue;
            }
            // Earliest-available worker...
            let (wi, &earliest) = workers
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("at least one worker");
            // ... versus running on the spare MPE immediately.
            let mpe_t = a.input_bytes as f64 / self.mpe_rate_gbps;
            if self.has_spill && earliest > 0.0 && spill_mpe + mpe_t < earliest + t {
                spill_mpe += mpe_t;
            } else {
                workers[wi] = earliest + t;
            }
        }
        workers
            .into_iter()
            .fold(spill_mpe, |acc, w| acc.max(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BfsConfig;

    fn model(p: Processing) -> PipelineModel {
        PipelineModel::new(
            &BfsConfig::paper().with_processing(p),
            &ChipConfig::sw26010(),
        )
    }

    #[test]
    fn cpe_mode_streams_10x_faster() {
        let cpe = model(Processing::Cpe);
        let mpe = model(Processing::Mpe);
        let a = Activation {
            module: Module::ForwardGenerator,
            input_bytes: 1 << 26,
        };
        let ratio = mpe.activation_ns(&a) / cpe.activation_ns(&a);
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn small_inputs_take_the_mpe_quick_path() {
        let m = model(Processing::Cpe);
        let small = Activation {
            module: Module::ForwardHandler,
            input_bytes: 512,
        };
        // No notification cost: time is well under notify_ns + stream.
        let t = m.activation_ns(&small);
        assert!(t < m.notify_ns);
        // Just over the threshold pays the notification.
        let big = Activation {
            module: Module::ForwardHandler,
            input_bytes: 1024,
        };
        assert!(m.activation_ns(&big) > m.notify_ns);
    }

    #[test]
    fn zero_input_is_free() {
        let m = model(Processing::Cpe);
        assert_eq!(
            m.activation_ns(&Activation {
                module: Module::ForwardRelay,
                input_bytes: 0
            }),
            0.0
        );
    }

    #[test]
    fn four_equal_modules_run_concurrently() {
        let m = model(Processing::Cpe);
        let a = Activation {
            module: Module::ForwardGenerator,
            input_bytes: 1 << 24,
        };
        let one = m.level_makespan_ns(&[a]);
        let four = m.level_makespan_ns(&[a; 4]);
        assert!((four - one).abs() / one < 1e-9, "one {one}, four {four}");
    }

    #[test]
    fn fifth_module_spills_without_doubling_makespan() {
        // Five equal big modules on four clusters: the fifth goes to the
        // spare MPE if profitable, else queues; either way makespan is
        // under 2× the single-module time ... for CPE mode with 10× slower
        // MPE, queuing wins: makespan = 2 activations on one cluster.
        let m = model(Processing::Cpe);
        let a = Activation {
            module: Module::BackwardGenerator,
            input_bytes: 1 << 24,
        };
        let one = m.level_makespan_ns(&[a]);
        let five = m.level_makespan_ns(&[a; 5]);
        assert!(five <= 2.0 * one + 1.0);
        assert!(five > one);
    }

    #[test]
    fn tiny_fifth_module_prefers_spare_mpe() {
        let m = model(Processing::Cpe);
        let big = Activation {
            module: Module::BackwardGenerator,
            input_bytes: 1 << 26,
        };
        let small = Activation {
            module: Module::ForwardRelay,
            input_bytes: 4096,
        };
        // Four big + one small: the small one runs on the MPE concurrently,
        // so makespan equals the big modules alone.
        let base = m.level_makespan_ns(&[big; 4]);
        let with_small = m.level_makespan_ns(&[big, big, big, big, small]);
        assert!((with_small - base).abs() / base < 0.01);
    }

    #[test]
    fn mpe_mode_uses_two_workers() {
        let m = model(Processing::Mpe);
        let a = Activation {
            module: Module::ForwardGenerator,
            input_bytes: 1 << 24,
        };
        let one = m.level_makespan_ns(&[a]);
        let two = m.level_makespan_ns(&[a; 2]);
        let three = m.level_makespan_ns(&[a; 3]);
        assert!((two - one).abs() / one < 1e-9);
        assert!(three > two);
    }
}
