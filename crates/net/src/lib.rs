//! # sw-net — TaihuLight interconnect model
//!
//! The paper's group-based message batching (§4.4) wins because of three
//! properties of the machine's network, all modeled here:
//!
//! 1. **Two-level fat tree** (§3.3): 256-node super nodes with full
//!    bisection bandwidth at the bottom; a central switching network with a
//!    1:4 over-subscription ratio at the top. Traffic that stays inside a
//!    super node is ~4× cheaper per byte than traffic that crosses it.
//! 2. **Per-message overhead**: a power-law BFS emits mostly sub-KB
//!    messages; each one costs fixed software/NIC time regardless of size,
//!    so P²-style peer-to-peer messaging stops scaling (the Figure 11
//!    Direct-MPE plateau at 4 Ki nodes).
//! 3. **Per-connection memory**: every MPI connection pins ~100 KB of
//!    library state plus RDMA eager buffers. All-to-all connectivity at
//!    16 Ki nodes exhausts node memory — the paper's observed Direct crash.
//!
//! Modules:
//!
//! * [`topology`] — node/super-node arithmetic and machine constants.
//! * [`routing`] — static destination-based path computation with hop
//!   classification (intra vs inter super node).
//! * [`group`] — the N×M relay-group layout: relay-node address algebra and
//!   connection-count accounting (`N + M - 1` instead of `N × M`).
//! * [`endpoint`] — MPI-like connection tables with memory accounting and
//!   exhaustion errors.
//! * [`cost`] — the flow-level phase cost model: given aggregate per-node
//!   traffic (bytes, message counts, intra/inter split), returns simulated
//!   phase time under injection, ejection, central-switch and per-message
//!   limits.
//! * [`framing`] — length-prefixed frame codec for the real socket
//!   fabric (`swbfs-core`'s `SocketTransport`): pure byte-level
//!   encode/decode with torn-frame detection, no I/O.

pub mod cost;
pub mod endpoint;
pub mod eventsim;
pub mod error;
pub mod faults;
pub mod framing;
pub mod group;
pub mod placement;
pub mod routing;
pub mod topology;

pub use cost::{CostModel, PhaseLoad};
pub use endpoint::ConnectionTable;
pub use eventsim::{
    flow_prediction, simulate_phase, simulate_phase_faulty, FlowPrediction, SimMessage,
    SimOutcome, TierOccupancy,
};
pub use error::NetError;
pub use faults::NetFaults;
pub use framing::{Frame, FrameDecoder, FrameError};
pub use group::GroupLayout;
pub use placement::Placement;
pub use routing::{classify, PathClass};
pub use topology::NetworkConfig;

/// Node identifier within the machine.
pub type NodeId = u32;
