//! Kernel 2 — SSSP, as added to the benchmark in Graph500 spec v3.
//!
//! The paper ran the BFS-only benchmark of 2016, but §8 argues the same
//! framework carries SSSP; this module makes the claim concrete by
//! running `sw-algos`' distributed SSSP under the benchmark's procedure —
//! a second thin strategy wrapper over the shared [`crate::harness`]
//! loop: same Kronecker graph, independently drawn roots, per-root
//! timing, validation against a sequential Dijkstra oracle, and
//! harmonic-mean TEPS statistics.
//!
//! Weights follow the repo's deterministic synthetic scheme (the official
//! generator attaches uniform random weights; ours are uniform in
//! `1..=max_weight` and recomputable from the endpoints — same
//! distribution class, no side file needed).

use crate::harness::{build_instance, drive_roots, RootAssessment};
use crate::spec::Graph500Spec;
use crate::teps::TepsStats;
use sw_algos::sssp::{sssp_distributed, sssp_oracle, INF};
use sw_algos::AlgoCluster;
use sw_graph::Vid;
use swbfs_core::config::Messaging;

/// One SSSP root's run.
#[derive(Clone, Copy, Debug)]
pub struct SsspRun {
    /// The source vertex.
    pub root: Vid,
    /// Kernel wall time, seconds.
    pub time_s: f64,
    /// Vertices reached.
    pub reached: u64,
    /// Input edges with a reached endpoint (the TEPS numerator).
    pub traversed_edges: u64,
    /// TEPS.
    pub teps: f64,
}

/// Results of a kernel-2 benchmark run.
#[derive(Clone, Debug)]
pub struct Kernel2Result {
    /// Instance parameters.
    pub spec: Graph500Spec,
    /// Simulated ranks.
    pub ranks: u32,
    /// Maximum edge weight used.
    pub max_weight: u64,
    /// Per-root runs.
    pub runs: Vec<SsspRun>,
    /// TEPS statistics.
    pub stats: TepsStats,
}

/// Errors of the kernel-2 driver.
#[derive(Debug)]
pub enum Kernel2Error {
    /// A distance map disagreed with the Dijkstra oracle.
    Invalid {
        /// The offending root.
        root: Vid,
        /// First vertex whose distance differs.
        vertex: Vid,
    },
    /// No roots / degenerate TEPS.
    Degenerate(String),
}

impl std::fmt::Display for Kernel2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Kernel2Error::Invalid { root, vertex } => {
                write!(f, "SSSP from {root} wrong at vertex {vertex}")
            }
            Kernel2Error::Degenerate(m) => write!(f, "degenerate kernel-2 run: {m}"),
        }
    }
}

impl std::error::Error for Kernel2Error {}

/// Runs kernel 2 for every benchmark root, validating each distance map
/// against Dijkstra. Roots are drawn with a mixed seed so kernel 2
/// searches a different root set than kernel 1 on the same instance.
pub fn run_kernel2(
    spec: &Graph500Spec,
    ranks: u32,
    group_size: u32,
    max_weight: u64,
) -> Result<Kernel2Result, Kernel2Error> {
    let (el, roots) = build_instance(spec, 0x55AA);
    if roots.is_empty() {
        return Err(Kernel2Error::Degenerate("no eligible roots".into()));
    }
    let mut cluster = AlgoCluster::new(&el, ranks, group_size, Messaging::Relay);

    let (runs, stats) = drive_roots(
        &roots,
        |_, root| Ok::<_, Kernel2Error>(sssp_distributed(&mut cluster, root, max_weight)),
        |_, root, dist| {
            let oracle = sssp_oracle(&el, root, max_weight);
            if let Some((vertex, _)) = dist
                .iter()
                .zip(&oracle)
                .enumerate()
                .find(|(_, (a, b))| a != b)
            {
                return Err(Kernel2Error::Invalid {
                    root,
                    vertex: vertex as Vid,
                });
            }
            Ok(RootAssessment {
                traversed_edges: el
                    .edges
                    .iter()
                    .filter(|&&(u, v)| dist[u as usize] != INF || dist[v as usize] != INF)
                    .count() as u64,
                reached: dist.iter().filter(|&&d| d != INF).count() as u64,
                // A distance map has no BFS level structure.
                depth: 0,
            })
        },
        Kernel2Error::Degenerate,
    )?;
    let runs = runs
        .into_iter()
        .map(|r| SsspRun {
            root: r.root,
            time_s: r.time_s,
            reached: r.reached,
            traversed_edges: r.traversed_edges,
            teps: r.teps,
        })
        .collect();
    Ok(Kernel2Result {
        spec: *spec,
        ranks,
        max_weight,
        runs,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::generate_kronecker;

    #[test]
    fn kernel2_completes_and_validates() {
        let spec = Graph500Spec::quick(9, 5, 3);
        let res = run_kernel2(&spec, 4, 2, 50).unwrap();
        assert_eq!(res.runs.len(), 3);
        for r in &res.runs {
            assert!(r.reached > 1);
            assert!(r.traversed_edges > 0);
        }
        assert!(res.stats.harmonic_mean > 0.0);
    }

    #[test]
    fn unit_weight_kernel2_reaches_like_bfs() {
        let spec = Graph500Spec::quick(8, 2, 2);
        let res = run_kernel2(&spec, 3, 2, 1).unwrap();
        // Same reachability as BFS: the component structure does not
        // depend on weights.
        let el = generate_kronecker(&spec.kronecker());
        for r in &res.runs {
            let bfs = swbfs_core::baseline::sequential_bfs_levels(&el, r.root);
            let bfs_reached = bfs.iter().flatten().count() as u64;
            assert_eq!(r.reached, bfs_reached);
        }
    }
}
