//! The management processing element (MPE) timing model.
//!
//! The MPE is a full 64-bit RISC core, but for BFS purposes three numbers
//! define it (§3.1–3.2):
//!
//! * one practical thread per MPE — no efficient multithreading, so the
//!   pipelined module mapping dedicates whole MPEs to send/receive roles;
//! * memory bandwidth roughly a tenth of the CPE cluster's (≈2.9 GB/s per
//!   MPE at 256 B batches — see [`crate::config::ChipConfig::mpe_peak_gbps`]
//!   on how this is reconciled with §3.2's 9.4 GB/s quote);
//! * a ~10 µs system interrupt, which rules interrupts out for MPE↔CPE
//!   notification; flag polling through main memory (~100 cycles) is used
//!   instead (§4.2).

use crate::config::ChipConfig;
use crate::SimNanos;

/// One MPE's timing model.
#[derive(Clone, Copy, Debug)]
pub struct Mpe {
    cfg: ChipConfig,
}

impl Mpe {
    /// An MPE of the given chip.
    pub fn new(cfg: ChipConfig) -> Self {
        Self { cfg }
    }

    /// Sustained memory bandwidth (GB/s) when accessing memory in
    /// `chunk`-byte batches.
    pub fn bandwidth_gbps(&self, chunk: u32) -> f64 {
        if chunk == 0 {
            return 0.0;
        }
        self.cfg.mpe_peak_gbps * chunk as f64 / (chunk as f64 + self.cfg.mpe_access_overhead_bytes)
    }

    /// Simulated time to move `bytes` of memory traffic in `chunk`-byte
    /// batches.
    pub fn transfer_ns(&self, bytes: u64, chunk: u32) -> SimNanos {
        let bw = self.bandwidth_gbps(chunk);
        if bw <= 0.0 {
            return f64::INFINITY;
        }
        bytes as f64 / bw
    }

    /// Cost of notifying a CPE cluster and getting it onto a module: a
    /// memory flag round trip plus the cluster launch (flag broadcast,
    /// DMA descriptor setup, pipeline fill).
    pub fn notify_cluster_ns(&self) -> SimNanos {
        self.cfg.flag_poll_ns + self.cfg.cluster_launch_ns
    }

    /// Cost of the interrupt path, for comparison — the reason polling wins.
    pub fn interrupt_ns(&self) -> SimNanos {
        self.cfg.mpe_interrupt_ns
    }

    /// The chip configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mpe() -> Mpe {
        Mpe::new(ChipConfig::sw26010())
    }

    #[test]
    fn bandwidth_saturates_with_chunk() {
        let m = mpe();
        assert!(m.bandwidth_gbps(8) < m.bandwidth_gbps(256));
        assert!(m.bandwidth_gbps(256) <= m.config().mpe_peak_gbps);
        // Calibration point: ~2.9 GB/s at 256 B.
        let at256 = m.bandwidth_gbps(256);
        assert!((2.7..3.1).contains(&at256), "got {at256}");
    }

    #[test]
    fn polling_beats_interrupts_by_an_order_of_magnitude() {
        let m = mpe();
        assert!(m.interrupt_ns() / m.notify_cluster_ns() > 10.0);
        assert!((m.interrupt_ns() - 10_000.0).abs() < 1.0);
        // Notification + launch lands near the 1 KB cutoff derivation:
        // 1 KB/mpe_rate - 1 KB/cpe_rate ≈ notify overhead.
        assert!((600.0..1200.0).contains(&m.notify_cluster_ns()));
    }

    #[test]
    fn transfer_time_consistent() {
        let m = mpe();
        let ns = m.transfer_ns(1 << 20, 256);
        let bw = (1u64 << 20) as f64 / ns;
        assert!((bw - m.bandwidth_gbps(256)).abs() < 1e-9);
        assert!(m.transfer_ns(1, 0).is_infinite());
    }
}
