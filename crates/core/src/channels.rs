//! A true multi-threaded rank runtime over crossbeam channels.
//!
//! [`crate::threaded::ThreadedCluster`] executes ranks as data (parallel
//! phases over a rank vector) — ideal for determinism and statistics.
//! [`ChannelCluster`] instead runs **one OS thread per rank**, with all
//! communication over MPI-like point-to-point channels: every rank sends
//! exactly one `Records` message to every peer per phase (empty ones are
//! the paper's termination indicators), statistics travel as broadcast
//! packets, and the direction policy is evaluated redundantly on every
//! rank from identical global sums — no coordinator, exactly like the
//! real SPMD program.
//!
//! The two backends must produce identical parent maps; the test suite
//! holds them to that.

use crate::config::BfsConfig;
use crate::error::ExecError;
use crate::hubs::HubState;
use crate::messages::EdgeRec;
use crate::modules::{
    backward_generator, backward_handler, forward_generator, forward_handler, Outboxes,
};
use crate::policy::{Direction, PolicyInputs, TraversalPolicy};
use crate::rank::RankState;
use crate::result::BfsOutput;
use crate::NO_PARENT;
use crossbeam::channel::{unbounded, Receiver, Sender};
use sw_graph::hub::HubSet;
use sw_graph::{Bitmap, EdgeList, Partition1D, Vid};

/// Wire packets between rank threads. Every packet carries the sender's
/// global phase sequence number: ranks advance through communication
/// phases in lockstep logically, but threads run ahead physically, so a
/// receiver must be able to stash packets of future phases (the classic
/// MPI tag/epoch discipline).
enum Payload {
    /// One phase's records from a peer (empty = termination indicator).
    Records(Vec<EdgeRec>),
    /// A peer's per-level statistic triple `(n_f, m_f, m_u)`.
    Stats(u64, u64, u64),
    /// A peer's hub contribution (curr words, visited words).
    Hubs(Vec<u64>, Vec<u64>),
}

struct Packet {
    seq: u64,
    payload: Payload,
}

/// Receiver with an out-of-phase stash.
struct Mailbox {
    rx: Receiver<Packet>,
    pending: Vec<Packet>,
}

impl Mailbox {
    fn new(rx: Receiver<Packet>) -> Self {
        Self {
            rx,
            pending: Vec::new(),
        }
    }

    /// Receives exactly `count` packets of phase `seq`, stashing any
    /// future-phase packets that arrive in between.
    fn recv_phase(&mut self, seq: u64, count: usize) -> Vec<Payload> {
        let mut got = Vec::with_capacity(count);
        // Drain matching stashed packets first.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].seq == seq {
                got.push(self.pending.swap_remove(i).payload);
            } else {
                i += 1;
            }
        }
        while got.len() < count {
            let pkt = self.rx.recv().expect("channel closed");
            debug_assert!(pkt.seq >= seq, "stale packet from phase {}", pkt.seq);
            if pkt.seq == seq {
                got.push(pkt.payload);
            } else {
                self.pending.push(pkt);
            }
        }
        got
    }
}

/// A cluster whose ranks are OS threads communicating over channels.
pub struct ChannelCluster {
    cfg: BfsConfig,
    part: Partition1D,
    ranks: Vec<RankState>,
    hub_set: HubSet,
    td_limit: u32,
}

impl ChannelCluster {
    /// Builds per-rank state (same construction as the phase backend).
    pub fn new(el: &EdgeList, num_ranks: u32, cfg: BfsConfig) -> Result<Self, ExecError> {
        if num_ranks == 0 {
            return Err(ExecError::BadSetup("zero ranks".into()));
        }
        cfg.validate().map_err(ExecError::BadSetup)?;
        if el.num_vertices < num_ranks as u64 {
            return Err(ExecError::BadSetup("more ranks than vertices".into()));
        }
        let part = Partition1D::new(el.num_vertices, num_ranks);
        let ranks: Vec<RankState> = (0..num_ranks)
            .map(|r| RankState::build(r, part, el))
            .collect();
        let k = cfg.bottom_up_hubs;
        let mut nominations: Vec<(Vid, u64)> = Vec::new();
        for r in &ranks {
            let mut d = r.owned_degrees();
            d.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            d.truncate(k);
            nominations.extend(d);
        }
        let hub_set = HubSet::from_degrees(nominations, k);
        let td_limit = cfg.top_down_hubs.min(hub_set.len()) as u32;
        Ok(Self {
            cfg,
            part,
            ranks,
            hub_set,
            td_limit,
        })
    }

    /// Runs one BFS from `root` with every rank on its own thread.
    pub fn run(&mut self, root: Vid) -> Result<BfsOutput, ExecError> {
        if root >= self.part.num_vertices() {
            return Err(ExecError::BadRoot {
                root,
                reason: "outside the vertex id space",
            });
        }
        let p = self.part.num_ranks() as usize;

        // Channel mesh: chans[d] receives what anyone sends to rank d.
        let mut senders: Vec<Sender<Packet>> = Vec::with_capacity(p);
        let mut receivers: Vec<Option<Receiver<Packet>>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }

        // Move rank states into the threads; get them back when done.
        let states: Vec<RankState> = std::mem::take(&mut self.ranks);
        let cfg = self.cfg;
        let hub_set = &self.hub_set;
        let td_limit = self.td_limit;
        let senders_ref = &senders;

        let results: Vec<(RankState, Vec<crate::result::LevelStats>)> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(p);
                for (r, mut st) in states.into_iter().enumerate() {
                    let rx = receivers[r].take().expect("receiver taken once");
                    handles.push(scope.spawn(move || {
                        let stats = rank_main(
                            &mut st,
                            Mailbox::new(rx),
                            senders_ref,
                            cfg,
                            hub_set,
                            td_limit,
                            root,
                        );
                        (st, stats)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rank thread panicked"))
                    .collect()
            });

        // Reassemble.
        let mut parents = vec![NO_PARENT; self.part.num_vertices() as usize];
        let mut states = Vec::with_capacity(p);
        let mut levels = Vec::new();
        for (st, stats) in results {
            let (start, _) = self.part.range(st.rank);
            parents[start as usize..start as usize + st.owned()].copy_from_slice(&st.parent);
            if st.rank == 0 {
                // Every rank derives identical global stats; rank 0's copy
                // is the canonical record.
                levels = stats;
            }
            states.push(st);
        }
        states.sort_by_key(|s| s.rank);
        self.ranks = states;
        Ok(BfsOutput {
            root,
            parents,
            levels,
        })
    }
}

/// The SPMD body every rank thread executes. Returns the per-level
/// global statistics this rank derived (identical on every rank).
fn rank_main(
    st: &mut RankState,
    mut mbox: Mailbox,
    senders: &[Sender<Packet>],
    cfg: BfsConfig,
    hub_set: &HubSet,
    td_limit: u32,
    root: Vid,
) -> Vec<crate::result::LevelStats> {
    let p = senders.len();
    let me = st.rank as usize;
    let mut hubs = HubState::with_td_limit(hub_set.clone(), td_limit);
    let mut policy = TraversalPolicy::new(cfg.alpha, cfg.beta);
    // Global phase counter; identical progression on every rank because
    // the policy decisions are computed from identical global sums.
    let mut seq = 0u64;

    // Reset and seed.
    st.parent.fill(NO_PARENT);
    st.curr.clear();
    st.next.clear();
    if st.owns(root) {
        let rl = st.local(root);
        st.claim(rl, root);
    }
    exchange_hubs(st, &mut hubs, &mut mbox, senders, me, &mut seq);
    st.advance_level();

    let mut levels: Vec<crate::result::LevelStats> = Vec::new();
    // Flat record buffers reused across every level of the run; each
    // exchange drains them but keeps the capacity.
    let mut out = Outboxes::new(p);
    let mut replies = Outboxes::new(p);
    loop {
        // Global statistics by symmetric broadcast.
        let (n_f, m_f, m_u) = allreduce_stats(st, &mut mbox, senders, me, &mut seq);
        if let Some(last) = levels.last_mut() {
            // Everything in this frontier settled during the prior level.
            last.settled = n_f;
        }
        if n_f == 0 {
            break;
        }
        let dir = if cfg.force_top_down {
            Direction::TopDown
        } else {
            policy.decide(&PolicyInputs {
                frontier_vertices: n_f,
                frontier_edges: m_f,
                unvisited_edges: m_u,
                total_vertices: st.part.num_vertices(),
            })
        };

        levels.push(crate::result::LevelStats {
            level: levels.len() as u32,
            direction: dir,
            frontier_vertices: n_f,
            frontier_edges: m_f,
            unvisited_edges: m_u,
            ..Default::default()
        });
        match dir {
            Direction::TopDown => {
                forward_generator(st, &hubs, &mut out);
                let inbox = exchange_phase(&mut out, &mut mbox, senders, me, &mut seq);
                forward_handler(st, &inbox);
            }
            Direction::BottomUp => {
                backward_generator(st, &hubs, &mut out);
                let inbox = exchange_phase(&mut out, &mut mbox, senders, me, &mut seq);
                backward_handler(st, &inbox, &mut replies);
                let inbox = exchange_phase(&mut replies, &mut mbox, senders, me, &mut seq);
                forward_handler(st, &inbox);
            }
        }
        exchange_hubs(st, &mut hubs, &mut mbox, senders, me, &mut seq);
        st.advance_level();
    }
    levels
}

/// One communication phase: send exactly one `Records` packet to every
/// peer (the termination indicator when empty), then assemble the inbox
/// in sender-rank order for determinism.
fn exchange_phase(
    out: &mut Outboxes,
    mbox: &mut Mailbox,
    senders: &[Sender<Packet>],
    me: usize,
    seq: &mut u64,
) -> Vec<EdgeRec> {
    let p = senders.len();
    let this = *seq;
    *seq += 1;
    let boxes = out.drain_into_boxes();
    for (d, recs) in boxes.into_iter().enumerate() {
        if d != me {
            senders[d]
                .send(Packet {
                    seq: this,
                    payload: Payload::Records(recs),
                })
                .expect("peer hung up");
        }
    }
    let mut inbox: Vec<EdgeRec> = mbox
        .recv_phase(this, p - 1)
        .into_iter()
        .flat_map(|pl| match pl {
            Payload::Records(recs) => recs,
            _ => unreachable!("phase {this} expected records"),
        })
        .collect();
    inbox.sort_unstable();
    inbox
}

/// Broadcast local stats, sum all ranks' (deterministic policy input).
fn allreduce_stats(
    st: &RankState,
    mbox: &mut Mailbox,
    senders: &[Sender<Packet>],
    me: usize,
    seq: &mut u64,
) -> (u64, u64, u64) {
    let this = *seq;
    *seq += 1;
    let local = (
        st.frontier_vertices(),
        st.frontier_edges(),
        st.unvisited_edges(),
    );
    for (d, tx) in senders.iter().enumerate() {
        if d != me {
            tx.send(Packet {
                seq: this,
                payload: Payload::Stats(local.0, local.1, local.2),
            })
            .expect("peer hung up");
        }
    }
    let (mut n_f, mut m_f, mut m_u) = local;
    for pl in mbox.recv_phase(this, senders.len() - 1) {
        match pl {
            Payload::Stats(a, b, c) => {
                n_f += a;
                m_f += b;
                m_u += c;
            }
            _ => unreachable!("phase {this} expected stats"),
        }
    }
    (n_f, m_f, m_u)
}

/// Broadcast hub contributions (from `next` + parent state) and merge.
fn exchange_hubs(
    st: &RankState,
    hubs: &mut HubState,
    mbox: &mut Mailbox,
    senders: &[Sender<Packet>],
    me: usize,
    seq: &mut u64,
) {
    let this = *seq;
    *seq += 1;
    let nbits = hubs.set.len();
    let mut curr = Bitmap::new(nbits);
    let mut visited = Bitmap::new(nbits);
    for (i, &hv) in hubs.set.hubs().iter().enumerate() {
        if st.owns(hv) {
            let l = st.local(hv);
            if st.next.contains(l) {
                curr.set(i);
            }
            if st.visited(l) {
                visited.set(i);
            }
        }
    }
    for (d, tx) in senders.iter().enumerate() {
        if d != me {
            tx.send(Packet {
                seq: this,
                payload: Payload::Hubs(
                    curr.as_words().to_vec(),
                    visited.as_words().to_vec(),
                ),
            })
            .expect("peer hung up");
        }
    }
    let mut merged_curr = curr;
    let mut merged_visited = visited;
    for pl in mbox.recv_phase(this, senders.len() - 1) {
        match pl {
            Payload::Hubs(curr, visited) => {
                merged_curr.union_with(&Bitmap::from_words(nbits, &curr));
                merged_visited.union_with(&Bitmap::from_words(nbits, &visited));
            }
            _ => unreachable!("phase {this} expected hub contributions"),
        }
    }
    hubs.curr = merged_curr;
    hubs.visited.union_with(&merged_visited);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::ThreadedCluster;
    use sw_graph::{generate_kronecker, KroneckerConfig};

    #[test]
    fn channel_backend_matches_phase_backend() {
        let el = generate_kronecker(&KroneckerConfig::graph500(11, 13));
        let cfg = BfsConfig::threaded_small(4)
            .with_messaging(crate::config::Messaging::Direct);
        let mut phase = ThreadedCluster::new(&el, 6, cfg).unwrap();
        let mut chans = ChannelCluster::new(&el, 6, cfg).unwrap();
        for root in [0u64, 5, 1234] {
            let a = phase.run(root).unwrap();
            let b = chans.run(root).unwrap();
            assert_eq!(a.parents, b.parents, "root {root}");
        }
    }

    #[test]
    fn channel_level_stats_match_phase_backend() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 4));
        let cfg = BfsConfig::threaded_small(2)
            .with_messaging(crate::config::Messaging::Direct);
        let mut phase = ThreadedCluster::new(&el, 4, cfg).unwrap();
        let mut chans = ChannelCluster::new(&el, 4, cfg).unwrap();
        let a = phase.run(2).unwrap();
        let b = chans.run(2).unwrap();
        assert_eq!(a.depth(), b.depth());
        for (x, y) in a.levels.iter().zip(&b.levels) {
            assert_eq!(x.direction, y.direction, "level {}", x.level);
            assert_eq!(x.frontier_vertices, y.frontier_vertices);
            assert_eq!(x.settled, y.settled);
        }
    }

    #[test]
    fn repeat_runs_identical() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 2));
        let mut c = ChannelCluster::new(&el, 4, BfsConfig::threaded_small(2)).unwrap();
        let a = c.run(7).unwrap();
        let b = c.run(7).unwrap();
        assert_eq!(a.parents, b.parents);
    }

    #[test]
    fn single_rank_works() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 1));
        let mut c = ChannelCluster::new(&el, 1, BfsConfig::threaded_small(1)).unwrap();
        let out = c.run(3).unwrap();
        let oracle = crate::baseline::sequential_bfs_levels(&el, 3);
        assert_eq!(out.levels_from_parents(), oracle);
    }

    #[test]
    fn validates_under_graph500_rules() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 8));
        let mut c = ChannelCluster::new(&el, 5, BfsConfig::threaded_small(2)).unwrap();
        let out = c.run(1).unwrap();
        // Levels must equal the oracle.
        let oracle = crate::baseline::sequential_bfs_levels(&el, 1);
        assert_eq!(out.levels_from_parents(), oracle);
    }

    #[test]
    fn bad_inputs_rejected() {
        let el = generate_kronecker(&KroneckerConfig::graph500(8, 1));
        assert!(ChannelCluster::new(&el, 0, BfsConfig::threaded_small(1)).is_err());
        let mut c = ChannelCluster::new(&el, 2, BfsConfig::threaded_small(1)).unwrap();
        assert!(c.run(1 << 40).is_err());
    }
}
