//! # sw-graph — graph substrate for the TaihuLight BFS reproduction
//!
//! This crate provides everything the distributed BFS needs to know about
//! graphs, independent of any machine model:
//!
//! * [`kronecker`] — the Graph500 Kronecker (R-MAT) edge-list generator with
//!   the benchmark's fixed initiator matrix (A=0.57, B=0.19, C=0.19, D=0.05),
//!   edge factor 16, vertex relabeling permutation, and deterministic
//!   parallel generation.
//! * [`edge_list`] — raw edge tuples as produced by the generator.
//! * [`csr`] — Compressed Sparse Row adjacency used by every traversal
//!   (the paper's "graph representation using CSR format").
//! * [`partition`] — the 1-D block partitioning of vertices over ranks that
//!   the paper selects ("each vertex of the input graph belongs to only one
//!   partition").
//! * [`bitmap`] — dense bitsets (sequential and atomic) used for frontiers
//!   and visited maps, with a word-level surface for word-parallel kernels.
//! * [`compressed`] — byte-coded (zigzag-varint delta) adjacency rows for
//!   hub vertices, with chunk headers for early-exit decode.
//! * [`hub`] — degree-aware hub vertex selection for the paper's
//!   "degree aware prefetch" optimization (§5).
//! * [`stats`] — degree-distribution statistics used by tests and by the
//!   traffic model.
//! * [`store`] — zero-copy graph storage: an on-disk partition format with
//!   per-section checksums, opened as an `mmap`-backed [`GraphStore`] whose
//!   CSR views traverse the file in place.
//!
//! All randomness is seed-driven; identical seeds give identical graphs
//! regardless of thread count.

pub mod bitmap;
pub mod compressed;
pub mod csr;
pub mod edge_list;
pub mod hub;
pub mod io;
pub mod kronecker;
pub mod partition;
pub mod stats;
pub mod store;
pub mod transform;

pub use bitmap::{AtomicBitmap, Bitmap};
pub use compressed::{CodedIter, CompressedCsr};
pub use csr::Csr;
pub use edge_list::EdgeList;
pub use kronecker::{generate_kronecker, KroneckerConfig};
pub use partition::Partition1D;
pub use store::{GraphStore, StorageBackend, StoreManifest};

/// Global vertex identifier. Graph500 scale 40 needs 2^40 ids, so 64 bits.
pub type Vid = u64;

/// Local (per-partition) vertex index.
pub type LocalVid = u32;
