//! Social-network analytics — the workload class the paper's introduction
//! motivates ("analyzing unstructured data, such as social network
//! graphs").
//!
//! Treats a Kronecker graph as a social network and answers four classic
//! questions with the distributed kernels, all running on the same
//! shuffle/relay framework as the BFS:
//!
//! * degrees of separation (BFS hop histogram),
//! * communities (weakly connected components),
//! * influencers (PageRank top-10),
//! * the tightly-knit core (k-core decomposition).
//!
//! Run with: `cargo run --release --example social_network`

use swbfs::algos::pagerank::top_k;
use swbfs::algos::{
    betweenness_distributed, kcore_distributed, pagerank_distributed, wcc_distributed,
    AlgoCluster,
};
use swbfs::bfs::config::Messaging;
use swbfs::bfs::{BfsConfig, ClusterBuilder};
use swbfs::graph::{generate_kronecker, KroneckerConfig};

fn main() {
    let el = generate_kronecker(&KroneckerConfig::graph500(15, 2026));
    let n = el.num_vertices;
    println!("social network: {n} members, {} friendships\n", el.len());

    // --- Degrees of separation ---------------------------------------
    let mut bfs = ClusterBuilder::new(&el, 8, BfsConfig::threaded_small(4))
        .build()
        .unwrap();
    let celebrity = (0..n).max_by_key(|&v| bfs.degree_of(v)).unwrap();
    let out = bfs.run(celebrity).unwrap();
    let levels = out.levels_from_parents();
    let mut hist = vec![0u64; out.depth() as usize + 1];
    for l in levels.iter().flatten() {
        hist[*l as usize] += 1;
    }
    println!(
        "degrees of separation from the best-connected member ({} friends):",
        bfs.degree_of(celebrity)
    );
    for (hop, count) in hist.iter().enumerate() {
        let bar = "#".repeat((count * 50 / out.reached().max(1)) as usize);
        println!("  {hop} hops: {count:>7} {bar}");
    }
    println!(
        "  unreachable: {}\n",
        n - out.reached()
    );

    // --- Communities ---------------------------------------------------
    let mut cluster = AlgoCluster::new(&el, 8, 4, Messaging::Relay);
    let labels = wcc_distributed(&mut cluster);
    let sizes = swbfs::algos::wcc::component_sizes(&labels);
    let mut by_size: Vec<u64> = sizes.values().copied().collect();
    by_size.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "communities: {} total; largest {} members ({:.1}% of the network); \
         {} singletons",
        sizes.len(),
        by_size[0],
        100.0 * by_size[0] as f64 / n as f64,
        by_size.iter().filter(|&&s| s == 1).count()
    );

    // --- Influencers -----------------------------------------------------
    let mut cluster = AlgoCluster::new(&el, 8, 4, Messaging::Relay);
    let scores = pagerank_distributed(&mut cluster, 20);
    println!("\ntop-10 influencers by PageRank (20 iterations):");
    for (i, (v, s)) in top_k(&scores, 10).into_iter().enumerate() {
        println!(
            "  {:>2}. member {v:>6}  score {s:.3e}  ({} friends)",
            i + 1,
            bfs.degree_of(v)
        );
    }

    // --- Brokers (sampled betweenness) ------------------------------------
    let mut cluster = AlgoCluster::new(&el, 8, 4, Messaging::Relay);
    let pivots: Vec<u64> = (0..16).map(|i| (i * 2039) % n).collect();
    let bc = betweenness_distributed(&mut cluster, &pivots);
    let brokers = top_k(&bc, 5);
    println!(
        "\ntop-5 brokers by sampled betweenness ({} pivots):",
        pivots.len()
    );
    for (i, (v, score)) in brokers.into_iter().enumerate() {
        println!("  {:>2}. member {v:>6}  bc {score:.1}", i + 1);
    }

    // --- Tightly-knit core ----------------------------------------------
    println!("\nk-core survivors:");
    for k in [2u64, 4, 8, 16, 32] {
        let mut cluster = AlgoCluster::new(&el, 8, 4, Messaging::Relay);
        let core = kcore_distributed(&mut cluster, k);
        let survivors = core.iter().filter(|&&x| x).count();
        println!(
            "  {k:>2}-core: {survivors:>7} members ({:.2}%)",
            100.0 * survivors as f64 / n as f64
        );
    }
}
