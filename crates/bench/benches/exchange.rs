//! Old vs pooled exchange pipeline, Direct and Relay, under BFS-shaped
//! traffic at Graph500 scales 14 and 16.
//!
//! "old" rebuilds the seed's nested `Vec<Vec<Vec<EdgeRec>>>` outboxes
//! every iteration and runs the legacy per-destination materializing
//! exchange — the per-level allocation behaviour the arena removes.
//! "pooled" checks flat outboxes out of a warm [`ExchangeArena`], fills
//! them with the same records, exchanges, and recycles the inboxes — the
//! steady-state loop the threaded backend now runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sw_net::GroupLayout;
use swbfs_core::arena::ExchangeArena;
use swbfs_core::config::Messaging;
use swbfs_core::exchange::{legacy, Codec};
use swbfs_core::messages::EdgeRec;
use swbfs_core::modules::Outboxes;

const RANKS: usize = 32;
const GROUP: u32 = 8;

/// Records per ordered rank pair for a peak BFS level at `scale`:
/// roughly half the directed edges leave the generating rank, spread
/// uniformly over the other ranks (Kronecker traffic is near-uniform
/// across a 1-D partition at this rank count).
fn per_pair(scale: u32) -> usize {
    let records = (16u64 << scale) / 2;
    (records as usize) / (RANKS * (RANKS - 1))
}

/// One frontier record: ascending scan order in `u`, destination-owned
/// block in `v` — the clustering the compressed codec exploits.
fn rec(s: usize, d: usize, i: usize) -> EdgeRec {
    EdgeRec {
        u: ((s << 22) + i) as u64,
        v: ((d << 22) + (i * 17) % (1 << 14)) as u64,
    }
}

fn fill_nested(per_pair: usize) -> Vec<Vec<Vec<EdgeRec>>> {
    (0..RANKS)
        .map(|s| {
            (0..RANKS)
                .map(|d| {
                    if s == d {
                        Vec::new()
                    } else {
                        (0..per_pair).map(|i| rec(s, d, i)).collect()
                    }
                })
                .collect()
        })
        .collect()
}

fn fill_flat(out: &mut [Outboxes], per_pair: usize) {
    for (s, o) in out.iter_mut().enumerate() {
        for d in 0..RANKS {
            if d == s {
                continue;
            }
            for i in 0..per_pair {
                o.push(d as u32, rec(s, d, i));
            }
        }
    }
}

fn bench_exchange_pipeline(c: &mut Criterion) {
    let layout = GroupLayout::new(RANKS as u32, GROUP);
    let mut g = c.benchmark_group("exchange_pipeline");
    g.sample_size(10);
    for scale in [14u32, 16] {
        let pp = per_pair(scale);
        let records = (RANKS * (RANKS - 1) * pp) as u64;
        g.throughput(Throughput::Elements(records));

        for (mode_name, mode) in [("direct", Messaging::Direct), ("relay", Messaging::Relay)] {
            g.bench_function(BenchmarkId::new(format!("{mode_name}_old"), scale), |b| {
                b.iter(|| {
                    let out = fill_nested(pp);
                    legacy::exchange(mode, out, &layout, Codec::Fixed(16))
                });
            });

            let mut arena = ExchangeArena::new(RANKS);
            // Warm the pool so the measured loop is the steady state.
            let mut out = arena.lend_outboxes();
            fill_flat(&mut out, pp);
            let (inboxes, _) = arena.exchange(mode, out, &layout, Codec::Fixed(16));
            arena.recycle_inboxes(inboxes);
            g.bench_function(BenchmarkId::new(format!("{mode_name}_pooled"), scale), |b| {
                b.iter(|| {
                    let mut out = arena.lend_outboxes();
                    fill_flat(&mut out, pp);
                    let (inboxes, stats) = arena.exchange(mode, out, &layout, Codec::Fixed(16));
                    arena.recycle_inboxes(inboxes);
                    stats
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_exchange_pipeline);
criterion_main!(benches);
