//! The span/event recording front end.
//!
//! A [`Tracer`] owns one [`EventRing`] per *lane* (a rank, plus by
//! convention one trailing `run` lane for cluster-wide phases), a
//! clock-domain tag, and a counter [`Registry`]. It is `Clone` (a
//! cheap `Arc` handle) and `Sync`: rank threads and parallel closures
//! record into their own lanes concurrently, wait-free.
//!
//! ## Clock domains
//!
//! * [`ClockDomain::Wall`] — `begin()` samples a monotonic clock;
//!   `end()` stores real elapsed nanoseconds. For profiling real runs;
//!   timestamps are *not* reproducible.
//! * The virtual domains ([`ClockDomain::VirtualWork`],
//!   [`ClockDomain::CycleSim`], [`ClockDomain::EventSim`]) — each lane
//!   carries a cursor; `end()` *charges* the span's work units to the
//!   cursor (`ts = cursor, dur = work, cursor += work`). Given
//!   deterministic instrumentation (work derived from record/edge
//!   counts, simulator cycles, or model nanoseconds — never from real
//!   time), the whole trace is a pure function of the input: fixed
//!   seed ⇒ byte-identical export. The domain tag records what one
//!   unit means; the mechanics are identical.
//!
//! Instrumentation charging transport-*invariant* work (records
//! generated, records delivered, edges scanned) makes virtual traces
//! comparable — even byte-identical — across message transports that
//! deliver the same records differently.

use crate::metrics::Registry;
use crate::report::{LaneReport, TraceReport};
use crate::ring::EventRing;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// `level` value for events not tied to a BFS level.
pub const NO_LEVEL: u32 = u32::MAX;

/// What timestamps mean.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockDomain {
    /// Real monotonic nanoseconds (profiling; not reproducible).
    Wall,
    /// Deterministic work units charged by the instrumentation
    /// (records, edges); bit-reproducible.
    VirtualWork,
    /// sw-arch cycle-simulator cycles; bit-reproducible.
    CycleSim,
    /// sw-net event-simulator model nanoseconds; bit-reproducible.
    EventSim,
}

impl ClockDomain {
    /// Stable identifier used in exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ClockDomain::Wall => "wall",
            ClockDomain::VirtualWork => "virtual-work",
            ClockDomain::CycleSim => "cycle-sim",
            ClockDomain::EventSim => "event-sim",
        }
    }

    /// Is this a deterministic (non-wall) domain?
    pub fn is_virtual(&self) -> bool {
        !matches!(self, ClockDomain::Wall)
    }
}

/// Span (duration) vs instant (point) event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A phase with a duration (Chrome `ph:"X"`).
    Span,
    /// A point marker (Chrome `ph:"i"`).
    Instant,
}

/// One recorded event. `name`/`cat` are `'static` so recording never
/// allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start timestamp (ns or virtual units).
    pub ts_ns: u64,
    /// Duration (0 for instants).
    pub dur_ns: u64,
    /// Phase name (e.g. `gen`, `bucket`, `deliver`, `relay`).
    pub name: &'static str,
    /// Category (e.g. `compute`, `net`, `gather`, `fault`).
    pub cat: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// BFS level, or [`NO_LEVEL`].
    pub level: u32,
    /// Free payload: work units, record count, byte count.
    pub arg: u64,
}

struct Lane {
    name: String,
    ring: EventRing,
    /// Virtual-domain clock cursor.
    cursor: AtomicU64,
}

struct Inner {
    domain: ClockDomain,
    epoch: Instant,
    lanes: Vec<Lane>,
    registry: Registry,
}

/// Cheaply clonable recording handle; see the module docs.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Tracer {
    /// A tracer with one ring of `capacity` events per named lane.
    pub fn new(domain: ClockDomain, lane_names: &[&str], capacity: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                domain,
                epoch: Instant::now(),
                lanes: lane_names
                    .iter()
                    .map(|n| Lane {
                        name: (*n).to_string(),
                        ring: EventRing::new(capacity),
                        cursor: AtomicU64::new(0),
                    })
                    .collect(),
                registry: Registry::new(),
            }),
        }
    }

    /// The conventional cluster layout: lanes `rank0..rankN-1` plus a
    /// trailing `run` lane for cluster-wide phases.
    pub fn for_ranks(domain: ClockDomain, ranks: usize, capacity: usize) -> Self {
        let names: Vec<String> = (0..ranks)
            .map(|r| format!("rank{r}"))
            .chain(std::iter::once("run".to_string()))
            .collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        Self::new(domain, &refs, capacity)
    }

    /// This tracer's clock domain.
    pub fn domain(&self) -> ClockDomain {
        self.inner.domain
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.inner.lanes.len()
    }

    /// Lane `i`'s display name.
    pub fn lane_name(&self, i: usize) -> &str {
        &self.inner.lanes[i].name
    }

    /// The index of the trailing `run` lane under the [`Self::for_ranks`]
    /// convention.
    pub fn run_lane(&self) -> usize {
        self.num_lanes() - 1
    }

    /// The shared counter registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Opens a span: returns the wall timestamp (ns since the tracer's
    /// epoch), or 0 in virtual domains (the close charges the cursor).
    #[inline]
    pub fn begin(&self) -> u64 {
        match self.inner.domain {
            ClockDomain::Wall => self.now_ns(),
            _ => 0,
        }
    }

    /// Closes a span opened with [`Self::begin`] onto `lane`.
    ///
    /// Wall domain: `ts = t0`, `dur = now - t0`. Virtual domains:
    /// `ts = lane cursor`, `dur = work`, cursor advances by `work`.
    /// `work` is always stored in [`TraceEvent::arg`].
    pub fn end(&self, lane: usize, name: &'static str, cat: &'static str, level: u32, t0: u64, work: u64) {
        let l = &self.inner.lanes[lane];
        let (ts, dur) = match self.inner.domain {
            ClockDomain::Wall => (t0, self.now_ns().saturating_sub(t0)),
            _ => (l.cursor.fetch_add(work, Ordering::Relaxed), work),
        };
        l.ring.push(TraceEvent {
            ts_ns: ts,
            dur_ns: dur,
            name,
            cat,
            kind: EventKind::Span,
            level,
            arg: work,
        });
    }

    /// Records a point event at the lane's current time (wall now, or
    /// the virtual cursor without advancing it).
    pub fn instant(&self, lane: usize, name: &'static str, cat: &'static str, level: u32, arg: u64) {
        let l = &self.inner.lanes[lane];
        let ts = match self.inner.domain {
            ClockDomain::Wall => self.now_ns(),
            _ => l.cursor.load(Ordering::Relaxed),
        };
        l.ring.push(TraceEvent {
            ts_ns: ts,
            dur_ns: 0,
            name,
            cat,
            kind: EventKind::Instant,
            level,
            arg,
        });
    }

    /// Records a span with explicit timestamps — for replaying model
    /// time (cycle-sim / event-sim nanoseconds) into a lane. Does not
    /// move the lane cursor.
    #[allow(clippy::too_many_arguments)]
    pub fn span_at(
        &self,
        lane: usize,
        name: &'static str,
        cat: &'static str,
        level: u32,
        ts: u64,
        dur: u64,
        arg: u64,
    ) {
        self.inner.lanes[lane].ring.push(TraceEvent {
            ts_ns: ts,
            dur_ns: dur,
            name,
            cat,
            kind: EventKind::Span,
            level,
            arg,
        });
    }

    /// Advances `lane`'s virtual cursor without recording (idle gaps).
    pub fn advance(&self, lane: usize, units: u64) {
        self.inner.lanes[lane].cursor.fetch_add(units, Ordering::Relaxed);
    }

    /// Total events dropped on ring overflow, across lanes.
    pub fn dropped_events(&self) -> u64 {
        self.inner.lanes.iter().map(|l| l.ring.dropped()).sum()
    }

    /// Events dropped on ring overflow in one lane — the cheap
    /// accessor behind the live exporter's per-rank drop gauges
    /// (unlike [`Tracer::report`], no event cloning).
    pub fn lane_dropped(&self, lane: usize) -> u64 {
        self.inner.lanes[lane].ring.dropped()
    }

    /// Events currently recorded in one lane.
    pub fn lane_recorded(&self, lane: usize) -> usize {
        self.inner.lanes[lane].ring.len()
    }

    /// Total events currently recorded, across lanes.
    pub fn recorded_events(&self) -> usize {
        self.inner.lanes.iter().map(|l| l.ring.len()).sum()
    }

    /// Merges every lane into a [`TraceReport`] (non-destructive):
    /// events in claim order per lane, plus a registry snapshot.
    pub fn report(&self) -> TraceReport {
        TraceReport {
            domain: self.inner.domain,
            lanes: self
                .inner
                .lanes
                .iter()
                .map(|l| LaneReport {
                    name: l.name.clone(),
                    events: l.ring.snapshot(),
                    dropped: l.ring.dropped(),
                })
                .collect(),
            counters: self.inner.registry.snapshot(),
        }
    }

    /// Clears every lane, cursor and registry cell for a fresh run.
    /// Quiescent-only, like [`EventRing::reset`].
    pub fn reset(&self) {
        for l in &self.inner.lanes {
            l.ring.reset();
            l.cursor.store(0, Ordering::Relaxed);
        }
        self.inner.registry.reset();
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("domain", &self.inner.domain)
            .field("lanes", &self.num_lanes())
            .field("recorded", &self.recorded_events())
            .field("dropped", &self.dropped_events())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_spans_charge_the_lane_cursor() {
        let t = Tracer::new(ClockDomain::VirtualWork, &["a", "b"], 16);
        let t0 = t.begin();
        t.end(0, "gen", "compute", 0, t0, 10);
        let t1 = t.begin();
        t.end(0, "handle", "compute", 0, t1, 5);
        t.end(1, "gen", "compute", 0, 0, 7);
        let rep = t.report();
        let a = &rep.lanes[0].events;
        assert_eq!((a[0].ts_ns, a[0].dur_ns), (0, 10));
        assert_eq!((a[1].ts_ns, a[1].dur_ns), (10, 5));
        assert_eq!(rep.lanes[1].events[0].ts_ns, 0, "lanes have private cursors");
    }

    #[test]
    fn wall_spans_measure_real_time() {
        let t = Tracer::new(ClockDomain::Wall, &["a"], 16);
        let t0 = t.begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.end(0, "work", "compute", NO_LEVEL, t0, 42);
        let ev = t.report().lanes[0].events[0];
        assert!(ev.dur_ns >= 1_000_000, "slept 2ms, measured {}", ev.dur_ns);
        assert_eq!(ev.arg, 42, "work units still recorded as arg");
    }

    #[test]
    fn for_ranks_layout_and_reset() {
        let t = Tracer::for_ranks(ClockDomain::VirtualWork, 3, 4);
        assert_eq!(t.num_lanes(), 4);
        assert_eq!(t.lane_name(0), "rank0");
        assert_eq!(t.lane_name(t.run_lane()), "run");
        t.end(0, "x", "c", 0, 0, 1);
        t.instant(t.run_lane(), "mark", "fault", 2, 9);
        t.registry().counter("n").incr();
        assert_eq!(t.recorded_events(), 2);
        t.reset();
        assert_eq!(t.recorded_events(), 0);
        assert_eq!(t.report().counters.get("n"), 0);
        let t0 = t.begin();
        t.end(0, "x", "c", 0, t0, 3);
        assert_eq!(t.report().lanes[0].events[0].ts_ns, 0, "cursor reset");
    }

    #[test]
    fn instants_do_not_advance_the_cursor() {
        let t = Tracer::new(ClockDomain::VirtualWork, &["a"], 8);
        t.end(0, "s", "c", 0, 0, 4);
        t.instant(0, "i", "fault", 0, 1);
        t.end(0, "s2", "c", 0, 0, 2);
        let evs = t.report().lanes[0].events.clone();
        assert_eq!(evs[1].ts_ns, 4);
        assert_eq!(evs[2].ts_ns, 4, "instant did not consume time");
    }
}
