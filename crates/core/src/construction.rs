//! Distributed graph construction — Graph500 step (3) as the real machine
//! runs it.
//!
//! On the physical system no node ever sees the whole edge list: the
//! generator writes per-node chunks, and construction *shuffles* each
//! edge to the owners of its endpoints before the local CSR build — one
//! more reaction-module workload, and part of what §5 means by scaling
//! "the entire benchmark to 10.6 million cores". This module implements
//! that shuffle over the same Direct/Relay exchange as the traversal and
//! proves (by test) that the resulting partitioned CSRs are identical to
//! the shortcut build from the full list.

use crate::arena::ExchangeArena;
use crate::config::Messaging;
use crate::exchange::{Codec, ExchangeStats};
use crate::messages::EdgeRec;
use sw_graph::{Csr, EdgeList, Partition1D, Vid};
use sw_net::GroupLayout;

/// Traffic and outcome of a distributed construction.
#[derive(Debug)]
pub struct Construction {
    /// Per-rank CSR partitions, identical to
    /// `Csr::from_edge_list_rows(full_list, …)`.
    pub csrs: Vec<Csr>,
    /// Exchange traffic the shuffle generated.
    pub stats: ExchangeStats,
}

/// Shuffles `el` — held as `ranks` generator chunks — to endpoint owners
/// and builds every rank's CSR partition.
///
/// Chunk `r` is `el.edges[r * chunk .. (r+1) * chunk]` (the deterministic
/// slices a per-node Kronecker generator would emit). Every edge travels
/// to `owner(u)` and, when different, `owner(v)`.
pub fn build_distributed(
    el: &EdgeList,
    part: &Partition1D,
    layout: &GroupLayout,
    messaging: Messaging,
) -> Construction {
    let ranks = part.num_ranks() as usize;
    let chunk = el.len().div_ceil(ranks.max(1));

    // Shuffle edges to owners. Each rank keeps locally-owned edges and
    // sends the rest.
    let mut kept: Vec<Vec<(Vid, Vid)>> = vec![Vec::new(); ranks];
    let mut arena = ExchangeArena::new(ranks);
    let mut out = arena.lend_outboxes();
    for (r, edges) in el.edges.chunks(chunk.max(1)).enumerate() {
        for &(u, v) in edges {
            let ou = part.owner(u) as usize;
            let ov = part.owner(v) as usize;
            if ou == r {
                kept[r].push((u, v));
            } else {
                out[r].push(ou as u32, EdgeRec { u, v });
            }
            if ov != ou {
                if ov == r {
                    kept[r].push((u, v));
                } else {
                    out[r].push(ov as u32, EdgeRec { u, v });
                }
            }
        }
    }
    let (inboxes, stats) = arena.exchange(messaging, out, layout, Codec::Fixed(16));

    // Assemble per-rank edge sets and build the CSR rows. The local CSR
    // build sorts neighbour lists, so arrival order does not matter.
    let csrs = (0..ranks)
        .map(|r| {
            let mut edges = std::mem::take(&mut kept[r]);
            edges.extend(inboxes[r].iter().map(|rec| (rec.u, rec.v)));
            let local = EdgeList::new(el.num_vertices, edges);
            let (start, end) = part.range(r as u32);
            Csr::from_edge_list_rows(&local, start, end - start)
        })
        .collect();
    Construction { csrs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::{generate_kronecker, KroneckerConfig};

    fn check(el: &EdgeList, ranks: u32, messaging: Messaging) {
        let part = Partition1D::new(el.num_vertices, ranks);
        let layout = GroupLayout::new(ranks, 3.min(ranks));
        let built = build_distributed(el, &part, &layout, messaging);
        assert_eq!(built.csrs.len(), ranks as usize);
        for r in 0..ranks {
            let (start, end) = part.range(r);
            let expect = Csr::from_edge_list_rows(el, start, end - start);
            assert_eq!(built.csrs[r as usize], expect, "rank {r}");
        }
    }

    #[test]
    fn matches_shortcut_build_on_kronecker() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 12));
        for ranks in [1u32, 4, 7] {
            check(&el, ranks, Messaging::Relay);
        }
        check(&el, 5, Messaging::Direct);
    }

    #[test]
    fn handles_self_loops_and_duplicates() {
        let el = EdgeList::new(6, vec![(0, 0), (1, 5), (1, 5), (5, 1), (2, 2)]);
        check(&el, 3, Messaging::Relay);
    }

    #[test]
    fn traffic_is_bounded_by_two_records_per_edge() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 8));
        let part = Partition1D::new(el.num_vertices, 8);
        let layout = GroupLayout::new(8, 4);
        let built = build_distributed(&el, &part, &layout, Messaging::Direct);
        assert!(built.stats.record_hops <= 2 * el.len() as u64);
        assert!(built.stats.record_hops > 0);
    }

    #[test]
    fn empty_graph_constructs() {
        let el = EdgeList::new(4, vec![]);
        check(&el, 2, Messaging::Direct);
    }
}
