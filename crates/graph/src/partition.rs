//! 1-D block partitioning of the vertex set over ranks.
//!
//! The paper partitions the CSR adjacency matrix by rows so every vertex has
//! exactly one owner. Because the generator scrambles vertex labels first,
//! equal-size contiguous blocks are balanced in expectation (the paper's
//! "balance the graph partitioning"). Blocks also make `owner(v)` a divide —
//! the address algebra the Forward/Backward generators evaluate per edge.

use crate::{LocalVid, Vid};

/// A 1-D block partition of `num_vertices` ids over `num_ranks` owners.
///
/// Every rank owns a contiguous block of `ceil(n / p)` ids except possibly
/// the last.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Partition1D {
    num_vertices: Vid,
    num_ranks: u32,
    block: Vid,
}

impl Partition1D {
    /// Creates a partition of `num_vertices` over `num_ranks`.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(num_vertices: Vid, num_ranks: u32) -> Self {
        assert!(num_vertices > 0, "empty vertex set");
        assert!(num_ranks > 0, "zero ranks");
        Self {
            num_vertices,
            num_ranks,
            block: num_vertices.div_ceil(num_ranks as Vid),
        }
    }

    /// Size of the global id space.
    pub fn num_vertices(&self) -> Vid {
        self.num_vertices
    }

    /// Number of owners.
    pub fn num_ranks(&self) -> u32 {
        self.num_ranks
    }

    /// The owning rank of global vertex `v`.
    pub fn owner(&self, v: Vid) -> u32 {
        debug_assert!(v < self.num_vertices);
        (v / self.block) as u32
    }

    /// `[start, end)` global-id range owned by `rank`.
    pub fn range(&self, rank: u32) -> (Vid, Vid) {
        assert!(rank < self.num_ranks, "rank out of range");
        let start = (rank as Vid * self.block).min(self.num_vertices);
        let end = (start + self.block).min(self.num_vertices);
        (start, end)
    }

    /// Number of vertices owned by `rank`.
    pub fn owned_count(&self, rank: u32) -> Vid {
        let (s, e) = self.range(rank);
        e - s
    }

    /// Translates a global id to its owner-local index.
    pub fn to_local(&self, v: Vid) -> LocalVid {
        (v % self.block) as LocalVid
    }

    /// Translates `(rank, local)` back to the global id.
    pub fn to_global(&self, rank: u32, local: LocalVid) -> Vid {
        rank as Vid * self.block + local as Vid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_vertices_exactly_once() {
        for (n, p) in [(100u64, 7u32), (64, 64), (1, 1), (1000, 3), (5, 8)] {
            let part = Partition1D::new(n, p);
            let mut covered = 0;
            for r in 0..p {
                let (s, e) = part.range(r);
                covered += e - s;
                for v in s..e {
                    assert_eq!(part.owner(v), r, "n={n} p={p} v={v}");
                }
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn local_global_round_trip() {
        let part = Partition1D::new(1000, 7);
        for v in [0u64, 1, 142, 143, 999] {
            let r = part.owner(v);
            let l = part.to_local(v);
            assert_eq!(part.to_global(r, l), v);
        }
    }

    #[test]
    fn blocks_are_balanced() {
        let part = Partition1D::new(1 << 20, 40);
        let sizes: Vec<_> = (0..40).map(|r| part.owned_count(r)).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= part.num_vertices().div_ceil(40) );
        assert_eq!(sizes.iter().sum::<u64>(), 1 << 20);
    }

    #[test]
    fn more_ranks_than_vertices_leaves_empty_tails() {
        let part = Partition1D::new(5, 8);
        assert_eq!(part.owned_count(0), 1);
        assert_eq!(part.owned_count(4), 1);
        assert_eq!(part.owned_count(5), 0);
        assert_eq!(part.owned_count(7), 0);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn range_rejects_bad_rank() {
        Partition1D::new(10, 2).range(2);
    }
}
