//! Property tests for the socket-fabric framing layer: arbitrary record
//! batches must round-trip through the length-prefixed codec under any
//! read splitting, torn final frames must surface as structured errors
//! (which the transport maps to `ExchangeError::Protocol`), and no
//! input — aligned, torn, or pure noise — may panic the decoder or make
//! it deliver a partial frame.

use proptest::prelude::*;
use sw_net::framing::{
    BusyFrame, Frame, FrameDecoder, FrameError, QueryFrame, QueryOp, QueryStatus, ResultFrame,
    StatsFormat, StatsFrame, StatsReqFrame, FLAG_COMPRESSED, FRAME_HEADER_BYTES, FRAME_MAGIC,
    KIND_BUSY, KIND_QUERY, KIND_RESULT, KIND_STATS, KIND_STATS_REQ,
};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seed-driven batch of frames shaped like real exchange traffic:
/// control frames, empty termination indicators, record payloads of
/// assorted sizes (some "compressed"-flagged), spread over ranks and
/// phases.
fn frame_batch(seed: u64) -> Vec<Frame> {
    let mut st = seed;
    let n = 1 + (splitmix(&mut st) % 12) as usize;
    (0..n)
        .map(|_| {
            let len = match splitmix(&mut st) % 4 {
                0 => 0,
                1 => (splitmix(&mut st) % 9) as usize,
                2 => (splitmix(&mut st) % 300) as usize,
                _ => (splitmix(&mut st) % 5000) as usize,
            };
            Frame {
                kind: 1 + (splitmix(&mut st) % 9) as u8,
                flags: if splitmix(&mut st).is_multiple_of(2) { FLAG_COMPRESSED } else { 0 },
                phase: (splitmix(&mut st) % 1000) as u32,
                src: (splitmix(&mut st) % 64) as u32,
                dst: (splitmix(&mut st) % 64) as u32,
                payload: (0..len).map(|_| splitmix(&mut st) as u8).collect(),
            }
        })
        .collect()
}

/// A seed-driven batch of *query-service* frames (QUERY/RESULT/BUSY/
/// STATS_REQ/STATS typed payloads), shaped like a real client session:
/// questions with assorted operations and deadlines interleaved with
/// answers, shed notices, and telemetry polls.
fn service_batch(seed: u64) -> Vec<Frame> {
    let mut st = seed ^ 0x5EED;
    let n = 1 + (splitmix(&mut st) % 10) as usize;
    (0..n)
        .map(|_| match splitmix(&mut st) % 5 {
            3 => StatsReqFrame {
                id: splitmix(&mut st),
                format: if splitmix(&mut st).is_multiple_of(2) {
                    StatsFormat::Json
                } else {
                    StatsFormat::Prometheus
                },
            }
            .into_frame(),
            4 => {
                let len = (splitmix(&mut st) % 2000) as usize;
                StatsFrame {
                    id: splitmix(&mut st),
                    format: if splitmix(&mut st).is_multiple_of(2) {
                        StatsFormat::Json
                    } else {
                        StatsFormat::Prometheus
                    },
                    body: (0..len).map(|_| splitmix(&mut st) as u8).collect(),
                }
                .into_frame()
            }
            0 => QueryFrame {
                id: splitmix(&mut st),
                op: match splitmix(&mut st) % 3 {
                    0 => QueryOp::Distance,
                    1 => QueryOp::Reachable,
                    _ => QueryOp::KHop,
                },
                root: splitmix(&mut st),
                target: splitmix(&mut st),
                hops: (splitmix(&mut st) % 32) as u32,
                deadline_ms: (splitmix(&mut st) % 10_000) as u32,
            }
            .into_frame(),
            1 => ResultFrame {
                id: splitmix(&mut st),
                status: match splitmix(&mut st) % 3 {
                    0 => QueryStatus::Ok,
                    1 => QueryStatus::Timeout,
                    _ => QueryStatus::BadQuery,
                },
                value: splitmix(&mut st),
                batch_roots: (splitmix(&mut st) % 65) as u32,
                micros: splitmix(&mut st) % 1_000_000_000,
            }
            .into_frame(),
            _ => BusyFrame {
                id: splitmix(&mut st),
                queue_depth: (splitmix(&mut st) % 4096) as u32,
                queue_limit: (splitmix(&mut st) % 4096) as u32,
            }
            .into_frame(),
        })
        .collect()
}

fn encode_all(frames: &[Frame]) -> Vec<u8> {
    let mut wire = Vec::new();
    for f in frames {
        f.encode_into(&mut wire);
    }
    wire
}

/// Decodes an already-fed decoder to exhaustion.
fn drain(d: &mut FrameDecoder) -> Vec<Frame> {
    let mut got = Vec::new();
    while let Some(f) = d.next_frame().expect("well-formed stream") {
        got.push(f);
    }
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip under seed-driven chunked delivery: however the wire
    /// bytes are split into reads, the same frames come out in order
    /// and the stream finishes clean.
    #[test]
    fn round_trip_survives_arbitrary_read_chunking(seed in 0u64..u64::MAX) {
        let frames = frame_batch(seed);
        let wire = encode_all(&frames);
        let mut st = seed ^ 0xC0_FFEE;
        let mut d = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0usize;
        while pos < wire.len() {
            let take = 1 + (splitmix(&mut st) as usize) % 97;
            let end = (pos + take).min(wire.len());
            d.extend(&wire[pos..end]);
            got.extend(drain(&mut d));
            pos = end;
        }
        prop_assert_eq!(got, frames);
        prop_assert!(d.finish().is_ok());
    }

    /// A stream cut at *every* byte boundary: the complete prefix of
    /// frames is delivered, no partial frame ever escapes, and a cut
    /// that is not a frame boundary reports `Truncated` on EOF.
    #[test]
    fn every_cut_point_yields_prefix_or_structured_truncation(seed in 0u64..u64::MAX) {
        // Small batch so the per-byte scan stays cheap.
        let frames: Vec<Frame> = frame_batch(seed)
            .into_iter()
            .take(3)
            .map(|mut f| { f.payload.truncate(40); f })
            .collect();
        let wire = encode_all(&frames);
        // Frame boundary offsets.
        let mut bounds = vec![0usize];
        for f in &frames {
            bounds.push(bounds.last().unwrap() + f.wire_len());
        }
        for cut in 0..=wire.len() {
            let mut d = FrameDecoder::new();
            d.extend(&wire[..cut]);
            let got = drain(&mut d);
            // Delivered frames are exactly the fully-contained prefix.
            let complete = bounds.iter().filter(|&&b| b <= cut).count() - 1;
            prop_assert_eq!(got.len(), complete);
            prop_assert_eq!(&got[..], &frames[..complete]);
            if bounds.contains(&cut) {
                prop_assert!(d.finish().is_ok(), "cut {} is a boundary", cut);
            } else {
                let fin = d.finish();
                prop_assert!(
                    matches!(fin, Err(FrameError::Truncated { .. })),
                    "cut {} must be a torn frame, got {:?}", cut, fin
                );
            }
        }
    }

    /// Arbitrary noise never panics: the decoder either parses frames
    /// (only possible if the noise happens to start with the magic) or
    /// returns a structured error, and `finish` is always callable.
    #[test]
    fn noise_never_panics_and_never_delivers_partial_frames(seed in 0u64..u64::MAX) {
        let mut st = seed;
        let len = (splitmix(&mut st) % 4096) as usize;
        let noise: Vec<u8> = (0..len).map(|_| splitmix(&mut st) as u8).collect();
        let mut d = FrameDecoder::new();
        d.extend(&noise);
        loop {
            match d.next_frame() {
                Ok(Some(f)) => {
                    // Anything parsed must have had a full header + payload.
                    prop_assert!(f.wire_len() >= FRAME_HEADER_BYTES);
                }
                Ok(None) => break,
                Err(_) => break, // structured corruption verdict
            }
        }
        let _ = d.finish();
    }

    /// QUERY/RESULT/BUSY frames round-trip *typed* under arbitrary read
    /// chunking: whatever splits the socket produces, every frame comes
    /// back with its kind intact and its payload decoding to the exact
    /// typed value that was sent.
    #[test]
    fn service_frames_round_trip_typed_under_chunking(seed in 0u64..u64::MAX) {
        let frames = service_batch(seed);
        let wire = encode_all(&frames);
        let mut st = seed ^ 0xFACE;
        let mut d = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0usize;
        while pos < wire.len() {
            let take = 1 + (splitmix(&mut st) as usize) % 61;
            let end = (pos + take).min(wire.len());
            d.extend(&wire[pos..end]);
            got.extend(drain(&mut d));
            pos = end;
        }
        prop_assert_eq!(got.len(), frames.len());
        for (g, f) in got.iter().zip(&frames) {
            prop_assert_eq!(g.kind, f.kind);
            match f.kind {
                KIND_QUERY => prop_assert_eq!(
                    QueryFrame::from_frame(g).unwrap(),
                    QueryFrame::from_frame(f).unwrap()
                ),
                KIND_RESULT => prop_assert_eq!(
                    ResultFrame::from_frame(g).unwrap(),
                    ResultFrame::from_frame(f).unwrap()
                ),
                KIND_BUSY => prop_assert_eq!(
                    BusyFrame::from_frame(g).unwrap(),
                    BusyFrame::from_frame(f).unwrap()
                ),
                KIND_STATS_REQ => prop_assert_eq!(
                    StatsReqFrame::from_frame(g).unwrap(),
                    StatsReqFrame::from_frame(f).unwrap()
                ),
                KIND_STATS => prop_assert_eq!(
                    StatsFrame::from_frame(g).unwrap(),
                    StatsFrame::from_frame(f).unwrap()
                ),
                other => prop_assert!(false, "unexpected kind {}", other),
            }
        }
        prop_assert!(d.finish().is_ok());
    }

    /// A service stream cut at every byte boundary: complete frames of
    /// the prefix are delivered and typed-decodable, a cut inside a
    /// frame is a structured `Truncated` on EOF, and no partial QUERY/
    /// RESULT/BUSY payload ever reaches a typed decoder.
    #[test]
    fn torn_service_frames_are_structured_not_partial(seed in 0u64..u64::MAX) {
        let frames: Vec<Frame> = service_batch(seed).into_iter().take(3).collect();
        let wire = encode_all(&frames);
        let mut bounds = vec![0usize];
        for f in &frames {
            bounds.push(bounds.last().unwrap() + f.wire_len());
        }
        for cut in 0..=wire.len() {
            let mut d = FrameDecoder::new();
            d.extend(&wire[..cut]);
            let got = drain(&mut d);
            let complete = bounds.iter().filter(|&&b| b <= cut).count() - 1;
            prop_assert_eq!(got.len(), complete);
            for (g, f) in got.iter().zip(&frames) {
                // Whatever arrived complete decodes exactly; a typed
                // decoder never sees a torn payload because the framing
                // layer withholds incomplete frames entirely.
                prop_assert_eq!(g, f);
                match g.kind {
                    KIND_QUERY => prop_assert!(QueryFrame::from_frame(g).is_ok()),
                    KIND_RESULT => prop_assert!(ResultFrame::from_frame(g).is_ok()),
                    KIND_BUSY => prop_assert!(BusyFrame::from_frame(g).is_ok()),
                    KIND_STATS_REQ => prop_assert!(StatsReqFrame::from_frame(g).is_ok()),
                    KIND_STATS => prop_assert!(StatsFrame::from_frame(g).is_ok()),
                    _ => {}
                }
            }
            if bounds.contains(&cut) {
                prop_assert!(d.finish().is_ok());
            } else {
                prop_assert!(matches!(d.finish(), Err(FrameError::Truncated { .. })));
            }
        }
    }

    /// Flipping any single header byte of a lone frame is detected: the
    /// decode either errors (magic/oversize), comes back incomplete
    /// (longer length announced), or yields a frame that differs — it
    /// never silently yields the original frame.
    #[test]
    fn header_corruption_cannot_impersonate_the_original(seed in 0u64..u64::MAX) {
        let f = &frame_batch(seed)[0];
        let wire = f.encode();
        for i in 0..FRAME_HEADER_BYTES {
            let mut bad = wire.clone();
            bad[i] ^= 0x5A;
            let mut d = FrameDecoder::new();
            d.extend(&bad);
            match d.next_frame() {
                Ok(Some(g)) => prop_assert_ne!(&g, f),
                Ok(None) => {
                    // Length grew: EOF must then report the tear.
                    prop_assert!(d.finish().is_err());
                }
                Err(FrameError::BadMagic { found }) => prop_assert_ne!(found, FRAME_MAGIC),
                Err(_) => {}
            }
        }
    }
}

/// Deterministic spot check: the documented header layout is the wire
/// layout (offset-for-offset), so an independent implementation (the
/// rank daemon is a separate OS process) can rely on the table in the
/// module docs.
#[test]
fn header_layout_matches_the_documented_table() {
    let f = Frame {
        kind: 5,
        flags: FLAG_COMPRESSED,
        phase: 0x0A0B_0C0D,
        src: 3,
        dst: 9,
        payload: vec![0xEE; 4],
    };
    let w = f.encode();
    assert_eq!(&w[0..4], &FRAME_MAGIC.to_le_bytes());
    assert_eq!(w[4], 5);
    assert_eq!(w[5], FLAG_COMPRESSED);
    assert_eq!(&w[6..10], &0x0A0B_0C0Du32.to_le_bytes());
    assert_eq!(&w[10..14], &3u32.to_le_bytes());
    assert_eq!(&w[14..18], &9u32.to_le_bytes());
    assert_eq!(&w[18..22], &4u32.to_le_bytes());
    assert_eq!(&w[22..], &[0xEE; 4]);
    assert_eq!(w.len(), f.wire_len());
}
