//! Multi-writer races against [`EventRing`] at adversarially tiny
//! capacities.
//!
//! The ring's contract under contention is exact, not best-effort:
//!
//! 1. **Conservation** — every push is either recorded or counted as a
//!    drop: `recorded + dropped == total pushes`, at every capacity
//!    including 0 and 1.
//! 2. **No torn events** — each writer encodes every field of its
//!    events as a fixed function of the timestamp; a reader that
//!    observes a published slot must see all fields from the *same*
//!    push (a mix of two writers' fields would break the function).
//! 3. **Well-formed exports** — a tracer whose lanes were hammered
//!    concurrently past overflow still renders a syntactically valid
//!    JSON report with the drop tally surfaced.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use sw_trace::ring::EventRing;
use sw_trace::{check_syntax, ClockDomain, EventKind, TraceEvent, Tracer};

/// Every field derived from `ts`: tearing any one of them breaks the
/// relation the verifier checks.
fn sealed_event(ts: u64) -> TraceEvent {
    TraceEvent {
        ts_ns: ts,
        dur_ns: ts.wrapping_mul(13).wrapping_add(5),
        name: "race",
        cat: "test",
        kind: EventKind::Span,
        level: (ts % 97) as u32,
        arg: ts.wrapping_mul(31).wrapping_add(7),
    }
}

fn assert_sealed(e: &TraceEvent) {
    let ts = e.ts_ns;
    assert_eq!(e.dur_ns, ts.wrapping_mul(13).wrapping_add(5), "torn dur");
    assert_eq!(e.level, (ts % 97) as u32, "torn level");
    assert_eq!(e.arg, ts.wrapping_mul(31).wrapping_add(7), "torn arg");
    assert_eq!(e.name, "race");
    assert_eq!(e.cat, "test");
}

fn hammer(capacity: usize, writers: u64, pushes_per_writer: u64) {
    let ring = Arc::new(EventRing::new(capacity));
    let threads: Vec<_> = (0..writers)
        .map(|w| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                let mut accepted = 0u64;
                for i in 0..pushes_per_writer {
                    // Unique ts per (writer, i) so duplicates would be
                    // visible too.
                    if ring.push(sealed_event(w * pushes_per_writer + i + 1)) {
                        accepted += 1;
                    }
                }
                accepted
            })
        })
        .collect();
    let accepted: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();

    let total = writers * pushes_per_writer;
    let snap = ring.snapshot();
    assert_eq!(
        snap.len() as u64 + ring.dropped(),
        total,
        "capacity {capacity}: every push recorded or counted"
    );
    assert_eq!(
        accepted,
        snap.len() as u64,
        "capacity {capacity}: push return values agree with the snapshot"
    );
    assert_eq!(
        snap.len(),
        capacity.min(total as usize),
        "capacity {capacity}: ring fills exactly to capacity"
    );
    let mut seen = std::collections::HashSet::new();
    for e in &snap {
        assert_sealed(e);
        assert!(seen.insert(e.ts_ns), "duplicate event ts {}", e.ts_ns);
    }
}

#[test]
fn tiny_capacities_conserve_events_and_never_tear() {
    for capacity in [0usize, 1, 2, 3, 5, 8] {
        hammer(capacity, 4, 500);
    }
}

#[test]
fn large_overflow_under_heavy_contention() {
    hammer(64, 8, 10_000);
}

#[test]
fn concurrent_reader_sees_only_sealed_events() {
    // A reader snapshotting *while* writers are mid-push must only ever
    // observe fully published events — never a half-written slot.
    let ring = Arc::new(EventRing::new(7));
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for e in ring.snapshot() {
                    assert_sealed(&e);
                }
                snapshots += 1;
            }
            snapshots
        })
    };

    let writers: Vec<_> = (0..3u64)
        .map(|w| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for i in 0..20_000u64 {
                    ring.push(sealed_event(w * 20_000 + i + 1));
                }
            })
        })
        .collect();
    for t in writers {
        t.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().unwrap();
    assert!(snapshots > 0, "reader actually ran");
    assert_eq!(ring.snapshot().len() as u64 + ring.dropped(), 60_000);
}

#[test]
fn reset_between_fill_cycles_keeps_the_contract() {
    let ring = EventRing::new(3);
    for cycle in 0..10u64 {
        for i in 0..6u64 {
            ring.push(sealed_event(cycle * 100 + i + 1));
        }
        assert_eq!(ring.snapshot().len(), 3);
        assert_eq!(ring.dropped(), 3);
        for e in ring.snapshot() {
            assert_sealed(&e);
            assert!(e.ts_ns > cycle * 100, "stale event from a prior cycle");
        }
        ring.reset();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }
}

#[test]
fn overflowed_tracer_still_exports_well_formed_reports() {
    // Tiny per-lane capacity, hammered concurrently from one thread per
    // lane (the tracer's lane discipline), far past overflow.
    let lanes = 4usize;
    let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, lanes, 8);
    let threads: Vec<_> = (0..lanes)
        .map(|lane| {
            let tracer = tracer.clone();
            thread::spawn(move || {
                for i in 0..1_000u64 {
                    let t0 = tracer.begin();
                    tracer.end(lane, "gen", "compute", (i % 11) as u32, t0, i + 1);
                    tracer.instant(lane, "retry", "fault", (i % 11) as u32, i);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    assert!(tracer.dropped_events() > 0, "overflow actually happened");
    assert_eq!(
        tracer.recorded_events() as u64 + tracer.dropped_events(),
        (lanes as u64) * 2_000,
        "tracer-level conservation across all lanes"
    );

    let rep = tracer.report();
    let json = rep.to_json();
    check_syntax(&json).expect("overflowed report still valid JSON");
    assert!(
        json.contains("\"dropped\": 1992"),
        "per-lane drop tally surfaced in the export"
    );
    let chrome = rep.chrome_trace_json();
    check_syntax(&chrome).expect("chrome export still valid JSON");
    assert!(
        chrome.contains(&format!("\"dropped_events\":{}", tracer.dropped_events())),
        "total drop tally surfaced in the chrome export"
    );
}
