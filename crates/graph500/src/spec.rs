//! Benchmark specification constants.

use serde::{Deserialize, Serialize};
use sw_graph::KroneckerConfig;

/// Number of search roots the benchmark requires.
pub const NUM_ROOTS: usize = 64;

/// A Graph500 problem instance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Graph500Spec {
    /// Problem scale: `2^scale` vertices.
    pub scale: u32,
    /// Edge factor; the spec fixes 16.
    pub edge_factor: u64,
    /// Generator / root-selection seed.
    pub seed: u64,
    /// Roots per run (64 in the official benchmark; tests shrink it).
    pub num_roots: usize,
}

impl Graph500Spec {
    /// The official configuration at a given scale.
    pub fn official(scale: u32, seed: u64) -> Self {
        Self {
            scale,
            edge_factor: 16,
            seed,
            num_roots: NUM_ROOTS,
        }
    }

    /// A shrunken configuration for quick runs.
    pub fn quick(scale: u32, seed: u64, num_roots: usize) -> Self {
        Self {
            num_roots,
            ..Self::official(scale, seed)
        }
    }

    /// The generator configuration for this instance.
    pub fn kronecker(&self) -> KroneckerConfig {
        let mut k = KroneckerConfig::graph500(self.scale, self.seed);
        k.edge_factor = self.edge_factor;
        k
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        1 << self.scale
    }

    /// Number of input edge tuples — the TEPS numerator.
    pub fn num_edges(&self) -> u64 {
        self.edge_factor << self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn official_spec_matches_benchmark() {
        let s = Graph500Spec::official(26, 1);
        assert_eq!(s.edge_factor, 16);
        assert_eq!(s.num_roots, 64);
        assert_eq!(s.num_vertices(), 1 << 26);
        assert_eq!(s.num_edges(), 16 << 26);
        let k = s.kronecker();
        assert_eq!(k.a, 0.57);
        assert!(k.permute_vertices);
    }

    #[test]
    fn quick_spec_shrinks_roots_only() {
        let s = Graph500Spec::quick(10, 2, 4);
        assert_eq!(s.num_roots, 4);
        assert_eq!(s.edge_factor, 16);
    }
}
