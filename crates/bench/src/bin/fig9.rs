//! Figure 9 ablation: logical-to-physical group mapping.
//!
//! The paper maps each communication group onto one super node so relay
//! stage-2 traffic rides the full-bisection bottom tier. This harness
//! quantifies what that mapping is worth by breaking it: the same Relay
//! CPE configuration under contiguous (paper), round-robin, and random
//! rank placement.

use sw_arch::ChipConfig;
use sw_bench::{experiment_profile, fmt_gteps, print_table};
use sw_net::{NetworkConfig, Placement};
use swbfs_core::traffic::extrapolate_depth;
use swbfs_core::{BfsConfig, ModeledCluster};

fn main() {
    let vpn: u64 = 16 << 20;
    eprintln!("measuring traffic profile...");
    let base_profile = experiment_profile(18, 16);

    println!("\nFigure 9 ablation: rank placement vs GTEPS (Relay CPE, 16M vpn)\n");
    let mut rows = Vec::new();
    for nodes in [1024u32, 4096, 16384, 40960] {
        let growth = (nodes as u64 * vpn) as f64 / (1u64 << 18) as f64;
        let profile = extrapolate_depth(&base_profile, growth);
        let gteps = |placement: Placement| {
            ModeledCluster::new(
                ChipConfig::sw26010(),
                NetworkConfig::taihulight(nodes),
                BfsConfig::paper(),
                vpn,
                profile.clone(),
            )
            .with_placement(placement)
            .run()
            .gteps()
        };
        rows.push(vec![
            format!("{nodes}"),
            fmt_gteps(gteps(Placement::Contiguous)),
            fmt_gteps(gteps(Placement::RoundRobin)),
            fmt_gteps(gteps(Placement::Random(7))),
        ]);
    }
    print_table(
        &["nodes", "contiguous (paper)", "round-robin", "random"],
        &rows,
    );
    println!("\nPaper (Fig. 9): \"we map each communication group into the same");
    println!("super node\" — misaligned placements push relay stage-2 traffic");
    println!("through the 1:4 over-subscribed central switch.");
}
