//! The Figure 1 processing modules.
//!
//! The BFS body is six modules — Forward Generator / Relay / Handler and
//! Backward Generator / Relay / Handler. Generators and handlers live here
//! as pure functions over [`RankState`](crate::rank::RankState) plus
//! outboxes; the relay modules are transport-level and live in
//! [`crate::exchange`]. Handlers are *dispose* modules (no output data);
//! everything else is a *reaction* module (produces records to send),
//! which on the real machine runs on the contention-free shuffle engine.

mod backward_generator;
mod backward_handler;
mod forward_generator;
mod forward_handler;

pub use backward_generator::backward_generator;
pub use backward_handler::backward_handler;
pub use forward_generator::forward_generator;
pub use forward_handler::forward_handler;

use crate::messages::EdgeRec;

/// Per-destination-rank record buffers a reaction module fills.
#[derive(Clone, Debug)]
pub struct Outboxes {
    boxes: Vec<Vec<EdgeRec>>,
}

impl Outboxes {
    /// Empty outboxes for `ranks` destinations.
    pub fn new(ranks: usize) -> Self {
        Self {
            boxes: vec![Vec::new(); ranks],
        }
    }

    /// Queues a record for `dest`.
    pub fn push(&mut self, dest: u32, rec: EdgeRec) {
        self.boxes[dest as usize].push(rec);
    }

    /// Number of destination slots.
    pub fn ranks(&self) -> usize {
        self.boxes.len()
    }

    /// Records queued for `dest`.
    pub fn for_rank(&self, dest: u32) -> &[EdgeRec] {
        &self.boxes[dest as usize]
    }

    /// Total queued records.
    pub fn total_records(&self) -> u64 {
        self.boxes.iter().map(|b| b.len() as u64).sum()
    }

    /// Consumes into the raw per-destination vectors.
    pub fn into_inner(self) -> Vec<Vec<EdgeRec>> {
        self.boxes
    }
}

/// What a module did — the per-module slice of
/// [`LevelStats`](crate::result::LevelStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModuleStats {
    /// Adjacency entries scanned.
    pub edges_scanned: u64,
    /// Claims applied without leaving the rank.
    pub local_claims: u64,
    /// Records suppressed by the replicated hub bitmaps.
    pub hub_skips: u64,
    /// Records queued for other ranks.
    pub records_out: u64,
}

impl ModuleStats {
    /// Accumulates another module's counters.
    pub fn absorb(&mut self, other: ModuleStats) {
        self.edges_scanned += other.edges_scanned;
        self.local_claims += other.local_claims;
        self.hub_skips += other.hub_skips;
        self.records_out += other.records_out;
    }
}
