//! swstore — the zero-copy storage gate: build once, serve forever.
//!
//! Three axes, all hard gates (no baseline file — every assertion is a
//! structural invariant of the store format, so there is nothing to
//! re-baseline):
//!
//! * **Engine** — a scale-N Kronecker instance is cold-built (degree
//!   ordering and hub-row compression on, so the optional store
//!   sections are exercised), persisted, then restarted through both
//!   storage backends. Every root's BFS must be bit-identical to the
//!   cold build, the deterministic counter sections must match, and
//!   the `store.*` counters must prove the mmap path copied zero
//!   adjacency bytes. Cold-build vs restart wall-clock is the headline
//!   table.
//! * **Serve** — `Server::build_store` persists the query service's
//!   plain store; a cold server and a store-restarted server answer a
//!   mixed query battery and every answer must agree bit for bit.
//! * **Baselines** — the committed counter snapshots
//!   (`BENCH_trace.json`, `BENCH_insight.json`, `BENCH_service.json`)
//!   must carry the `store.*` keys and carry them at **zero**: their
//!   workloads are cold-path, so a nonzero value would mean a store
//!   open leaked into a workload that never restarts — or a baseline
//!   was rewritten against the wrong binary.
//!
//! ```text
//! swstore [--scale N] [--ranks N] [--seed S] [--roots K] [--keep]
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use sw_graph::{generate_kronecker, KroneckerConfig, StorageBackend};
use sw_net::framing::{QueryOp, QueryStatus};
use sw_serve::{Client, Response, ServeConfig, Server};
use sw_trace::json::parse_flat_u64;
use swbfs_core::{BfsConfig, ClusterBuilder};

struct Opts {
    scale: u32,
    ranks: u32,
    seed: u64,
    roots: usize,
    keep: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts { scale: 16, ranks: 8, seed: 42, roots: 6, keep: false };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--scale" => o.scale = val("--scale")?.parse().map_err(|e| format!("bad --scale: {e}"))?,
            "--ranks" => o.ranks = val("--ranks")?.parse().map_err(|e| format!("bad --ranks: {e}"))?,
            "--seed" => o.seed = val("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--roots" => o.roots = val("--roots")?.parse().map_err(|e| format!("bad --roots: {e}"))?,
            "--keep" => o.keep = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(o)
}

/// Distinct deterministic roots spread over the id space.
fn pick_roots(n: u64, k: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(k);
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    while out.len() < k {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = x % n;
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| rd.flatten().filter_map(|e| e.metadata().ok()).map(|m| m.len()).sum())
        .unwrap_or(0)
}

/// Cold build → persist → restart on both backends; bit-identical BFS,
/// matching deterministic counters, zero-copy proof, timing table.
fn engine_axis(o: &Opts, dir: &Path) -> Result<(), String> {
    let el = generate_kronecker(&KroneckerConfig::graph500(o.scale, o.seed));
    let roots = pick_roots(el.num_vertices, o.roots);
    // Degree ordering + hub-row compression on: the persisted file
    // carries every optional section the format defines.
    let cfg = BfsConfig {
        degree_ordered_adjacency: true,
        compress_hub_rows: true,
        hub_compress_min_degree: 64,
        ..BfsConfig::threaded_small(2)
    };
    println!(
        "engine axis: scale {} ({} vertices, {} edges), {} ranks",
        o.scale,
        el.num_vertices,
        el.edges.len(),
        o.ranks
    );

    let t0 = Instant::now();
    let mut cold = ClusterBuilder::new(&el, o.ranks, cfg)
        .build()
        .map_err(|e| format!("cold build: {e}"))?;
    let cold_s = t0.elapsed().as_secs_f64();

    std::fs::remove_dir_all(dir).ok();
    let t0 = Instant::now();
    cold.persist_store(dir).map_err(|e| format!("persist: {e}"))?;
    let persist_s = t0.elapsed().as_secs_f64();
    let bytes = dir_bytes(dir);

    let oracle: Vec<_> = roots
        .iter()
        .map(|&r| cold.run(r).map_err(|e| format!("cold run {r}: {e}")))
        .collect::<Result<_, _>>()?;

    println!("  path           time_ms   speedup   adjacency");
    println!("  {:<12} {:>8.1}     1.00x   built from {} edges", "cold build", cold_s * 1e3, el.edges.len());
    println!("  {:<12} {:>8.1}         -   {} bytes on disk", "persist", persist_s * 1e3, bytes);

    for backend in [StorageBackend::Mapped, StorageBackend::Heap] {
        let t0 = Instant::now();
        let mut warm = ClusterBuilder::from_store_dir(dir, cfg)
            .storage(backend)
            .build()
            .map_err(|e| format!("{backend:?} restart: {e}"))?;
        let warm_s = t0.elapsed().as_secs_f64();
        for (r, want) in roots.iter().zip(&oracle) {
            let got = warm.run(*r).map_err(|e| format!("{backend:?} run {r}: {e}"))?;
            if got != *want {
                return Err(format!("{backend:?}: root {r} diverges from the cold build"));
            }
        }
        for section in ["exchange.", "kernel.", "pool.", "faults."] {
            if warm.metrics().section(section) != cold.metrics().section(section) {
                return Err(format!("{backend:?}: {section}* counters diverge after restart"));
            }
        }
        let (mapped, copied, verified, parts) = warm.store_counters();
        if parts != u64::from(o.ranks) {
            return Err(format!("{backend:?}: {parts} partitions opened, expected {}", o.ranks));
        }
        if verified < 2 * parts {
            return Err(format!("{backend:?}: only {verified} sections checksum-verified"));
        }
        let (label, moved) = match backend {
            StorageBackend::Mapped if copied != 0 => {
                return Err(format!("mmap restart copied {copied} bytes — must be zero-copy"));
            }
            StorageBackend::Mapped if mapped == 0 => {
                return Err("mmap restart mapped zero bytes".into());
            }
            StorageBackend::Mapped => ("mmap restart", format!("{mapped} bytes mapped, 0 copied")),
            StorageBackend::Heap if mapped != 0 => {
                return Err(format!("heap restart mapped {mapped} bytes"));
            }
            StorageBackend::Heap => ("heap restart", format!("{copied} bytes copied once")),
        };
        println!("  {label:<12} {:>8.1}   {:>6.2}x   {moved}", warm_s * 1e3, cold_s / warm_s);
    }
    println!("  {} roots bit-identical across cold build and both restarts", roots.len());
    Ok(())
}

/// Build-once/serve-forever: a store-restarted server answers the same
/// mixed battery bit-identically to the cold-built one.
fn serve_axis(o: &Opts, dir: &Path) -> Result<(), String> {
    let el = generate_kronecker(&KroneckerConfig::graph500(o.scale.min(14), o.seed));
    let n = el.num_vertices;
    std::fs::remove_dir_all(dir).ok();
    let t0 = Instant::now();
    Server::build_store(&el, 4, dir).map_err(|e| format!("build_store: {e}"))?;
    let build_s = t0.elapsed().as_secs_f64();

    let mut cold =
        Server::start(&el, ServeConfig::default()).map_err(|e| format!("cold server: {e}"))?;
    let t0 = Instant::now();
    let mut warm = Server::start_from_store(dir, StorageBackend::Mapped, ServeConfig::default())
        .map_err(|e| format!("warm server: {e}"))?;
    let restart_s = t0.elapsed().as_secs_f64();

    let mut cc = Client::connect(&cold.addr()).map_err(|e| format!("connect: {e}"))?;
    let mut wc = Client::connect(&warm.addr()).map_err(|e| format!("connect: {e}"))?;
    let mut checked = 0u64;
    for (i, root) in pick_roots(n, 8).into_iter().enumerate() {
        let target = (root * 13 + i as u64) % n;
        for (op, t, hops) in [
            (QueryOp::Distance, target, 0),
            (QueryOp::Reachable, target, 0),
            (QueryOp::KHop, 0, 2),
        ] {
            let a = query(&mut cc, op, root, t, hops)?;
            let b = query(&mut wc, op, root, t, hops)?;
            if a != b {
                return Err(format!(
                    "{op:?} {root}->{t}: cold answered {a:?}, restarted server {b:?}"
                ));
            }
            checked += 1;
        }
    }
    let m = warm.metrics();
    if m.get("store.partitions_mapped") != 4 || m.get("store.bytes_copied") != 0 {
        return Err("restarted server's store.* counters deny the zero-copy mmap path".into());
    }
    println!(
        "serve axis: {checked} answers bit-identical; store built in {:.1} ms, \
         service restarted from it in {:.1} ms ({} bytes mapped)",
        build_s * 1e3,
        restart_s * 1e3,
        m.get("store.bytes_mapped")
    );
    warm.shutdown();
    cold.shutdown();
    Ok(())
}

fn query(
    c: &mut Client,
    op: QueryOp,
    root: u64,
    target: u64,
    hops: u32,
) -> Result<(QueryStatus, u64), String> {
    match c.query(op, root, target, hops, 0).map_err(|e| format!("{op:?}: {e}"))? {
        Response::Answer(a) => Ok((a.status, a.value)),
        Response::Busy(b) => Err(format!("{op:?}: shed (depth {})", b.queue_depth)),
    }
}

/// The committed counter baselines must carry the `store.*` keys — and
/// carry them at zero, since their workloads never restart from a store.
fn baseline_axis() -> Result<(), String> {
    let mut checked = 0usize;
    for file in ["BENCH_trace.json", "BENCH_insight.json", "BENCH_service.json"] {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("{file}: {e} (run from the repo root)"))?;
        let kv = parse_flat_u64(&text).map_err(|e| format!("{file}: {e}"))?;
        let store: Vec<_> = kv
            .iter()
            .filter(|(k, _)| k.starts_with("store.") || k.contains(".store."))
            .collect();
        if store.is_empty() {
            return Err(format!("{file}: no store.* keys — baseline predates the store"));
        }
        if let Some((k, v)) = store.iter().find(|e| e.1 != 0) {
            return Err(format!(
                "{file}: {k} = {v}, but this workload is cold-path — store.* must be zero"
            ));
        }
        checked += store.len();
    }
    println!("baseline axis: {checked} store.* keys present across 3 snapshots, all zero");
    Ok(())
}

fn main() -> ExitCode {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("swstore: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base = std::env::temp_dir().join(format!("swstore_{}", std::process::id()));
    let engine_dir: PathBuf = base.join("engine");
    let serve_dir: PathBuf = base.join("serve");
    let run = engine_axis(&o, &engine_dir)
        .and_then(|()| serve_axis(&o, &serve_dir))
        .and_then(|()| baseline_axis());
    if o.keep {
        println!("stores kept under {}", base.display());
    } else {
        std::fs::remove_dir_all(&base).ok();
    }
    match run {
        Ok(()) => {
            println!("swstore: all gates passed");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("swstore: {e}");
            ExitCode::FAILURE
        }
    }
}
