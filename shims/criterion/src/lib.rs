//! Offline shim for the `criterion` API subset this workspace uses.
//!
//! Real wall-clock timing, minimal statistics: each benchmark warms up
//! briefly, picks an iteration count targeting ~0.2 s per sample, takes
//! `sample_size` samples, and reports the median ns/iter on stdout as a
//! single machine-greppable line:
//!
//! ```text
//! BENCH {"name":"group/bench","ns_per_iter":1234.5,"samples":10,"iters_per_sample":100}
//! ```
//!
//! No plotting, no HTML reports, no statistical regression analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (recorded, echoed in the JSON line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to benchmark closures; `iter` performs the timed loop.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Median ns per iteration of the routine, filled in by `iter`.
    result_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping the median over the sample set.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let dt = start.elapsed();
            per_iter.push(dt.as_nanos() as f64 / self.iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter[per_iter.len() / 2];
    }
}

fn run_one(name: &str, samples: usize, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: find an iteration count where one sample takes >= ~50 ms,
    // capped so total time stays reasonable.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters_per_sample: iters,
            samples: 1,
            result_ns: 0.0,
        };
        let start = Instant::now();
        f(&mut b);
        let dt = start.elapsed();
        if dt >= Duration::from_millis(50) || iters >= 1 << 20 {
            break;
        }
        iters = (iters * 4).min(1 << 20);
    }

    let mut b = Bencher {
        iters_per_sample: iters,
        samples,
        result_ns: 0.0,
    };
    f(&mut b);

    let tp = match throughput {
        Some(Throughput::Elements(n)) => format!(",\"throughput_elements\":{n}"),
        Some(Throughput::Bytes(n)) => format!(",\"throughput_bytes\":{n}"),
        None => String::new(),
    };
    println!(
        "BENCH {{\"name\":\"{name}\",\"ns_per_iter\":{:.1},\"samples\":{samples},\"iters_per_sample\":{iters}{tp}}}",
        b.result_ns
    );
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Records throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the target measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.samples, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.samples, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 10, None, &mut f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2)
            .throughput(Throughput::Elements(10))
            .bench_function("sum", |b| {
                b.iter(|| (0u64..10).sum::<u64>());
            });
        g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>());
        });
        g.finish();
    }
}
