//! Formatted benchmark output, mirroring the reference implementation's
//! result block.

use crate::kernel::BenchmarkResult;
use std::fmt::Write;

/// Renders a result in the official output style.
pub fn format_report(res: &BenchmarkResult) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "SCALE:                 {}", res.spec.scale);
    let _ = writeln!(s, "edgefactor:            {}", res.spec.edge_factor);
    let _ = writeln!(s, "NBFS:                  {}", res.runs.len());
    let _ = writeln!(s, "num_mpi_processes:     {}", res.ranks);
    let _ = writeln!(s, "construction_time:     {:.6}", res.construction_s);
    let times: Vec<f64> = res.runs.iter().map(|r| r.time_s).collect();
    let _ = writeln!(s, "min_time:              {:.6}", min(&times));
    let _ = writeln!(s, "max_time:              {:.6}", max(&times));
    let st = &res.stats;
    let _ = writeln!(s, "min_TEPS:              {:.4e}", st.min);
    let _ = writeln!(s, "firstquartile_TEPS:    {:.4e}", st.q1);
    let _ = writeln!(s, "median_TEPS:           {:.4e}", st.median);
    let _ = writeln!(s, "thirdquartile_TEPS:    {:.4e}", st.q3);
    let _ = writeln!(s, "max_TEPS:              {:.4e}", st.max);
    let _ = writeln!(s, "harmonic_mean_TEPS:    {:.4e}", st.harmonic_mean);
    let _ = writeln!(s, "harmonic_stddev_TEPS:  {:.4e}", st.harmonic_stddev);
    s
}

fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::run_benchmark;
    use crate::spec::Graph500Spec;
    use swbfs_core::BfsConfig;

    #[test]
    fn report_contains_all_fields() {
        let res = run_benchmark(
            &Graph500Spec::quick(9, 1, 2),
            2,
            BfsConfig::threaded_small(2),
        )
        .unwrap();
        let rep = format_report(&res);
        for field in [
            "SCALE",
            "edgefactor",
            "NBFS",
            "construction_time",
            "harmonic_mean_TEPS",
            "harmonic_stddev_TEPS",
            "median_TEPS",
        ] {
            assert!(rep.contains(field), "missing {field} in:\n{rep}");
        }
        assert!(rep.contains("SCALE:                 9"));
    }
}
