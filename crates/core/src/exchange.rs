//! Record exchange between ranks: Direct vs Relay transport.
//!
//! Both transports deliver exactly the same multiset of records to each
//! destination; what differs is the message structure the network sees:
//!
//! * **Direct** — every rank sends to every destination rank it has records
//!   for, *plus a termination-indicator message to every other rank* ("at
//!   least one message transfer … for each pair of nodes", §1) — `P-1`
//!   messages per rank per phase no matter how empty the level is.
//! * **Relay** (§4.4) — records for a remote group are batched into one
//!   message to the relay node (same column as the source, same row/group
//!   as the destination); the relay module re-buckets them per final
//!   destination (this is the Forward/Backward Relay of Figure 1) and
//!   forwards inside the group. Termination indicators are per column-peer
//!   and per group-mate: `(N-1) + (M-1)` per rank.
//!
//! The exchange also accounts the traffic quantities the cost model needs:
//! message counts, payload bytes, group-boundary (≙ super-node) crossing
//! bytes, and per-rank maxima.
//!
//! The hot path lives in [`crate::arena::ExchangeArena`] — a pooled,
//! two-pass counting-sort pipeline with no per-record pushes. The
//! functions here are thin entry points that run a throwaway arena over
//! nested per-destination vectors; long-lived clusters hold their own
//! arena and call it directly so every buffer is recycled across levels
//! and roots. The seed's literal allocate-classify-push implementation
//! survives in [`legacy`] as a differential oracle and bench baseline.

use crate::arena::ExchangeArena;
use crate::compress::compressed_size;
use crate::config::Messaging;
use crate::messages::EdgeRec;
use sw_net::GroupLayout;

/// How record payloads are sized on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Codec {
    /// Fixed framing: this many bytes per record.
    Fixed(usize),
    /// Delta + varint compression ([`crate::compress`], the §7 future-work
    /// integration).
    Compressed,
}

impl Codec {
    /// Wire bytes a record batch occupies under this codec.
    pub fn payload_bytes(&self, recs: &[EdgeRec]) -> u64 {
        match self {
            Codec::Fixed(w) => (recs.len() * w) as u64,
            Codec::Compressed => {
                if recs.is_empty() {
                    0
                } else {
                    compressed_size(recs)
                }
            }
        }
    }
}

/// Per-message framing overhead, bytes (header + termination marker).
pub const MSG_HEADER_BYTES: u64 = 8;

/// Maximum payload per discrete message; larger batches split.
pub const MAX_BATCH_BYTES: u64 = 1 << 20;

/// Aggregate traffic of one exchange.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Record deliveries counted per network traversal (a relayed record
    /// counts twice: source→relay and relay→destination).
    pub record_hops: u64,
    /// Discrete messages, termination indicators included.
    pub messages: u64,
    /// Wire bytes (payload + per-message headers).
    pub bytes: u64,
    /// Bytes whose source and destination lie in different groups.
    pub inter_group_bytes: u64,
    /// Largest per-rank outgoing message count.
    pub max_send_msgs_per_rank: u64,
    /// Largest per-rank outgoing byte count.
    pub max_send_bytes_per_rank: u64,
    /// Pooled-buffer acquisitions that had to allocate or grow on the
    /// heap (0 in steady state once the arena is warm).
    pub pool_allocs: u64,
    /// Bytes placed into pooled buffers whose retained capacity made the
    /// write allocation-free.
    pub pool_reused_bytes: u64,
    /// Transfer re-sends scheduled by the fault layer (0 without an
    /// armed [`crate::faults::FaultSession`]).
    pub retries: u64,
    /// Faults the scheduler injected into this exchange's deliveries.
    pub faults_injected: u64,
    /// Levels delivered under an engaged degradation (relay→direct
    /// fallback or compression disable).
    pub degraded_levels: u64,
}

impl ExchangeStats {
    /// Accumulates another exchange.
    pub fn absorb(&mut self, o: &ExchangeStats) {
        self.record_hops += o.record_hops;
        self.messages += o.messages;
        self.bytes += o.bytes;
        self.inter_group_bytes += o.inter_group_bytes;
        self.max_send_msgs_per_rank += o.max_send_msgs_per_rank;
        self.max_send_bytes_per_rank += o.max_send_bytes_per_rank;
        self.pool_allocs += o.pool_allocs;
        self.pool_reused_bytes += o.pool_reused_bytes;
        self.retries += o.retries;
        self.faults_injected += o.faults_injected;
        self.degraded_levels += o.degraded_levels;
    }

    /// The wire-traffic fields, without the allocator or fault-layer
    /// bookkeeping — what must be bit-identical across implementations
    /// of the same transport. Wire traffic counts successful deliveries
    /// only; retry overhead lives in the separate fault counters, which
    /// is what keeps survivable faulty runs' per-level stats identical
    /// to fault-free ones.
    pub fn wire(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.record_hops,
            self.messages,
            self.bytes,
            self.inter_group_bytes,
            self.max_send_msgs_per_rank,
            self.max_send_bytes_per_rank,
        )
    }
}

pub(crate) fn msgs_for(payload: u64) -> u64 {
    // At least the termination indicator; big payloads split into batches.
    1 + payload / MAX_BATCH_BYTES
}

/// Per-source wire accounting of one point-to-point phase: the
/// Direct-mode arithmetic (payload + per-batch headers, termination
/// indicators included), summed over sources with the per-rank maxima
/// the `max_*` counters track. Shared by every fabric whose physical
/// mesh is point-to-point regardless of the configured [`Messaging`]
/// mode — the channel transport and the socket transport — which is
/// what pins their `exchange.*` counter *values* equal on identical
/// traffic.
pub(crate) fn direct_wire_stats(
    boxes: &[Vec<Vec<EdgeRec>>],
    layout: &GroupLayout,
    codec: Codec,
) -> ExchangeStats {
    let mut stats = ExchangeStats::default();
    for (s, bs) in boxes.iter().enumerate() {
        let mut send_msgs = 0u64;
        let mut send_bytes = 0u64;
        for (d, recs) in bs.iter().enumerate() {
            if d == s {
                debug_assert!(recs.is_empty(), "self-addressed records");
                continue;
            }
            let payload = codec.payload_bytes(recs);
            let msgs = msgs_for(payload);
            let bytes = payload + msgs * MSG_HEADER_BYTES;
            send_msgs += msgs;
            send_bytes += bytes;
            stats.record_hops += recs.len() as u64;
            if layout.group_of(s as u32) != layout.group_of(d as u32) {
                stats.inter_group_bytes += bytes;
            }
        }
        stats.messages += send_msgs;
        stats.bytes += send_bytes;
        stats.max_send_msgs_per_rank = stats.max_send_msgs_per_rank.max(send_msgs);
        stats.max_send_bytes_per_rank = stats.max_send_bytes_per_rank.max(send_bytes);
    }
    stats
}

/// Converts a nested per-destination outbox matrix into flat outboxes
/// (destinations ascending, push order preserved within a destination —
/// the order every inbox guarantee is stated in).
fn flatten(out: Vec<Vec<Vec<EdgeRec>>>) -> Vec<crate::modules::Outboxes> {
    let ranks = out.len();
    out.into_iter()
        .map(|boxes| {
            debug_assert_eq!(boxes.len(), ranks);
            let mut o = crate::modules::Outboxes::new(ranks);
            for (d, recs) in boxes.into_iter().enumerate() {
                for r in recs {
                    o.push(d as u32, r);
                }
            }
            o
        })
        .collect()
}

/// Delivers `out[s][d]` (records from rank `s` to rank `d`) and returns
/// per-destination inboxes plus traffic stats.
///
/// `codec` sizes the per-record wire format; `layout` is used by relay
/// transport and, for both transports, to classify group-crossing bytes.
///
/// One-shot convenience over a throwaway [`ExchangeArena`]; hot paths
/// keep an arena alive instead.
pub fn exchange(
    mode: Messaging,
    out: Vec<Vec<Vec<EdgeRec>>>,
    layout: &GroupLayout,
    codec: Codec,
) -> (Vec<Vec<EdgeRec>>, ExchangeStats) {
    let mut arena = ExchangeArena::new(out.len());
    arena.exchange(mode, flatten(out), layout, codec)
}

/// Direct point-to-point delivery (see [`exchange`]).
pub fn exchange_direct(
    out: Vec<Vec<Vec<EdgeRec>>>,
    layout: &GroupLayout,
    codec: Codec,
) -> (Vec<Vec<EdgeRec>>, ExchangeStats) {
    exchange(Messaging::Direct, out, layout, codec)
}

/// Two-stage relayed delivery with group batching (see [`exchange`]).
pub fn exchange_relay(
    out: Vec<Vec<Vec<EdgeRec>>>,
    layout: &GroupLayout,
    codec: Codec,
) -> (Vec<Vec<EdgeRec>>, ExchangeStats) {
    exchange(Messaging::Relay, out, layout, codec)
}

pub(crate) fn group_bounds(layout: &GroupLayout, group: u32) -> (u32, u32) {
    let start = group * layout.group_size();
    (start, start + layout.group_size_of(group))
}

/// The seed's allocate-classify-push exchange, kept verbatim as the
/// differential oracle for the pooled pipeline (and as the "before" side
/// of the exchange benchmark). Not part of the public API surface.
#[doc(hidden)]
pub mod legacy {
    use super::*;

    /// Legacy dispatch over [`exchange_direct`]/[`exchange_relay`].
    pub fn exchange(
        mode: Messaging,
        out: Vec<Vec<Vec<EdgeRec>>>,
        layout: &GroupLayout,
        codec: Codec,
    ) -> (Vec<Vec<EdgeRec>>, ExchangeStats) {
        match mode {
            Messaging::Direct => exchange_direct(out, layout, codec),
            Messaging::Relay => exchange_relay(out, layout, codec),
        }
    }

    /// Direct point-to-point delivery, seed implementation.
    pub fn exchange_direct(
        out: Vec<Vec<Vec<EdgeRec>>>,
        layout: &GroupLayout,
        codec: Codec,
    ) -> (Vec<Vec<EdgeRec>>, ExchangeStats) {
        let ranks = out.len();
        let mut stats = ExchangeStats::default();
        let mut inbox: Vec<Vec<EdgeRec>> = vec![Vec::new(); ranks];
        for (s, boxes) in out.iter().enumerate() {
            let mut send_msgs = 0u64;
            let mut send_bytes = 0u64;
            for (d, recs) in boxes.iter().enumerate() {
                if d == s {
                    // Self-records are a module bug; generators claim locally.
                    debug_assert!(recs.is_empty(), "self-addressed records");
                    continue;
                }
                let payload = codec.payload_bytes(recs);
                let msgs = msgs_for(payload);
                let bytes = payload + msgs * MSG_HEADER_BYTES;
                send_msgs += msgs;
                send_bytes += bytes;
                stats.record_hops += recs.len() as u64;
                if layout.group_of(s as u32) != layout.group_of(d as u32) {
                    stats.inter_group_bytes += bytes;
                }
                inbox[d].extend_from_slice(recs);
            }
            stats.messages += send_msgs;
            stats.bytes += send_bytes;
            stats.max_send_msgs_per_rank = stats.max_send_msgs_per_rank.max(send_msgs);
            stats.max_send_bytes_per_rank = stats.max_send_bytes_per_rank.max(send_bytes);
        }
        (inbox, stats)
    }

    /// Two-stage relayed delivery with group batching, seed implementation.
    pub fn exchange_relay(
        out: Vec<Vec<Vec<EdgeRec>>>,
        layout: &GroupLayout,
        codec: Codec,
    ) -> (Vec<Vec<EdgeRec>>, ExchangeStats) {
        let ranks = out.len();
        let groups = layout.num_groups() as usize;
        let mut stats = ExchangeStats::default();

        // Per-rank send accounting, accumulated over both stages.
        let mut send_msgs = vec![0u64; ranks];
        let mut send_bytes = vec![0u64; ranks];

        // Stage 1: source → relay (batched per destination group), or direct
        // delivery within the source's own group.
        // relay_inbox[r] holds (final_dest, rec) streams, in source order.
        let mut relay_inbox: Vec<Vec<(u32, EdgeRec)>> = vec![Vec::new(); ranks];
        let mut inbox: Vec<Vec<EdgeRec>> = vec![Vec::new(); ranks];

        for (s, boxes) in out.iter().enumerate() {
            let s = s as u32;
            let my_group = layout.group_of(s);
            // Batch records per destination group.
            let mut per_group: Vec<Vec<(u32, EdgeRec)>> = vec![Vec::new(); groups];
            for (d, recs) in boxes.iter().enumerate() {
                let d = d as u32;
                if d == s {
                    debug_assert!(recs.is_empty(), "self-addressed records");
                    continue;
                }
                for &r in recs {
                    per_group[layout.group_of(d) as usize].push((d, r));
                }
            }
            // Own group: deliver directly to each group-mate (one message per
            // mate, termination included).
            let (gs, ge) = group_bounds(layout, my_group);
            for d in gs..ge {
                if d == s {
                    continue;
                }
                let recs: Vec<EdgeRec> = per_group[my_group as usize]
                    .iter()
                    .filter(|(dest, _)| *dest == d)
                    .map(|&(_, r)| r)
                    .collect();
                let payload = codec.payload_bytes(&recs);
                let msgs = msgs_for(payload);
                let bytes = payload + msgs * MSG_HEADER_BYTES;
                send_msgs[s as usize] += msgs;
                send_bytes[s as usize] += bytes;
                stats.record_hops += recs.len() as u64;
                inbox[d as usize].extend(recs);
            }
            // Remote groups: one batched message to the group's relay node.
            for g in 0..groups as u32 {
                if g == my_group {
                    continue;
                }
                let batch = &per_group[g as usize];
                let relay = layout.node_at(g, layout.index_of(s));
                let batch_recs: Vec<EdgeRec> = batch.iter().map(|&(_, r)| r).collect();
                let payload = codec.payload_bytes(&batch_recs);
                let msgs = msgs_for(payload);
                let bytes = payload + msgs * MSG_HEADER_BYTES;
                send_msgs[s as usize] += msgs;
                send_bytes[s as usize] += bytes;
                stats.record_hops += batch.len() as u64;
                stats.inter_group_bytes += bytes;
                relay_inbox[relay as usize].extend(batch.iter().copied());
            }
        }

        // Stage 2: the Relay module — re-bucket by final destination and
        // forward inside the group.
        for (r, stream) in relay_inbox.iter().enumerate() {
            let r = r as u32;
            let my_group = layout.group_of(r);
            let (gs, ge) = group_bounds(layout, my_group);
            for d in gs..ge {
                let recs: Vec<EdgeRec> = stream
                    .iter()
                    .filter(|(dest, _)| *dest == d)
                    .map(|(_, rec)| *rec)
                    .collect();
                if d == r {
                    // Records whose final destination is the relay itself.
                    inbox[d as usize].extend(recs);
                    continue;
                }
                let payload = codec.payload_bytes(&recs);
                let msgs = msgs_for(payload);
                let bytes = payload + msgs * MSG_HEADER_BYTES;
                send_msgs[r as usize] += msgs;
                send_bytes[r as usize] += bytes;
                stats.record_hops += recs.len() as u64;
                inbox[d as usize].extend(recs);
            }
        }

        for s in 0..ranks {
            stats.messages += send_msgs[s];
            stats.bytes += send_bytes[s];
            stats.max_send_msgs_per_rank = stats.max_send_msgs_per_rank.max(send_msgs[s]);
            stats.max_send_bytes_per_rank = stats.max_send_bytes_per_rank.max(send_bytes[s]);
        }
        (inbox, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn rec(u: u64, v: u64) -> EdgeRec {
        EdgeRec { u, v }
    }

    /// All-to-all test pattern: rank s sends (s, d) to every d != s.
    fn all_to_all(ranks: usize) -> Vec<Vec<Vec<EdgeRec>>> {
        (0..ranks)
            .map(|s| {
                (0..ranks)
                    .map(|d| {
                        if s == d {
                            vec![]
                        } else {
                            vec![rec(s as u64, d as u64)]
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Per-destination record multisets, built by borrowing the inboxes.
    fn multisets(inbox: &[Vec<EdgeRec>]) -> Vec<BTreeMap<EdgeRec, usize>> {
        inbox
            .iter()
            .map(|b| {
                let mut m = BTreeMap::new();
                for &r in b {
                    *m.entry(r).or_insert(0) += 1;
                }
                m
            })
            .collect()
    }

    /// Deterministic pseudo-random traffic pattern (regenerable, so the
    /// two transports each get their own copy without cloning).
    fn random_out(ranks: usize, seed: u64) -> Vec<Vec<Vec<EdgeRec>>> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut out: Vec<Vec<Vec<EdgeRec>>> = vec![vec![vec![]; ranks]; ranks];
        for (s, row) in out.iter_mut().enumerate() {
            for _ in 0..50 {
                let d = rng.gen_range(0..ranks);
                if d == s {
                    continue;
                }
                row[d].push(rec(rng.gen_range(0..1000), d as u64));
            }
        }
        out
    }

    #[test]
    fn direct_and_relay_deliver_identical_multisets() {
        let layout = GroupLayout::new(8, 4);
        let (di, _) = exchange_direct(all_to_all(8), &layout, Codec::Fixed(8));
        let (ri, _) = exchange_relay(all_to_all(8), &layout, Codec::Fixed(8));
        assert_eq!(multisets(&di), multisets(&ri));
        // Every rank received one record from each peer.
        for (d, b) in di.iter().enumerate() {
            assert_eq!(b.len(), 7);
            assert!(b.iter().all(|r| r.v == d as u64));
        }
    }

    #[test]
    fn direct_message_count_is_all_pairs() {
        let layout = GroupLayout::new(8, 4);
        let (_, st) = exchange_direct(all_to_all(8), &layout, Codec::Fixed(8));
        // 8 × 7 ordered pairs, one message each (termination counted).
        assert_eq!(st.messages, 56);
        assert_eq!(st.max_send_msgs_per_rank, 7);
        assert_eq!(st.record_hops, 56);
    }

    #[test]
    fn direct_termination_messages_survive_empty_exchange() {
        let layout = GroupLayout::new(8, 4);
        let empty: Vec<Vec<Vec<EdgeRec>>> = vec![vec![vec![]; 8]; 8];
        let (_, st) = exchange_direct(empty, &layout, Codec::Fixed(8));
        assert_eq!(st.messages, 56);
        assert_eq!(st.bytes, 56 * MSG_HEADER_BYTES);
        assert_eq!(st.record_hops, 0);
    }

    #[test]
    fn relay_message_count_collapses() {
        let layout = GroupLayout::new(16, 4); // 4 groups of 4
        let (_, st) = exchange_relay(all_to_all(16), &layout, Codec::Fixed(8));
        // Per rank stage 1: 3 group-mates + 3 remote groups = 6;
        // stage 2 forwards ≤ 3. Total ≤ 16 × 9 = 144, far below direct 240.
        let (_, direct) = exchange_direct(all_to_all(16), &layout, Codec::Fixed(8));
        assert!(st.messages < direct.messages, "{} !< {}", st.messages, direct.messages);
        assert_eq!(st.max_send_msgs_per_rank, 9);
    }

    #[test]
    fn relayed_records_pay_two_hops() {
        let layout = GroupLayout::new(8, 4);
        // One record crossing groups: 0 -> 5.
        let mut out: Vec<Vec<Vec<EdgeRec>>> = vec![vec![vec![]; 8]; 8];
        out[0][5] = vec![rec(0, 5)];
        let (inbox, st) = exchange_relay(out, &layout, Codec::Fixed(8));
        assert_eq!(inbox[5], vec![rec(0, 5)]);
        assert_eq!(st.record_hops, 2);
        // Relay node: group of 5 is 1, column of 0 is 0 -> node 4.
        // Stage 1 bytes cross groups; stage 2 bytes do not.
        assert!(st.inter_group_bytes > 0);
        assert!(st.inter_group_bytes < st.bytes);
    }

    #[test]
    fn intra_group_records_skip_the_relay() {
        let layout = GroupLayout::new(8, 4);
        let mut out: Vec<Vec<Vec<EdgeRec>>> = vec![vec![vec![]; 8]; 8];
        out[0][2] = vec![rec(0, 2)];
        let (inbox, st) = exchange_relay(out, &layout, Codec::Fixed(8));
        assert_eq!(inbox[2], vec![rec(0, 2)]);
        assert_eq!(st.record_hops, 1);
        // Only stage-1 termination headers cross groups (8 ranks x 1
        // remote group x 1 header); the record itself stays inside.
        assert_eq!(st.inter_group_bytes, 8 * MSG_HEADER_BYTES);
    }

    #[test]
    fn relay_to_self_destination_works() {
        // Record whose final destination IS the relay node.
        let layout = GroupLayout::new(8, 4);
        let mut out: Vec<Vec<Vec<EdgeRec>>> = vec![vec![vec![]; 8]; 8];
        // src 0 (group 0, col 0) -> dst 4 (group 1, col 0): relay is node 4
        // itself.
        out[0][4] = vec![rec(0, 4)];
        let (inbox, st) = exchange_relay(out, &layout, Codec::Fixed(8));
        assert_eq!(inbox[4], vec![rec(0, 4)]);
        assert_eq!(st.record_hops, 1);
    }

    #[test]
    fn big_payload_splits_into_batches() {
        let layout = GroupLayout::new(2, 2);
        let n = (MAX_BATCH_BYTES / 8 + 10) as usize;
        let mut out: Vec<Vec<Vec<EdgeRec>>> = vec![vec![vec![]; 2]; 2];
        out[0][1] = (0..n).map(|i| rec(i as u64, 1)).collect();
        let (_, st) = exchange_direct(out, &layout, Codec::Fixed(8));
        assert_eq!(st.messages, 2 + 1); // 2 batches s0->s1, 1 termination s1->s0
    }

    #[test]
    fn inter_group_classification_direct() {
        let layout = GroupLayout::new(8, 4);
        let mut out: Vec<Vec<Vec<EdgeRec>>> = vec![vec![vec![]; 8]; 8];
        out[0][1] = vec![rec(0, 1)]; // same group
        out[0][7] = vec![rec(0, 7)]; // cross group
        let (_, st) = exchange_direct(out, &layout, Codec::Fixed(8));
        // Only the 0->7 bytes cross; termination messages to the other 6
        // peers: 5 of them... all (s,d) pairs get termination, crossing
        // ones counted too.
        assert!(st.inter_group_bytes > 0);
        assert!(st.inter_group_bytes < st.bytes);
    }

    #[test]
    fn random_pattern_delivery_matches_direct() {
        let ranks = 12;
        let layout = GroupLayout::new(12, 5); // uneven trailing group
        let (di, _) = exchange_direct(random_out(ranks, 42), &layout, Codec::Fixed(8));
        let (ri, _) = exchange_relay(random_out(ranks, 42), &layout, Codec::Fixed(8));
        assert_eq!(multisets(&di), multisets(&ri));
        // Every destination got exactly the records addressed to it.
        for (d, b) in di.iter().enumerate() {
            assert!(b.iter().all(|r| r.v == d as u64));
        }
    }

    /// The pooled pipeline must reproduce the seed implementation
    /// bit-for-bit: same inbox contents *in the same order*, same wire
    /// stats — across both transports, uneven trailing groups included.
    #[test]
    fn arena_matches_legacy_exactly() {
        for &(ranks, group) in &[(8usize, 4u32), (12, 5), (16, 4), (9, 3), (7, 7), (5, 2)] {
            let layout = GroupLayout::new(ranks as u32, group);
            for seed in 0..4 {
                for &codec in &[Codec::Fixed(16), Codec::Compressed] {
                    let (di, ds) = exchange_direct(random_out(ranks, seed), &layout, codec);
                    let (ldi, lds) =
                        legacy::exchange_direct(random_out(ranks, seed), &layout, codec);
                    assert_eq!(di, ldi, "direct inbox order r={ranks} g={group} s={seed}");
                    assert_eq!(ds.wire(), lds.wire(), "direct stats r={ranks} g={group}");

                    let (ri, rs) = exchange_relay(random_out(ranks, seed), &layout, codec);
                    let (lri, lrs) =
                        legacy::exchange_relay(random_out(ranks, seed), &layout, codec);
                    assert_eq!(ri, lri, "relay inbox order r={ranks} g={group} s={seed}");
                    assert_eq!(rs.wire(), lrs.wire(), "relay stats r={ranks} g={group}");
                }
            }
        }
    }
}
