//! Collaborative SPM: a cluster-wide sharded bitmap cache.
//!
//! §3.1: "BFS accesses a large range of data, normally several MB,
//! randomly. However, the SPM size of each CPE is only 64 KB. In the
//! memory hierarchy, the next level of SPM is global memory, which has a
//! latency that is 100 times larger. **Collaboratively using the whole
//! SPM in a CPE cluster is a possible solution.**"
//!
//! This module implements that suggestion for the structure BFS actually
//! needs — a big bitmap (frontier / visited state): the bit space is
//! sharded round-robin across all 64 SPMs (4 MB aggregate), and any CPE
//! reaches any bit in at most two register hops (row, then column), each
//! a ~1-cycle bus transfer — versus the ~100-cycle main-memory round
//! trip. Capacity, routing legality and the latency advantage are all
//! enforced/accounted.

use crate::config::ChipConfig;
use crate::error::ArchError;
use crate::mesh::{CpeId, Mesh};
use crate::SimNanos;
use sw_graph::Bitmap;

/// A bitmap sharded across every SPM of one CPE cluster.
#[derive(Debug)]
pub struct ClusterBitmap {
    cfg: ChipConfig,
    mesh: Mesh,
    bits: u64,
    /// Per-CPE shard, row-major CPE order; bit `i` lives in shard
    /// `i % 64` at local index `i / 64` (round-robin keeps hot ranges
    /// spread across the mesh).
    shards: Vec<Bitmap>,
    /// SPM bytes reserved per CPE for everything else.
    reserved_per_cpe: u32,
    /// Register hops accumulated by lookups (for time accounting).
    hops: u64,
    /// Lookups served.
    lookups: u64,
}

impl ClusterBitmap {
    /// Allocates a `bits`-bit cluster bitmap, reserving
    /// `reserved_per_cpe` bytes of every SPM for other uses.
    ///
    /// Fails with [`ArchError::SpmOverflow`] when a shard would not fit.
    pub fn new(cfg: ChipConfig, bits: u64, reserved_per_cpe: u32) -> Result<Self, ArchError> {
        let cpes = cfg.cpes_per_cluster as u64;
        let shard_bits = bits.div_ceil(cpes);
        let shard_bytes = shard_bits.div_ceil(8);
        let budget = cfg.spm_bytes.saturating_sub(reserved_per_cpe) as u64;
        if shard_bytes > budget {
            return Err(ArchError::SpmOverflow {
                cpe: CpeId::new(0, 0),
                requested: shard_bytes as usize,
                in_use: reserved_per_cpe as usize,
                capacity: cfg.spm_bytes as usize,
            });
        }
        Ok(Self {
            mesh: Mesh::new(cfg.mesh_side as u8),
            shards: (0..cpes).map(|_| Bitmap::new(shard_bits as usize)).collect(),
            cfg,
            bits,
            reserved_per_cpe,
            hops: 0,
            lookups: 0,
        })
    }

    /// Largest bitmap this chip can host with the given reserve — the
    /// "several MB" §3.1 asks for.
    pub fn capacity_bits(cfg: &ChipConfig, reserved_per_cpe: u32) -> u64 {
        cfg.cpes_per_cluster as u64 * cfg.spm_bytes.saturating_sub(reserved_per_cpe) as u64 * 8
    }

    /// Number of addressable bits.
    pub fn len(&self) -> u64 {
        self.bits
    }

    /// True if zero-capacity.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// The CPE whose SPM holds bit `i`.
    pub fn home_of(&self, i: u64) -> CpeId {
        let lin = (i % self.cfg.cpes_per_cluster as u64) as u8;
        let side = self.mesh.side();
        CpeId::new(lin / side, lin % side)
    }

    fn shard_slot(&self, i: u64) -> (usize, usize) {
        assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        (
            (i % self.cfg.cpes_per_cluster as u64) as usize,
            (i / self.cfg.cpes_per_cluster as u64) as usize,
        )
    }

    fn account(&mut self, from: CpeId, i: u64) {
        let home = self.home_of(i);
        // Row-then-column route; 0–2 hops, each request + reply.
        let hops = if from == home {
            0
        } else if from.row == home.row || from.col == home.col {
            1
        } else {
            2
        };
        self.hops += 2 * hops; // round trip
        self.lookups += 1;
        debug_assert!(
            hops == 0 || self.mesh.plan_row_first(from, home).is_ok(),
            "unreachable home"
        );
    }

    /// Reads bit `i` from CPE `from`, accounting the register hops.
    pub fn get(&mut self, from: CpeId, i: u64) -> bool {
        self.account(from, i);
        let (s, b) = self.shard_slot(i);
        self.shards[s].get(b)
    }

    /// Sets bit `i` from CPE `from`; returns the previous value. The
    /// home CPE serializes its shard's updates, so no atomics are needed —
    /// the same ownership trick as the shuffle's consumers.
    pub fn set(&mut self, from: CpeId, i: u64) -> bool {
        self.account(from, i);
        let (s, b) = self.shard_slot(i);
        self.shards[s].set(b)
    }

    /// Simulated time spent on lookups so far: two bus cycles per hop
    /// round trip plus one for the shard probe itself.
    pub fn elapsed_ns(&self) -> SimNanos {
        (self.hops + self.lookups) as f64 * self.cfg.cycle_ns()
    }

    /// What the same lookups would have cost through main memory.
    pub fn memory_equivalent_ns(&self) -> SimNanos {
        self.lookups as f64 * self.cfg.flag_poll_ns
    }

    /// Bytes of SPM used per CPE (shard only).
    pub fn shard_bytes(&self) -> usize {
        self.shards[0].byte_size()
    }

    /// The per-CPE reserve this bitmap was created with.
    pub fn reserved_per_cpe(&self) -> u32 {
        self.reserved_per_cpe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> ChipConfig {
        ChipConfig::sw26010()
    }

    #[test]
    fn capacity_is_several_mb() {
        // Half-reserved SPMs still hold a 16-Mbit (2 MB) bitmap: the
        // "several MB" random-access range of §3.1.
        let cap = ClusterBitmap::capacity_bits(&chip(), 32 * 1024);
        assert_eq!(cap, 64 * 32 * 1024 * 8);
        assert!(cap >= 16 << 20);
        ClusterBitmap::new(chip(), 16 << 20, 32 * 1024).unwrap();
    }

    #[test]
    fn overflow_is_rejected() {
        let err = ClusterBitmap::new(chip(), 40 << 20, 32 * 1024).unwrap_err();
        assert!(matches!(err, ArchError::SpmOverflow { .. }));
    }

    #[test]
    fn set_get_round_trip_across_shards() {
        let mut cb = ClusterBitmap::new(chip(), 1 << 20, 0).unwrap();
        let me = CpeId::new(3, 3);
        for i in [0u64, 1, 63, 64, 65, 4095, (1 << 20) - 1] {
            assert!(!cb.get(me, i));
            assert!(!cb.set(me, i));
            assert!(cb.get(me, i), "bit {i}");
        }
        // Bits land on different home CPEs (round-robin sharding).
        assert_ne!(cb.home_of(0), cb.home_of(1));
        assert_eq!(cb.home_of(0), cb.home_of(64));
    }

    #[test]
    fn lookups_beat_main_memory_by_an_order_of_magnitude() {
        let mut cb = ClusterBitmap::new(chip(), 1 << 20, 0).unwrap();
        let me = CpeId::new(0, 0);
        for i in 0..10_000u64 {
            cb.set(me, i * 97 % (1 << 20));
        }
        let spm = cb.elapsed_ns();
        let mem = cb.memory_equivalent_ns();
        assert!(
            mem / spm > 10.0,
            "SPM {spm} ns vs memory {mem} ns — expected >10x win"
        );
    }

    #[test]
    fn home_routing_is_always_legal() {
        let cb = ClusterBitmap::new(chip(), 4096, 0).unwrap();
        let mesh = Mesh::new(8);
        for i in 0..4096u64 {
            let home = cb.home_of(i);
            assert!(mesh.contains(home));
            assert!(mesh.plan_row_first(CpeId::new(7, 0), home).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bit_panics() {
        let mut cb = ClusterBitmap::new(chip(), 100, 0).unwrap();
        cb.get(CpeId::new(0, 0), 100);
    }
}
