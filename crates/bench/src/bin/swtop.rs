//! swtop — a live terminal dashboard for a running sw-serve instance.
//!
//! Polls the STATS endpoint (kind 19/20, answered by the reader thread
//! without touching admission) and renders the `live.*` histogram /
//! window plane next to the deterministic `serve.*` counters: QPS,
//! latency quantiles, shed and cache rates, in-flight depth, slow-query
//! count, and per-lane trace-ring drops.
//!
//! ```text
//! swtop --unix /path/to.sock [--interval-ms N] [--iters N] [--once]
//! swtop --tcp 127.0.0.1:4242 --prom      # raw Prometheus exposition
//! swtop --selftest                       # CI: in-process servers, both
//!                                        # families, validate + render
//! ```
//!
//! Polling is pure observation: the endpoint bypasses admission, is
//! never shed, and moves no deterministic counter (the invariant is
//! test-enforced in `sw-serve`), so leaving swtop running against a
//! production server perturbs nothing but the NIC.

use std::process::ExitCode;
use std::time::Duration;

use sw_serve::{Client, ServeConfig, Server, ServerAddr};
use sw_trace::CounterSet;

struct Opts {
    target: Option<ServerAddr>,
    interval: Duration,
    iters: u64,
    once: bool,
    prom: bool,
    selftest: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        target: None,
        interval: Duration::from_millis(1000),
        iters: 0,
        once: false,
        prom: false,
        selftest: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--unix" => o.target = Some(ServerAddr::Unix(val("--unix")?.into())),
            "--tcp" => {
                let sa = val("--tcp")?
                    .parse()
                    .map_err(|e| format!("bad --tcp address: {e}"))?;
                o.target = Some(ServerAddr::Tcp(sa));
            }
            "--interval-ms" => {
                let ms: u64 =
                    val("--interval-ms")?.parse().map_err(|e| format!("bad --interval-ms: {e}"))?;
                o.interval = Duration::from_millis(ms);
            }
            "--iters" => {
                o.iters = val("--iters")?.parse().map_err(|e| format!("bad --iters: {e}"))?
            }
            "--once" => o.once = true,
            "--prom" => o.prom = true,
            "--selftest" => o.selftest = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if !o.selftest && o.target.is_none() {
        return Err("need --unix PATH, --tcp ADDR, or --selftest".into());
    }
    Ok(o)
}

/// One histogram row: count, quantiles, max, mean — all in µs.
fn hist_row(cs: &CounterSet, name: &str) -> String {
    let g = |suffix: &str| cs.get(&format!("live.{name}.{suffix}"));
    format!(
        "n {:<8} p50 {:<8} p90 {:<8} p99 {:<8} max {:<8} mean {}",
        g("count"),
        g("p50"),
        g("p90"),
        g("p99"),
        g("max"),
        g("mean"),
    )
}

/// Renders one dashboard frame from a stats snapshot.
fn render(cs: &CounterSet, target: &str, frame: u64) -> String {
    let mut out = String::new();
    let g = |k: &str| cs.get(k);
    out.push_str(&format!("swtop — {target} — frame {frame}\n\n"));

    out.push_str(&format!(
        "queries   total {:<10} ok {:<10} bad {:<6} timeout {}\n",
        g("serve.queries"),
        g("serve.results_ok"),
        g("serve.results_bad"),
        g("serve.results_timeout"),
    ));
    out.push_str(&format!(
        "rate      answers/s {:<6} (10s avg {:<6}) lookups/s {:<6} shed/s {}\n",
        g("live.serve.answers.1s"),
        g("live.serve.answers.10s") / 10,
        g("live.serve.lookups.1s"),
        g("live.serve.shed.1s"),
    ));
    out.push_str(&format!("latency µs  {}\n", hist_row(cs, "serve.latency_micros")));
    out.push_str(&format!("sweep µs    {}\n", hist_row(cs, "serve.sweep_micros")));

    let (hits, misses) = (g("serve.cache_hits"), g("serve.cache_misses"));
    let lookups = hits + misses;
    let pct = (hits * 100).checked_div(lookups).unwrap_or(0);
    out.push_str(&format!(
        "cache     hits {hits} / {lookups} lookups ({pct}%)   hits/s {}   evictions {}\n",
        g("live.serve.cache_hits.1s"),
        g("serve.cache_evictions"),
    ));
    out.push_str(&format!(
        "pressure  in-flight {:<4} shed total {:<6} slow queries {}\n",
        g("live.serve.inflight"),
        g("serve.shed"),
        g("live.serve.slow_queries"),
    ));

    // Per-lane trace rings and per-rank fabric rows, whichever the
    // server exposes (generic over the gauge namespace).
    let mut lanes: Vec<(&str, u64)> = cs
        .iter()
        .filter(|(k, _)| {
            (k.starts_with("live.trace.") || k.starts_with("live.socket.rank"))
                && (k.ends_with(".dropped") || k.ends_with(".frames") || k.ends_with(".bytes"))
        })
        .collect();
    lanes.sort();
    if !lanes.is_empty() {
        out.push_str("lanes/ranks\n");
        for (k, v) in lanes {
            out.push_str(&format!("  {:<40} {v}\n", k.trim_start_matches("live.")));
        }
    }
    out
}

/// Checks one snapshot for the keys every healthy server must expose.
fn validate_json(json: &str) -> Result<CounterSet, String> {
    let cs = CounterSet::from_json(json).map_err(|e| format!("stats JSON: {e}"))?;
    for key in [
        "live.serve.latency_micros.count",
        "live.serve.latency_micros.p50",
        "live.serve.latency_micros.p99",
        "live.serve.answers.1s",
        "live.serve.inflight",
        "serve.queries",
        "serve.results_ok",
    ] {
        if !cs.iter().any(|(k, _)| k == key) {
            return Err(format!("stats snapshot is missing {key}"));
        }
    }
    Ok(cs)
}

/// Checks the Prometheus rendering: typed summaries, numeric values.
fn validate_prometheus(prom: &str) -> Result<(), String> {
    if !prom.contains("# TYPE live_serve_latency_micros summary") {
        return Err("missing latency summary TYPE line".into());
    }
    if !prom.contains("live_serve_latency_micros{quantile=\"0.99\"}") {
        return Err("missing p99 quantile sample".into());
    }
    for line in prom.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let (_, value) = line.rsplit_once(' ').ok_or_else(|| format!("malformed line {line:?}"))?;
        value.parse::<u64>().map_err(|_| format!("non-numeric value in {line:?}"))?;
    }
    Ok(())
}

fn poll_loop(o: &Opts) -> Result<(), String> {
    let addr = o.target.clone().expect("target checked in parse_opts");
    let target = match &addr {
        ServerAddr::Unix(p) => format!("unix:{}", p.display()),
        ServerAddr::Tcp(sa) => format!("tcp:{sa}"),
    };
    let mut client = Client::connect(&addr).map_err(|e| format!("connect {target}: {e}"))?;
    let mut frame = 0u64;
    loop {
        frame += 1;
        if o.prom {
            let prom = client.stats_prometheus().map_err(|e| format!("stats: {e}"))?;
            print!("{prom}");
        } else {
            let cs = validate_json(&client.stats_json().map_err(|e| format!("stats: {e}"))?)?;
            if !o.once {
                print!("\x1b[2J\x1b[H"); // clear + home between frames
            }
            print!("{}", render(&cs, &target, frame));
        }
        if o.once || (o.iters > 0 && frame >= o.iters) {
            return Ok(());
        }
        std::thread::sleep(o.interval);
    }
}

/// Drives light mixed load so the selftest dashboard has something to
/// show: a few distinct roots, one repeat (cache hit).
fn drive_load(addr: &ServerAddr) -> Result<(), String> {
    use sw_net::framing::QueryOp;
    let mut client = Client::connect(addr).map_err(|e| format!("load connect: {e}"))?;
    for root in [1u64, 5, 9, 1, 13, 5] {
        match client
            .query(QueryOp::Distance, root, root + 2, 0, 0)
            .map_err(|e| format!("load query: {e}"))?
        {
            sw_serve::Response::Answer(_) => {}
            sw_serve::Response::Busy(_) => return Err("selftest load shed".into()),
        }
    }
    Ok(())
}

/// CI mode: start in-process servers on both listener families, drive
/// load, validate both stats renderings, render one frame each.
fn selftest() -> Result<(), String> {
    use sw_graph::{generate_kronecker, KroneckerConfig};
    let el = generate_kronecker(&KroneckerConfig::graph500(10, 77));

    type Starter = fn(&sw_graph::EdgeList) -> std::io::Result<Server>;
    let starters: [(&str, Starter); 2] = [
        ("unix", |el| Server::start(el, ServeConfig::default())),
        ("tcp", |el| Server::start_tcp(el, ServeConfig::default())),
    ];
    for (family, start) in starters {
        let mut server = start(&el).map_err(|e| format!("{family} server: {e}"))?;
        drive_load(&server.addr())?;

        let mut monitor =
            Client::connect(&server.addr()).map_err(|e| format!("{family} monitor: {e}"))?;
        let json = monitor.stats_json().map_err(|e| format!("{family} stats: {e}"))?;
        let cs = validate_json(&json).map_err(|e| format!("{family}: {e}"))?;
        if cs.get("live.serve.latency_micros.count") != 6 {
            return Err(format!(
                "{family}: histogram saw {} samples, expected 6",
                cs.get("live.serve.latency_micros.count")
            ));
        }
        if cs.get("serve.queries") != 6 {
            return Err(format!("{family}: serve.queries != 6"));
        }
        let prom = monitor.stats_prometheus().map_err(|e| format!("{family} prom: {e}"))?;
        validate_prometheus(&prom).map_err(|e| format!("{family}: {e}"))?;

        print!("{}", render(&cs, &format!("selftest:{family}"), 1));
        println!();
        server.shutdown();
    }
    println!("swtop selftest: both families OK");
    Ok(())
}

fn main() -> ExitCode {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("swtop: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if o.selftest { selftest() } else { poll_loop(&o) };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("swtop: {e}");
            ExitCode::FAILURE
        }
    }
}
