//! Raw edge lists as produced by the Kronecker generator.
//!
//! Graph500 step (1) emits an unordered list of undirected edge tuples; the
//! construction step (3) turns it into CSR. The list may contain self-loops
//! and duplicate edges — the spec permits both, and the construction step may
//! keep or drop them (we keep them by default; BFS is insensitive to either).

use crate::Vid;

/// An unordered list of undirected edges `(u, v)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices in the id space (`0..num_vertices`).
    pub num_vertices: Vid,
    /// Edge tuples. Undirected: `(u, v)` represents `{u, v}`.
    pub edges: Vec<(Vid, Vid)>,
}

impl EdgeList {
    /// Creates an edge list over `num_vertices` ids from raw tuples.
    ///
    /// # Panics
    /// Panics if any endpoint is out of range.
    pub fn new(num_vertices: Vid, edges: Vec<(Vid, Vid)>) -> Self {
        for &(u, v) in &edges {
            assert!(
                u < num_vertices && v < num_vertices,
                "edge ({u}, {v}) out of range for {num_vertices} vertices"
            );
        }
        Self { num_vertices, edges }
    }

    /// Number of edge tuples (each undirected edge counted once).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the list holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates over both directions of every edge: `(u,v)` and `(v,u)`.
    ///
    /// Self-loops are emitted once.
    pub fn symmetric_iter(&self) -> impl Iterator<Item = (Vid, Vid)> + '_ {
        self.edges.iter().flat_map(|&(u, v)| {
            let back = if u != v { Some((v, u)) } else { None };
            std::iter::once((u, v)).chain(back)
        })
    }

    /// Number of self-loop tuples.
    pub fn self_loops(&self) -> usize {
        self.edges.iter().filter(|&&(u, v)| u == v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_in_range_edges() {
        let el = EdgeList::new(4, vec![(0, 1), (2, 3), (3, 3)]);
        assert_eq!(el.len(), 3);
        assert!(!el.is_empty());
        assert_eq!(el.self_loops(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        EdgeList::new(2, vec![(0, 2)]);
    }

    #[test]
    fn symmetric_iter_doubles_non_loops() {
        let el = EdgeList::new(3, vec![(0, 1), (2, 2)]);
        let sym: Vec<_> = el.symmetric_iter().collect();
        assert_eq!(sym, vec![(0, 1), (1, 0), (2, 2)]);
    }

    #[test]
    fn empty_list() {
        let el = EdgeList::new(10, vec![]);
        assert!(el.is_empty());
        assert_eq!(el.symmetric_iter().count(), 0);
    }
}
