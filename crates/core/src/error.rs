//! Execution errors: the structured crash modes of Figure 11 plus input
//! validation.

use std::fmt;
use sw_arch::ArchError;
use sw_net::NetError;

/// Why an exchange phase could not deliver its messages: the structured
/// failure modes of the fault-injection subsystem ([`crate::faults`]).
/// Injected faults must surface as one of these — never as a panic, a
/// hang, or silent corruption.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExchangeError {
    /// A message burned its whole retry budget without being delivered
    /// (dead link, or fault rates past the survivable regime).
    RetriesExhausted {
        /// Exchange phase that failed.
        phase: u64,
        /// Sending rank.
        src: u32,
        /// Receiving rank.
        dst: u32,
        /// Attempts made (= `RetryPolicy::max_attempts`).
        attempts: u32,
    },
    /// Accumulated backoffs and injected delays blew the per-level
    /// simulated-time budget.
    LevelTimeout {
        /// Exchange phase that failed.
        phase: u64,
        /// Simulated time spent when the budget tripped.
        elapsed_ns: u64,
        /// The budget (`RetryPolicy::level_timeout_ns`).
        budget_ns: u64,
    },
    /// A peer rank's channel closed mid-run (its thread is gone).
    PeerDisconnected {
        /// The rank whose endpoint vanished.
        rank: u32,
    },
    /// The wire protocol was violated (wrong payload kind for the
    /// phase) — previously an `unreachable!` panic in the rank threads.
    Protocol {
        /// Exchange phase (sequence number) of the bad packet.
        phase: u64,
        /// What was wrong.
        detail: &'static str,
    },
    /// A peer rank failed first and broadcast an abort; this rank shut
    /// down cleanly instead of deadlocking on a receive.
    Aborted {
        /// The rank that originated the abort.
        by: u32,
    },
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeError::RetriesExhausted {
                phase,
                src,
                dst,
                attempts,
            } => write!(
                f,
                "retries exhausted in phase {phase}: {src}->{dst} failed {attempts} attempts"
            ),
            ExchangeError::LevelTimeout {
                phase,
                elapsed_ns,
                budget_ns,
            } => write!(
                f,
                "level timeout in phase {phase}: {elapsed_ns} ns elapsed, budget {budget_ns} ns"
            ),
            ExchangeError::PeerDisconnected { rank } => {
                write!(f, "peer rank {rank} disconnected")
            }
            ExchangeError::Protocol { phase, detail } => {
                write!(f, "protocol violation in phase {phase}: {detail}")
            }
            ExchangeError::Aborted { by } => {
                write!(f, "aborted: rank {by} failed first")
            }
        }
    }
}

impl std::error::Error for ExchangeError {}

/// Why a BFS run could not complete.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// A chip-level constraint was violated (SPM overflow, mesh deadlock,
    /// too many shuffle destinations — the Direct-CPE crash).
    Arch(ArchError),
    /// A network-level failure (connection memory exhausted — the
    /// Direct-MPE crash at 16 Ki nodes).
    Net(NetError),
    /// The exchange pipeline failed under injected faults and could not
    /// degrade around them.
    Exchange(ExchangeError),
    /// The root vertex is outside the graph or has no edges.
    BadRoot {
        /// The offending root.
        root: sw_graph::Vid,
        /// Explanation.
        reason: &'static str,
    },
    /// Inconsistent setup (e.g. zero ranks).
    BadSetup(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Arch(e) => write!(f, "chip constraint violated: {e}"),
            ExecError::Net(e) => write!(f, "network failure: {e}"),
            ExecError::Exchange(e) => write!(f, "exchange failure: {e}"),
            ExecError::BadRoot { root, reason } => write!(f, "bad root {root}: {reason}"),
            ExecError::BadSetup(msg) => write!(f, "bad setup: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Arch(e) => Some(e),
            ExecError::Net(e) => Some(e),
            ExecError::Exchange(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for ExecError {
    fn from(e: ArchError) -> Self {
        ExecError::Arch(e)
    }
}

impl From<NetError> for ExecError {
    fn from(e: NetError) -> Self {
        ExecError::Net(e)
    }
}

impl From<ExchangeError> for ExecError {
    fn from(e: ExchangeError) -> Self {
        ExecError::Exchange(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ExecError = ArchError::TooManyDestinations {
            requested: 4096,
            max: 1024,
        }
        .into();
        assert!(e.to_string().contains("chip constraint"));

        let e: ExecError = NetError::BadNode { node: 3, nodes: 2 }.into();
        assert!(e.to_string().contains("network failure"));

        let e = ExecError::BadRoot {
            root: 7,
            reason: "isolated vertex",
        };
        assert!(e.to_string().contains("isolated"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: ExecError = ArchError::BadLayout("x".into()).into();
        assert!(e.source().is_some());
        assert!(ExecError::BadSetup("y".into()).source().is_none());
        let e: ExecError = ExchangeError::Aborted { by: 3 }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn exchange_error_displays() {
        let e = ExchangeError::RetriesExhausted {
            phase: 2,
            src: 1,
            dst: 5,
            attempts: 4,
        };
        assert!(e.to_string().contains("1->5"));
        let e: ExecError = e.into();
        assert!(e.to_string().contains("exchange failure"));
        assert!(ExchangeError::LevelTimeout {
            phase: 0,
            elapsed_ns: 10,
            budget_ns: 5
        }
        .to_string()
        .contains("budget"));
        assert!(ExchangeError::PeerDisconnected { rank: 7 }
            .to_string()
            .contains('7'));
        assert!(ExchangeError::Protocol {
            phase: 1,
            detail: "records where stats expected"
        }
        .to_string()
        .contains("protocol"));
        assert!(ExchangeError::Aborted { by: 2 }.to_string().contains("rank 2"));
    }
}
