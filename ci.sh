#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy -- -D warnings

# Chaos smoke: the differential fault harness under its fixed seeds —
# randomized survivable schedules must stay bit-identical to the
# fault-free oracle, unsurvivable ones must fail structurally.
cargo test -q -p swbfs-core --test chaos
