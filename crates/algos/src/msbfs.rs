//! MS-BFS: up to 64 concurrent BFS traversals in one bit-parallel sweep.
//!
//! The query-service kernel (ROADMAP item 2, after Then et al.'s
//! multi-source BFS and the GBBS observation that one cache-resident
//! edge pass can serve many logical traversals): instead of running K
//! single-source BFS sweeps, pack K ≤ 64 sources into the bits of a
//! `u64` and carry a *mask* per vertex. A vertex's frontier word holds
//! one bit per source whose wave reached it this round; one pass over
//! the adjacency then advances all K traversals at once, and the wire
//! carries `(vertex, mask)` records — at most one per (source rank,
//! target vertex) per round thanks to sender-side mask aggregation —
//! instead of K separate record streams.
//!
//! The kernel rides the same [`AlgoCluster`] scaffolding as the other
//! shuffle-shaped kernels: 1-D partitioning, the pooled record
//! exchange over any [`Transport`], gen/handle spans per round, and
//! the canonical `exchange.*` counter path. `tests/msbfs_differential.rs`
//! proves the batch bit-identical to K independent single-source runs
//! across the shared-memory and socket fabrics.

use crate::runtime::AlgoCluster;
use sw_graph::{Csr, EdgeList, Vid};
use swbfs_core::engine::Transport;
use swbfs_core::instrument as ins;
use swbfs_core::messages::EdgeRec;

/// Most sources one sweep can carry: the bit width of the mask word.
pub const MAX_BATCH: usize = 64;

/// Level value for vertices a source never reaches.
pub const UNREACHED: u32 = u32::MAX;

/// The result of one batched sweep.
#[derive(Clone, Debug)]
pub struct MsBfsOutput {
    /// The batch, in bit order: `levels[k]` answers `sources[k]`.
    pub sources: Vec<Vid>,
    /// `levels[k][v]` = BFS distance from `sources[k]` to vertex `v`
    /// ([`UNREACHED`] when no path exists).
    pub levels: Vec<Vec<u32>>,
    /// Synchronous rounds the sweep ran (= deepest settled level).
    pub rounds: u32,
}

/// Runs one bit-parallel multi-source sweep over the cluster.
///
/// Duplicate sources are legal (each bit advances independently); every
/// source must lie inside the vertex id space.
///
/// # Panics
/// Panics if `sources` is empty, longer than [`MAX_BATCH`], or names a
/// vertex outside the graph.
pub fn msbfs_distributed<T: Transport>(
    cluster: &mut AlgoCluster<T>,
    sources: &[Vid],
) -> MsBfsOutput {
    let kq = sources.len();
    assert!(
        (1..=MAX_BATCH).contains(&kq),
        "batch of {kq} sources (1..={MAX_BATCH} supported)"
    );
    let n = cluster.num_vertices();
    for &s in sources {
        assert!(s < n, "source {s} outside the {n}-vertex id space");
    }
    let ranks = cluster.num_ranks() as usize;
    let tracer = cluster.tracer().cloned();
    let tr = tracer.as_ref();

    // Per-rank mask state, one u64 per owned vertex: `seen` (any wave
    // that ever arrived), `curr` (waves arriving this round), `next`
    // (waves found for the coming round). `dist` is the flattened
    // per-source level array, stride kq.
    let owned: Vec<usize> = (0..ranks)
        .map(|r| {
            let (s, e) = cluster.part.range(r as u32);
            (e - s) as usize
        })
        .collect();
    let mut seen: Vec<Vec<u64>> = owned.iter().map(|&m| vec![0u64; m]).collect();
    let mut curr: Vec<Vec<u64>> = owned.iter().map(|&m| vec![0u64; m]).collect();
    let mut next: Vec<Vec<u64>> = owned.iter().map(|&m| vec![0u64; m]).collect();
    let mut dist: Vec<Vec<u32>> = owned.iter().map(|&m| vec![UNREACHED; m * kq]).collect();

    // Sender-side aggregation scratch: one mask slot per *global*
    // vertex plus the list of touched targets, reused every round so
    // the steady state allocates nothing.
    let mut agg: Vec<Vec<u64>> = (0..ranks).map(|_| vec![0u64; n as usize]).collect();
    let mut touched: Vec<Vec<Vid>> = (0..ranks).map(|_| Vec::new()).collect();

    // Seed: each source claims its bit at distance 0.
    for (b, &s) in sources.iter().enumerate() {
        let r = cluster.part.owner(s) as usize;
        let i = cluster.part.to_local(s) as usize;
        let bit = 1u64 << b;
        curr[r][i] |= bit;
        seen[r][i] |= bit;
        dist[r][i * kq + b] = 0;
    }

    let mut round = 0u32;
    loop {
        if curr.iter().all(|c| c.iter().all(|&w| w == 0)) {
            break;
        }
        cluster.set_round(round);
        let settle_at = round + 1;

        // Generate: every frontier vertex offers its mask to all
        // neighbours; local waves apply straight into `next`, remote
        // ones aggregate per target so each (rank, target) sends one
        // record regardless of how many frontier vertices feed it.
        let mut out = cluster.lend_outboxes();
        for r in 0..ranks {
            let t0 = ins::span_begin(tr);
            let csr = &cluster.csrs[r];
            let part = cluster.part;
            for (i, &mask) in curr[r].iter().enumerate() {
                if mask == 0 {
                    continue;
                }
                for &v in csr.neighbors_local(i) {
                    let o = part.owner(v) as usize;
                    if o == r {
                        let vl = part.to_local(v) as usize;
                        apply_mask(
                            mask,
                            vl,
                            kq,
                            settle_at,
                            &mut seen[r],
                            &mut next[r],
                            &mut dist[r],
                        );
                    } else {
                        let slot = &mut agg[r][v as usize];
                        if *slot == 0 {
                            touched[r].push(v);
                        }
                        *slot |= mask;
                    }
                }
            }
            // Ascending-target emission keeps message contents (not
            // just sorted inboxes) deterministic across runs.
            touched[r].sort_unstable();
            let produced = touched[r].len() as u64;
            for &v in &touched[r] {
                let mask = std::mem::take(&mut agg[r][v as usize]);
                out[r].push(part.owner(v), EdgeRec { u: v, v: mask });
            }
            touched[r].clear();
            ins::span_end(tr, r, ins::SPAN_GEN, ins::CAT_COMPUTE, round, t0, produced);
        }

        // Exchange + apply remote waves.
        let inboxes = cluster.exchange_round(out);
        for (r, inbox) in inboxes.iter().enumerate() {
            let t0 = ins::span_begin(tr);
            for rec in inbox {
                let vl = cluster.part.to_local(rec.u) as usize;
                apply_mask(
                    rec.v,
                    vl,
                    kq,
                    settle_at,
                    &mut seen[r],
                    &mut next[r],
                    &mut dist[r],
                );
            }
            ins::span_end(
                tr,
                r,
                ins::SPAN_HANDLE,
                ins::CAT_COMPUTE,
                round,
                t0,
                inbox.len() as u64,
            );
        }
        cluster.recycle_inboxes(inboxes);

        for r in 0..ranks {
            std::mem::swap(&mut curr[r], &mut next[r]);
            next[r].fill(0);
        }
        round += 1;
    }

    // Assemble the per-source global level arrays.
    let mut levels: Vec<Vec<u32>> = (0..kq).map(|_| vec![UNREACHED; n as usize]).collect();
    for r in 0..ranks {
        let (start, _) = cluster.part.range(r as u32);
        for i in 0..owned[r] {
            for (b, lv) in levels.iter_mut().enumerate() {
                lv[start as usize + i] = dist[r][i * kq + b];
            }
        }
    }
    MsBfsOutput {
        sources: sources.to_vec(),
        levels,
        rounds: round,
    }
}

/// Applies an arriving mask to one owned vertex: bits not yet seen
/// settle at `settle_at` and join the next frontier. Local and remote
/// arrivals of the same round commute — both write the same distance,
/// and `seen` keeps the first writer's claim idempotent.
#[inline]
fn apply_mask(
    mask: u64,
    vl: usize,
    kq: usize,
    settle_at: u32,
    seen: &mut [u64],
    next: &mut [u64],
    dist: &mut [u32],
) {
    let mut new = mask & !seen[vl];
    if new == 0 {
        return;
    }
    seen[vl] |= new;
    next[vl] |= new;
    while new != 0 {
        let b = new.trailing_zeros() as usize;
        dist[vl * kq + b] = settle_at;
        new &= new - 1;
    }
}

/// Single-node reference: one sequential BFS, the differential oracle
/// for every bit of a batched sweep.
pub fn bfs_levels_oracle(el: &EdgeList, root: Vid) -> Vec<u32> {
    let csr = Csr::from_edge_list(el);
    let mut levels = vec![UNREACHED; el.num_vertices as usize];
    levels[root as usize] = 0;
    let mut frontier = vec![root];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let mut nf = Vec::new();
        for &u in &frontier {
            for &v in csr.neighbors(u) {
                if levels[v as usize] == UNREACHED {
                    levels[v as usize] = depth;
                    nf.push(v);
                }
            }
        }
        frontier = nf;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::{generate_kronecker, KroneckerConfig};
    use swbfs_core::config::Messaging;

    #[test]
    fn single_source_matches_oracle() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 3));
        let oracle = bfs_levels_oracle(&el, 1);
        for ranks in [1u32, 4, 7] {
            let mut c = AlgoCluster::new(&el, ranks, 2, Messaging::Relay);
            let out = msbfs_distributed(&mut c, &[1]);
            assert_eq!(out.levels[0], oracle, "ranks = {ranks}");
        }
    }

    #[test]
    fn batch_bits_are_independent() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 5));
        let sources = [0u64, 7, 31, 101, 255];
        let mut c = AlgoCluster::new(&el, 4, 2, Messaging::Direct);
        let out = msbfs_distributed(&mut c, &sources);
        for (k, &s) in sources.iter().enumerate() {
            assert_eq!(out.levels[k], bfs_levels_oracle(&el, s), "source {s}");
        }
    }

    #[test]
    fn duplicate_sources_answer_identically() {
        let el = generate_kronecker(&KroneckerConfig::graph500(8, 1));
        let mut c = AlgoCluster::new(&el, 3, 2, Messaging::Relay);
        let out = msbfs_distributed(&mut c, &[5, 5, 9]);
        assert_eq!(out.levels[0], out.levels[1]);
        assert_eq!(out.levels[0], bfs_levels_oracle(&el, 5));
    }

    #[test]
    fn isolated_source_reaches_only_itself() {
        let el = EdgeList::new(6, vec![(0, 1), (1, 2)]);
        let mut c = AlgoCluster::new(&el, 2, 2, Messaging::Direct);
        let out = msbfs_distributed(&mut c, &[4]);
        let mut expect = vec![UNREACHED; 6];
        expect[4] = 0;
        assert_eq!(out.levels[0], expect);
        assert_eq!(out.rounds, 1, "one round discovers the empty frontier");
    }

    #[test]
    fn aggregation_collapses_duplicate_targets() {
        // A star: every leaf reaches the hub in one hop. With all
        // leaves as sources, sender-side aggregation must emit one
        // record per (rank, target), not one per frontier edge.
        let el = EdgeList::new(9, (1..9).map(|v| (0u64, v)).collect());
        let mut c = AlgoCluster::new(&el, 3, 2, Messaging::Direct);
        let sources: Vec<Vid> = (1..9).collect();
        let out = msbfs_distributed(&mut c, &sources);
        for (k, &s) in sources.iter().enumerate() {
            assert_eq!(out.levels[k][s as usize], 0);
            assert_eq!(out.levels[k][0], 1);
        }
        // Round 0: each rank sends at most one record to vertex 0's
        // owner (aggregated), plus round-1 fan-out back to the leaves.
        assert!(
            c.stats.record_hops < 8 + 8,
            "aggregation failed: {} record hops",
            c.stats.record_hops
        );
    }

    #[test]
    fn full_width_batch_runs() {
        let el = generate_kronecker(&KroneckerConfig::graph500(8, 9));
        let sources: Vec<Vid> = (0..MAX_BATCH as u64).collect();
        let mut c = AlgoCluster::new(&el, 4, 2, Messaging::Relay);
        let out = msbfs_distributed(&mut c, &sources);
        assert_eq!(out.levels.len(), MAX_BATCH);
        assert_eq!(out.levels[63], bfs_levels_oracle(&el, 63));
    }

    #[test]
    #[should_panic(expected = "sources")]
    fn oversize_batch_is_rejected() {
        let el = EdgeList::new(70, vec![(0, 1)]);
        let mut c = AlgoCluster::new(&el, 2, 2, Messaging::Direct);
        let sources: Vec<Vid> = (0..65).collect();
        msbfs_distributed(&mut c, &sources);
    }
}
