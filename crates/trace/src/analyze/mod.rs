//! # sw-insight — trace analysis on top of sw-trace
//!
//! Post-hoc analysis of [`TraceReport`]s: nothing in this module runs
//! on the instrumented hot path. Given a finished report (and
//! optionally a machine-context counter set with `net.*`/`arch.*`
//! keys), [`analyze`] produces an [`InsightReport`] answering "why was
//! this run slow":
//!
//! * [`attribution`] — per-level bottleneck classification
//!   (compute / mesh / DMA / uplink / relay / retry-bound);
//! * [`critical_path`] — the barrier-stage critical path through
//!   `gen → bucket → deliver → relay → handle` with per-lane slack;
//! * [`imbalance`] — per-rank and per-supernode load dispersion
//!   (max/mean, coefficient of variation) in integer permille;
//! * [`deviation`] — model-vs-measured counter comparison (attached by
//!   callers that hold both sides, e.g. the regression sentinel).
//!
//! Every renderer ([`InsightReport::to_text`], [`InsightReport::to_json`],
//! [`InsightReport::to_counters`]) is integer-only and
//! byte-deterministic for virtual-domain traces, so insight reports are
//! golden-testable artifacts exactly like the traces they digest.

pub mod attribution;
pub mod critical_path;
pub mod deviation;
pub mod imbalance;

use crate::json::escape;
use crate::metrics::CounterSet;
use crate::report::TraceReport;
use crate::tracer::ClockDomain;
use attribution::{AttributionReport, Bottleneck};
use critical_path::CriticalPathReport;
use deviation::DeviationReport;
use imbalance::ImbalanceReport;

/// Machine-level context the trace alone does not carry: tier busy
/// times from the network simulator (for the Dma/Uplink deliver split)
/// and the supernode grouping.
#[derive(Clone, Debug, Default)]
pub struct MachineContext {
    /// `net.*` / `arch.*` counters, e.g. from `TierOccupancy::publish`.
    pub counters: CounterSet,
    /// Ranks per supernode group (0 = single group).
    pub group_size: usize,
}

impl MachineContext {
    /// An empty context (no uplink split, one supernode group).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the supernode group size.
    pub fn with_group_size(mut self, g: usize) -> Self {
        self.group_size = g;
        self
    }

    /// Sets the machine counters.
    pub fn with_counters(mut self, cs: CounterSet) -> Self {
        self.counters = cs;
        self
    }
}

/// The combined analysis artifact.
#[derive(Clone, Debug)]
pub struct InsightReport {
    /// Clock domain of the analyzed trace.
    pub domain: ClockDomain,
    /// Per-level bottleneck attribution.
    pub attribution: AttributionReport,
    /// Critical path and slack.
    pub critical_path: CriticalPathReport,
    /// Rank/supernode balance.
    pub imbalance: ImbalanceReport,
    /// Optional model-vs-measured comparison.
    pub deviation: Option<DeviationReport>,
}

/// Analyzes a finished trace under `ctx`.
pub fn analyze(rep: &TraceReport, ctx: &MachineContext) -> InsightReport {
    let up = attribution::uplink_share_permille(&ctx.counters);
    InsightReport {
        domain: rep.domain,
        attribution: attribution::attribute(rep, up),
        critical_path: critical_path::extract(rep),
        imbalance: imbalance::extract(rep, ctx.group_size),
        deviation: None,
    }
}

/// Formats integer permille as a fixed-point decimal (`1234` → `1.234`).
pub(crate) fn permille_str(p: u64) -> String {
    format!("{}.{:03}", p / 1000, p % 1000)
}

impl InsightReport {
    /// Attaches a model-vs-measured comparison.
    pub fn with_deviation(mut self, d: DeviationReport) -> Self {
        self.deviation = Some(d);
        self
    }

    /// The deterministic human-readable report — the golden-test
    /// artifact. Integer-only formatting; byte-identical for identical
    /// virtual-domain traces.
    pub fn to_text(&self) -> String {
        let mut out = format!("sw-insight report ({})\n\n", self.domain.as_str());

        out.push_str(&format!(
            "== bottleneck attribution (uplink share {}) ==\n",
            permille_str(self.attribution.uplink_permille)
        ));
        out.push_str(
            "level  class      compute       mesh        dma     uplink      relay  retries  faults\n",
        );
        for l in &self.attribution.levels {
            out.push_str(&format!(
                "{:>5}  {:<8} {:>9} {:>10} {:>10} {:>10} {:>10} {:>8} {:>7}\n",
                l.level,
                l.class.as_str(),
                l.compute_units,
                l.mesh_units,
                l.dma_units,
                l.uplink_units,
                l.relay_units,
                l.retries,
                l.faults,
            ));
        }
        out.push_str("class totals:");
        for c in Bottleneck::ALL {
            out.push_str(&format!(" {}={}", c.as_str(), self.attribution.class_count(c)));
        }
        out.push_str("\n\n");

        out.push_str("== critical path (gen -> bucket -> deliver -> relay -> handle) ==\n");
        out.push_str("level  crit_units  critical stages (stage=lane:units)\n");
        for l in &self.critical_path.levels {
            let stages: Vec<String> = l
                .stages
                .iter()
                .map(|s| {
                    format!(
                        "{}={}:{}",
                        s.stage,
                        self.critical_path
                            .lane_names
                            .get(s.lane)
                            .map(|n| n.as_str())
                            .unwrap_or("?"),
                        s.units
                    )
                })
                .collect();
            out.push_str(&format!("{:>5}  {:>10}  {}\n", l.level, l.units, stages.join(" ")));
        }
        out.push_str(&format!(
            "total: {} critical units, {} work units, parallelism {}\n",
            self.critical_path.total_units,
            self.critical_path.work_units,
            permille_str(self.critical_path.parallelism_permille())
        ));
        out.push_str("lane slack:");
        for (name, slack) in self
            .critical_path
            .lane_names
            .iter()
            .zip(&self.critical_path.lane_slack)
        {
            out.push_str(&format!(" {name}={slack}"));
        }
        out.push_str("\n\n");

        out.push_str("== load imbalance ==\n");
        out.push_str("rank work:");
        for (name, w) in self.imbalance.rank_names.iter().zip(&self.imbalance.rank_work) {
            out.push_str(&format!(" {name}={w}"));
        }
        out.push_str(&format!(
            "\nranks: max/mean {}, cv {}\n",
            permille_str(self.imbalance.ranks.max_mean_permille),
            permille_str(self.imbalance.ranks.cv_permille)
        ));
        out.push_str(&format!("supernodes (groups of {}):", self.imbalance.group_size));
        for (i, w) in self.imbalance.supernode_work.iter().enumerate() {
            out.push_str(&format!(" sn{i}={w}"));
        }
        out.push_str(&format!(
            "\nsupernodes: max/mean {}, cv {}\n",
            permille_str(self.imbalance.supernodes.max_mean_permille),
            permille_str(self.imbalance.supernodes.cv_permille)
        ));
        out.push_str("level  max/mean      cv\n");
        for l in &self.imbalance.per_level {
            out.push_str(&format!(
                "{:>5} {:>9} {:>7}\n",
                l.level,
                permille_str(l.ranks.max_mean_permille),
                permille_str(l.ranks.cv_permille)
            ));
        }

        if let Some(d) = &self.deviation {
            out.push_str("\n== model vs measured ==\n");
            out.push_str(&d.to_text());
        }
        out
    }

    /// The report as deterministic nested JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"domain\": \"{}\",\n", self.domain.as_str()));

        out.push_str(&format!(
            "  \"attribution\": {{\"uplink_permille\": {}, \"levels\": [",
            self.attribution.uplink_permille
        ));
        for (i, l) in self.attribution.levels.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"level\": {}, \"class\": \"{}\", \"compute\": {}, \"mesh\": {}, \
                 \"dma\": {}, \"uplink\": {}, \"relay\": {}, \"retries\": {}, \"faults\": {}}}",
                l.level,
                l.class.as_str(),
                l.compute_units,
                l.mesh_units,
                l.dma_units,
                l.uplink_units,
                l.relay_units,
                l.retries,
                l.faults
            ));
        }
        out.push_str("]},\n");

        out.push_str(&format!(
            "  \"critical_path\": {{\"total_units\": {}, \"work_units\": {}, \
             \"parallelism_permille\": {}, \"levels\": [",
            self.critical_path.total_units,
            self.critical_path.work_units,
            self.critical_path.parallelism_permille()
        ));
        for (i, l) in self.critical_path.levels.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{{\"level\": {}, \"units\": {}, \"stages\": [", l.level, l.units));
            for (j, s) in l.stages.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"stage\": \"{}\", \"lane\": {}, \"units\": {}, \"slack\": {}}}",
                    s.stage, s.lane, s.units, s.slack_units
                ));
            }
            out.push_str("]}");
        }
        out.push_str("], \"lane_slack\": {");
        for (i, (name, slack)) in self
            .critical_path
            .lane_names
            .iter()
            .zip(&self.critical_path.lane_slack)
            .enumerate()
        {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", escape(name), slack));
        }
        out.push_str("}},\n");

        out.push_str(&format!(
            "  \"imbalance\": {{\"group_size\": {}, \"rank_work\": [{}], \
             \"supernode_work\": [{}], \"rank_max_mean_permille\": {}, \"rank_cv_permille\": {}, \
             \"supernode_max_mean_permille\": {}, \"supernode_cv_permille\": {}}}",
            self.imbalance.group_size,
            self.imbalance
                .rank_work
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            self.imbalance
                .supernode_work
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            self.imbalance.ranks.max_mean_permille,
            self.imbalance.ranks.cv_permille,
            self.imbalance.supernodes.max_mean_permille,
            self.imbalance.supernodes.cv_permille
        ));

        if let Some(d) = &self.deviation {
            out.push_str(",\n  \"deviation\": {");
            for (i, r) in d.rows.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", escape(&r.key), r.error_permille));
            }
            out.push('}');
        }
        out.push_str("\n}\n");
        out
    }

    /// Flattens the analysis into `insight.*` counters for the
    /// regression sentinel. The key set is fixed (all six class counts
    /// always present) so baselines diff cleanly.
    pub fn to_counters(&self) -> CounterSet {
        let mut cs = CounterSet::new();
        cs.set("insight.levels", self.attribution.levels.len() as u64);
        cs.set("insight.uplink_permille", self.attribution.uplink_permille);
        for c in Bottleneck::ALL {
            cs.set(
                &format!("insight.class.{}", c.as_str()),
                self.attribution.class_count(c),
            );
        }
        cs.set("insight.critical_units", self.critical_path.total_units);
        cs.set("insight.work_units", self.critical_path.work_units);
        cs.set(
            "insight.parallelism_permille",
            self.critical_path.parallelism_permille(),
        );
        cs.set(
            "insight.max_lane_slack",
            self.critical_path.lane_slack.iter().copied().max().unwrap_or(0),
        );
        cs.set(
            "insight.rank_max_mean_permille",
            self.imbalance.ranks.max_mean_permille,
        );
        cs.set("insight.rank_cv_permille", self.imbalance.ranks.cv_permille);
        cs.set(
            "insight.supernode_max_mean_permille",
            self.imbalance.supernodes.max_mean_permille,
        );
        cs.set(
            "insight.supernode_cv_permille",
            self.imbalance.supernodes.cv_permille,
        );
        for l in &self.attribution.levels {
            cs.set(
                &format!("insight.level{:02}.class", l.level),
                l.class.ordinal(),
            );
        }
        for l in &self.critical_path.levels {
            cs.set(&format!("insight.level{:02}.crit_units", l.level), l.units);
        }
        if let Some(d) = &self.deviation {
            d.to_counters("insight.model", &mut cs);
        }
        cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::check_syntax;
    use crate::tracer::Tracer;

    fn sample() -> InsightReport {
        let t = Tracer::for_ranks(ClockDomain::VirtualWork, 2, 64);
        for level in 0..2u32 {
            t.end(0, "gen", "compute", level, 0, 10 + level as u64);
            t.end(1, "gen", "compute", level, 0, 20);
            t.end(0, "bucket", "compute", level, 0, 3);
            t.end(1, "bucket", "compute", level, 0, 3);
            t.end(0, "deliver", "net", level, 0, 8);
            t.end(1, "deliver", "net", level, 0, 6);
            t.end(0, "handle", "compute", level, 0, 5);
            t.end(1, "handle", "compute", level, 0, 5);
        }
        t.instant(0, "retry", "fault", 1, 2);
        let mut machine = CounterSet::new();
        machine.set("net.egress_busy_ns", 800);
        machine.set("net.ingress_busy_ns", 800);
        machine.set("net.uplink_busy_ns", 200);
        machine.set("net.downlink_busy_ns", 200);
        let ctx = MachineContext::new().with_counters(machine).with_group_size(1);
        analyze(&t.report(), &ctx)
    }

    #[test]
    fn analyze_combines_all_three_views() {
        let r = sample();
        assert_eq!(r.attribution.uplink_permille, 200);
        assert_eq!(r.attribution.levels.len(), 2);
        assert_eq!(r.attribution.levels[0].class, Bottleneck::Compute);
        assert_eq!(r.attribution.levels[1].class, Bottleneck::Retry);
        assert_eq!(r.critical_path.levels.len(), 2);
        assert_eq!(r.imbalance.rank_work.len(), 2);
        assert_eq!(r.imbalance.supernode_work.len(), 2, "group size 1");
    }

    #[test]
    fn renderers_are_deterministic_and_well_formed() {
        let a = sample();
        let b = sample();
        assert_eq!(a.to_text(), b.to_text());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_counters(), b.to_counters());
        check_syntax(&a.to_json()).expect("insight json");
        assert!(a.to_text().contains("== bottleneck attribution"));
        assert!(a.to_text().contains("== critical path"));
        assert!(a.to_text().contains("== load imbalance"));
    }

    #[test]
    fn counters_have_a_fixed_key_set() {
        let cs = sample().to_counters();
        for c in Bottleneck::ALL {
            assert!(
                cs.iter().any(|(k, _)| k == format!("insight.class.{}", c.as_str())),
                "missing class key for {}",
                c.as_str()
            );
        }
        assert_eq!(cs.get("insight.levels"), 2);
        assert_eq!(cs.get("insight.class.retry"), 1);
        assert!(cs.get("insight.critical_units") > 0);
        assert_eq!(cs.get("insight.level01.class"), 5, "retry ordinal");
    }

    #[test]
    fn deviation_attaches_to_text_and_counters() {
        let mut p = CounterSet::new();
        p.set("makespan_ns", 100);
        let mut m = CounterSet::new();
        m.set("makespan_ns", 150);
        let r = sample().with_deviation(deviation::compare(&p, &m));
        assert!(r.to_text().contains("== model vs measured =="));
        assert_eq!(r.to_counters().get("insight.model.max_error_permille"), 500);
        check_syntax(&r.to_json()).expect("json with deviation");
    }

    #[test]
    fn permille_formatting_is_fixed_point() {
        assert_eq!(permille_str(0), "0.000");
        assert_eq!(permille_str(1234), "1.234");
        assert_eq!(permille_str(1002), "1.002");
    }
}
