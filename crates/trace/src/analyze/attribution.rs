//! Per-level bottleneck attribution.
//!
//! Classifies every traced level by where its work units went, in the
//! style of the paper's Fig. 9 discussion: is the level bound by CPE
//! compute, the on-chip register mesh, local DMA delivery, the
//! over-subscribed central switch, the relay transport stage, or the
//! fault layer's retries?
//!
//! The rules are fixed and deterministic (documented in DESIGN.md §6):
//!
//! * `gen` + `handle` span units → **Compute** (module passes on CPEs);
//! * `bucket` span units → **Mesh** (the destination-bucketing counting
//!   sort models the register-mesh shuffle);
//! * `deliver` span units are split between **Dma** (intra-node
//!   delivery) and **Uplink** by the machine context's uplink share —
//!   the fraction of `net.*` tier busy time spent on super-node
//!   up/downlinks (integer permille; 0 without a machine context);
//! * `hub_gather` span units → **Uplink** (the replicated hub bitmap
//!   gather is an inter-supernode collective);
//! * `relay` span units → **Relay** (wall-domain transport artifact —
//!   absent in virtual domains, keeping Direct/Relay reports
//!   byte-identical);
//! * any `retry`/`fault` instants at a level override the unit
//!   comparison: the level is **Retry**-bound.
//!
//! Ties break by the fixed order Compute, Mesh, Dma, Uplink, Relay.

use crate::report::TraceReport;
use std::collections::BTreeMap;

/// What dominated a level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bottleneck {
    /// Module (generator/handler) passes.
    Compute,
    /// Destination bucketing / register-mesh shuffle.
    Mesh,
    /// Intra-node record delivery.
    Dma,
    /// Super-node uplinks (central switch) incl. hub gathers.
    Uplink,
    /// Relay forwarding stage.
    Relay,
    /// Fault-layer retries/injections observed at this level.
    Retry,
}

impl Bottleneck {
    /// Stable display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Bottleneck::Compute => "compute",
            Bottleneck::Mesh => "mesh",
            Bottleneck::Dma => "dma",
            Bottleneck::Uplink => "uplink",
            Bottleneck::Relay => "relay",
            Bottleneck::Retry => "retry",
        }
    }

    /// Stable ordinal for counter export.
    pub fn ordinal(&self) -> u64 {
        match self {
            Bottleneck::Compute => 0,
            Bottleneck::Mesh => 1,
            Bottleneck::Dma => 2,
            Bottleneck::Uplink => 3,
            Bottleneck::Relay => 4,
            Bottleneck::Retry => 5,
        }
    }

    /// All classes, in ordinal order.
    pub const ALL: [Bottleneck; 6] = [
        Bottleneck::Compute,
        Bottleneck::Mesh,
        Bottleneck::Dma,
        Bottleneck::Uplink,
        Bottleneck::Relay,
        Bottleneck::Retry,
    ];
}

/// One level's unit budget and its classification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelAttribution {
    /// BFS level (or algorithm round).
    pub level: u32,
    /// `gen` + `handle` units.
    pub compute_units: u64,
    /// `bucket` units.
    pub mesh_units: u64,
    /// Intra-node share of `deliver` units.
    pub dma_units: u64,
    /// Uplink share of `deliver` units plus `hub_gather` units.
    pub uplink_units: u64,
    /// `relay` units (wall domain only).
    pub relay_units: u64,
    /// Sum of `retry` instant args at this level.
    pub retries: u64,
    /// Sum of `fault` instant args at this level.
    pub faults: u64,
    /// The verdict.
    pub class: Bottleneck,
}

/// Attribution of every traced level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributionReport {
    /// Uplink share of deliver units used for the Dma/Uplink split,
    /// in permille.
    pub uplink_permille: u64,
    /// One entry per level, ascending.
    pub levels: Vec<LevelAttribution>,
}

impl AttributionReport {
    /// Number of levels classified as `class`.
    pub fn class_count(&self, class: Bottleneck) -> u64 {
        self.levels.iter().filter(|l| l.class == class).count() as u64
    }
}

/// The uplink share of total network tier busy time, from a machine
/// counter set holding `net.*` keys as published by
/// `TierOccupancy::publish` (0 when absent).
pub fn uplink_share_permille(machine: &crate::metrics::CounterSet) -> u64 {
    let up = machine.get("net.uplink_busy_ns") + machine.get("net.downlink_busy_ns");
    let total = up + machine.get("net.egress_busy_ns") + machine.get("net.ingress_busy_ns");
    up.saturating_mul(1000).checked_div(total).unwrap_or(0)
}

/// Attributes every level of `rep` under the rules above.
/// `uplink_permille` is the Dma/Uplink split for deliver units
/// (see [`uplink_share_permille`]).
pub fn attribute(rep: &TraceReport, uplink_permille: u64) -> AttributionReport {
    let up = uplink_permille.min(1000);
    // level → (compute, mesh, deliver, gather, relay, retries, faults)
    let mut acc: BTreeMap<u32, [u64; 7]> = BTreeMap::new();
    for lane in &rep.lanes {
        for ev in &lane.events {
            if ev.level == crate::tracer::NO_LEVEL {
                continue;
            }
            let slot = match (ev.kind, ev.name) {
                (crate::tracer::EventKind::Span, "gen" | "handle") => 0,
                (crate::tracer::EventKind::Span, "bucket") => 1,
                (crate::tracer::EventKind::Span, "deliver") => 2,
                (crate::tracer::EventKind::Span, "hub_gather") => 3,
                (crate::tracer::EventKind::Span, "relay") => 4,
                (crate::tracer::EventKind::Instant, "retry") => 5,
                (crate::tracer::EventKind::Instant, "fault") => 6,
                _ => continue,
            };
            let row = acc.entry(ev.level).or_insert([0; 7]);
            row[slot] += if slot >= 5 { ev.arg } else { ev.dur_ns };
        }
    }
    let levels = acc
        .into_iter()
        .map(|(level, [compute, mesh, deliver, gather, relay, retries, faults])| {
            let deliver_up = deliver * up / 1000;
            let l = LevelAttribution {
                level,
                compute_units: compute,
                mesh_units: mesh,
                dma_units: deliver - deliver_up,
                uplink_units: deliver_up + gather,
                relay_units: relay,
                retries,
                faults,
                class: Bottleneck::Compute, // placeholder
            };
            let class = classify(&l);
            LevelAttribution { class, ..l }
        })
        .collect();
    AttributionReport {
        uplink_permille: up,
        levels,
    }
}

fn classify(l: &LevelAttribution) -> Bottleneck {
    if l.retries + l.faults > 0 {
        return Bottleneck::Retry;
    }
    // First (in the fixed order) class with the maximal unit count.
    let budget = [
        (Bottleneck::Compute, l.compute_units),
        (Bottleneck::Mesh, l.mesh_units),
        (Bottleneck::Dma, l.dma_units),
        (Bottleneck::Uplink, l.uplink_units),
        (Bottleneck::Relay, l.relay_units),
    ];
    let top = budget.iter().map(|&(_, u)| u).max().unwrap_or(0);
    budget
        .iter()
        .find(|&&(_, u)| u == top)
        .map(|&(c, _)| c)
        .unwrap_or(Bottleneck::Compute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CounterSet;
    use crate::tracer::{ClockDomain, Tracer};

    fn trace() -> Tracer {
        Tracer::for_ranks(ClockDomain::VirtualWork, 2, 64)
    }

    #[test]
    fn compute_heavy_level_is_compute_bound() {
        let t = trace();
        t.end(0, "gen", "compute", 0, 0, 100);
        t.end(0, "bucket", "compute", 0, 0, 10);
        t.end(0, "deliver", "net", 0, 0, 5);
        let a = attribute(&t.report(), 0);
        assert_eq!(a.levels.len(), 1);
        assert_eq!(a.levels[0].class, Bottleneck::Compute);
        assert_eq!(a.levels[0].compute_units, 100);
    }

    #[test]
    fn deliver_units_split_by_uplink_share() {
        let t = trace();
        t.end(0, "deliver", "net", 3, 0, 1000);
        let a = attribute(&t.report(), 250);
        let l = &a.levels[0];
        assert_eq!(l.dma_units, 750);
        assert_eq!(l.uplink_units, 250);
        assert_eq!(l.class, Bottleneck::Dma);
        let b = attribute(&t.report(), 900);
        assert_eq!(b.levels[0].class, Bottleneck::Uplink);
    }

    #[test]
    fn retries_override_unit_budgets() {
        let t = trace();
        t.end(0, "gen", "compute", 2, 0, 1_000_000);
        t.instant(1, "retry", "fault", 2, 3);
        let a = attribute(&t.report(), 0);
        assert_eq!(a.levels[0].class, Bottleneck::Retry);
        assert_eq!(a.levels[0].retries, 3);
        assert_eq!(a.class_count(Bottleneck::Retry), 1);
    }

    #[test]
    fn gather_counts_toward_uplink_and_relay_spans_toward_relay() {
        let t = trace();
        t.end(0, "hub_gather", "gather", 1, 0, 50);
        t.end(0, "gen", "compute", 1, 0, 10);
        let a = attribute(&t.report(), 0);
        assert_eq!(a.levels[0].uplink_units, 50);
        assert_eq!(a.levels[0].class, Bottleneck::Uplink);

        let t2 = trace();
        t2.span_at(0, "relay", "net", 0, 0, 80, 80);
        t2.end(0, "gen", "compute", 0, 0, 10);
        let b = attribute(&t2.report(), 0);
        assert_eq!(b.levels[0].relay_units, 80);
        assert_eq!(b.levels[0].class, Bottleneck::Relay);
    }

    #[test]
    fn uplink_share_reads_tier_busy_times() {
        let mut cs = CounterSet::new();
        assert_eq!(uplink_share_permille(&cs), 0);
        cs.set("net.egress_busy_ns", 400);
        cs.set("net.ingress_busy_ns", 400);
        cs.set("net.uplink_busy_ns", 100);
        cs.set("net.downlink_busy_ns", 100);
        assert_eq!(uplink_share_permille(&cs), 200);
    }

    #[test]
    fn all_zero_level_defaults_to_compute() {
        let t = trace();
        t.instant(0, "note", "misc", 4, 1); // unknown instant: ignored
        t.end(0, "warmup", "misc", 4, 0, 9); // unknown span: ignored
        let a = attribute(&t.report(), 0);
        assert!(a.levels.is_empty(), "unknown names do not create levels");
    }
}
