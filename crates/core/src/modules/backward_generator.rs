//! Backward Generator (Algorithm 2, `BACKWARD_GENERATOR`): every unvisited
//! owned vertex searches its neighbours for a frontier parent.
//!
//! Three resolution tiers, cheapest first:
//!
//! 1. **local** — the neighbour is owned here; its frontier bit answers
//!    immediately and the scan short-circuits on a hit;
//! 2. **hub** — the neighbour is a hub; the replicated hub-curr bitmap is
//!    *authoritative* (in the frontier → claim and stop; not → no query
//!    needed at all);
//! 3. **remote** — a backward query `(u, v)` must go to `owner(u)`; these
//!    are queued only if tiers 1–2 found no parent.

use super::{ModuleStats, Outboxes};
use crate::hubs::HubState;
use crate::messages::EdgeRec;
use crate::rank::RankState;

/// Runs the Backward Generator over `state`'s unvisited vertices.
pub fn backward_generator(
    state: &mut RankState,
    hubs: &HubState,
    out: &mut Outboxes,
) -> ModuleStats {
    let mut stats = ModuleStats::default();
    let mut queries: Vec<EdgeRec> = Vec::new();
    for v_local in 0..state.owned() {
        if state.visited(v_local) {
            continue;
        }
        let v = state.global(v_local);
        queries.clear();
        let mut found: Option<sw_graph::Vid> = None;
        let deg = state.csr.degree_local(v_local) as usize;
        for e in 0..deg {
            let u = state.csr.neighbors_local(v_local)[e];
            stats.edges_scanned += 1;
            if state.owns(u) {
                if state.curr.contains(state.local(u)) {
                    found = Some(u);
                    break;
                }
            } else if let Some(idx) = hubs.hub_index(u) {
                if hubs.in_frontier(idx) {
                    found = Some(u);
                    break;
                }
                // Hub not in frontier: authoritative no — skip the query.
                stats.hub_skips += 1;
            } else {
                queries.push(EdgeRec { u, v });
            }
        }
        if let Some(u) = found {
            state.claim(v_local, u);
            stats.local_claims += 1;
        } else {
            for q in &queries {
                out.push(state.part.owner(q.u), *q);
                stats.records_out += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_graph::hub::HubSet;
    use sw_graph::{EdgeList, Partition1D};

    // 8 vertices over 2 ranks; rank 0 owns 0..4.
    // Edges: 0-1, 1-4, 2-6 (6 is a hub), 3-5, 3-7.
    fn setup() -> (RankState, HubState) {
        let el = EdgeList::new(8, vec![(0, 1), (1, 4), (2, 6), (3, 5), (3, 7)]);
        let part = Partition1D::new(8, 2);
        let state = RankState::build(0, part, &el);
        let hubs = HubState::new(HubSet::from_degrees(vec![(6, 50)], 4));
        (state, hubs)
    }

    #[test]
    fn local_frontier_parent_short_circuits() {
        let (mut state, hubs) = setup();
        state.parent[0] = 0;
        state.curr.insert(0); // 0 in frontier
        let mut out = Outboxes::new(2);
        let stats = backward_generator(&mut state, &hubs, &mut out);
        // v=1 finds local parent 0 and sends nothing for itself — and its
        // remote neighbour 4 is never queried because of the break.
        assert!(state.visited(state.local(1)));
        assert_eq!(state.parent[1], 0);
        assert!(stats.local_claims >= 1);
        for r in out.for_rank(1) {
            assert_ne!(r.v, 1, "v=1 should not have queried after local hit");
        }
    }

    #[test]
    fn hub_in_frontier_claims_without_query() {
        let (mut state, mut hubs) = setup();
        let idx = hubs.hub_index(6).unwrap();
        hubs.curr.set(idx as usize);
        let mut out = Outboxes::new(2);
        backward_generator(&mut state, &hubs, &mut out);
        // v=2's only neighbour is hub 6, in frontier: claimed locally.
        assert_eq!(state.parent[2], 6);
        for r in out.for_rank(1) {
            assert_ne!(r.v, 2);
        }
    }

    #[test]
    fn hub_not_in_frontier_skips_query_entirely() {
        let (mut state, hubs) = setup();
        let mut out = Outboxes::new(2);
        let stats = backward_generator(&mut state, &hubs, &mut out);
        // v=2 -> hub 6 not in frontier: no query, counted as hub skip.
        assert!(stats.hub_skips >= 1);
        for r in out.for_rank(1) {
            assert_ne!(r.u, 6, "no query should ever target a hub");
        }
    }

    #[test]
    fn remote_non_hub_neighbours_are_queried() {
        let (mut state, hubs) = setup();
        let mut out = Outboxes::new(2);
        backward_generator(&mut state, &hubs, &mut out);
        // v=3 has remote neighbours 5 and 7: two queries to rank 1.
        let qs: Vec<_> = out.for_rank(1).into_iter().filter(|r| r.v == 3).collect();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].u, 5);
        assert_eq!(qs[1].u, 7);
        // v=1 queries remote 4 (0 not in frontier).
        assert!(out.for_rank(1).iter().any(|r| r.v == 1 && r.u == 4));
    }

    #[test]
    fn visited_vertices_do_not_scan() {
        let (mut state, hubs) = setup();
        for i in 0..4 {
            state.parent[i] = 0;
        }
        let mut out = Outboxes::new(2);
        let stats = backward_generator(&mut state, &hubs, &mut out);
        assert_eq!(stats.edges_scanned, 0);
        assert_eq!(out.total_records(), 0);
    }
}
