//! Graph500 smoke run over the socket fabric: the benchmark's per-root
//! loop driving a multi-process `SocketTransport` engine, with every
//! parent tree put through the benchmark validator.
//!
//! The rank daemon is discovered at runtime ([`SocketTransport::
//! resolve_rankd`]); when the binary was never built the test skips
//! rather than fails, so `cargo test -p sw-graph500` alone stays green.
//! CI exports `SWBFS_RANKD_REQUIRE=1` after explicitly building the
//! daemon, turning that skip into a hard failure — the gate can never
//! silently pass by not finding the binary.

#![cfg(unix)]

use sw_graph500::harness::{build_instance, drive_roots, RootAssessment};
use sw_graph500::{validate_bfs, Graph500Spec};
use swbfs_core::config::BfsConfig;
use swbfs_core::engine::{ClusterBuilder, SocketTransport};

#[test]
fn graph500_kernel_runs_over_the_socket_fabric() {
    let probe = SocketTransport::unix();
    let Some(rankd) = probe.resolve_rankd() else {
        assert!(
            std::env::var_os("SWBFS_RANKD_REQUIRE").is_none(),
            "SWBFS_RANKD_REQUIRE is set but swbfs-rankd was not found — \
             the socket gate must not skip"
        );
        eprintln!(
            "skipping: swbfs-rankd not found — \
             `cargo build -p swbfs-core --bin swbfs-rankd` or set SWBFS_RANKD"
        );
        return;
    };

    let spec = Graph500Spec::quick(12, 7, 4);
    let (el, roots) = build_instance(&spec, 0);
    assert!(!roots.is_empty(), "scale-12 instance must yield roots");

    let cfg = BfsConfig::threaded_small(4);
    let mut cluster = ClusterBuilder::new(&el, 8, cfg)
        .transport(SocketTransport::unix().with_rankd(rankd))
        .build()
        .unwrap();

    let (runs, stats) = drive_roots(
        &roots,
        |_, root| cluster.run(root).map_err(|e| format!("kernel: {e}")),
        |_, root, out| {
            let traversed =
                validate_bfs(&el, &out).map_err(|e| format!("root {root} invalid: {e:?}"))?;
            Ok(RootAssessment {
                traversed_edges: traversed,
                reached: out.reached(),
                depth: out.depth(),
            })
        },
        |m| m,
    )
    .unwrap();

    assert_eq!(runs.len(), roots.len());
    assert!(stats.harmonic_mean > 0.0, "TEPS must be positive");
    assert!(runs.iter().all(|r| r.traversed_edges > 0 && r.depth >= 1));
}
