//! Host-side performance of the graph substrate: Kronecker generation,
//! CSR construction, hub selection, and frontier bitmap operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sw_graph::hub::HubSet;
use sw_graph::{generate_kronecker, Bitmap, Csr, KroneckerConfig};

fn bench_kronecker(c: &mut Criterion) {
    let mut g = c.benchmark_group("kronecker_generate");
    for scale in [14u32, 16, 18] {
        let cfg = KroneckerConfig::graph500(scale, 1);
        g.throughput(Throughput::Elements(cfg.num_edges()));
        g.bench_with_input(BenchmarkId::from_parameter(scale), &cfg, |b, cfg| {
            b.iter(|| generate_kronecker(cfg));
        });
    }
    g.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("csr_build");
    g.sample_size(20);
    for scale in [14u32, 16] {
        let el = generate_kronecker(&KroneckerConfig::graph500(scale, 2));
        g.throughput(Throughput::Elements(el.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(scale), &el, |b, el| {
            b.iter(|| Csr::from_edge_list(el));
        });
    }
    g.finish();
}

fn bench_hub_selection(c: &mut Criterion) {
    let el = generate_kronecker(&KroneckerConfig::graph500(16, 3));
    let csr = Csr::from_edge_list(&el);
    c.bench_function("hub_top_4096_scale16", |b| {
        b.iter(|| HubSet::top_k(&csr, 4096));
    });
}

fn bench_bitmap(c: &mut Criterion) {
    let n = 1 << 20;
    let mut bm = Bitmap::new(n);
    for i in (0..n).step_by(37) {
        bm.set(i);
    }
    c.bench_function("bitmap_iter_ones_1m_sparse", |b| {
        b.iter(|| bm.iter_ones().sum::<usize>());
    });
    c.bench_function("bitmap_count_union_1m", |b| {
        let other = bm.clone();
        let mut acc = Bitmap::new(n);
        b.iter(|| {
            acc.union_with(&other);
            acc.count_ones()
        });
    });
}

criterion_group!(
    benches,
    bench_kronecker,
    bench_csr_build,
    bench_hub_selection,
    bench_bitmap
);
criterion_main!(benches);
