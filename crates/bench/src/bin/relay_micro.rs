//! Regenerates the §4.4 micro-benchmark: sending large messages directly
//! vs through a relay node. The paper found "no bandwidth difference
//! between the two settings ... as both achieve an average 1.2 GB/s per
//! node", because the intra-super-node stage-2 hop rides a network four
//! times faster than the over-subscribed central network.

use sw_bench::print_table;
use sw_net::{classify, CostModel, NetworkConfig, PathClass};

fn main() {
    let cfg = NetworkConfig::taihulight(1024);
    let model = CostModel::new(cfg);

    println!("§4.4 micro-benchmark: relay vs direct large-message bandwidth\n");
    let mut rows = Vec::new();
    for (label, bytes) in [("64 KiB", 64u64 << 10), ("1 MiB", 1 << 20), ("16 MiB", 16 << 20)] {
        // Direct: one inter-super-node transfer.
        let direct_ns = model.message_ns(bytes, PathClass::InterSupernode.hops());
        // Relay: inter-super-node to the relay + intra-super-node delivery.
        // The two stages pipeline; the paper observed the relay hop hidden
        // behind the 4x-slower central stage, so the added cost is only the
        // intra-node hop's latency and its (4x faster, hence hidden) data
        // time. Model both stages and take the slower plus one hop latency.
        let stage1 = model.message_ns(bytes, PathClass::InterSupernode.hops());
        let stage2 = model.message_ns(bytes, PathClass::IntraSupernode.hops());
        let relay_ns = stage1.max(stage2) + cfg.hop_latency_ns;
        let d_bw = bytes as f64 / direct_ns;
        let r_bw = bytes as f64 / relay_ns;
        rows.push(vec![
            label.to_string(),
            format!("{d_bw:.3}"),
            format!("{r_bw:.3}"),
            format!("{:.1}%", 100.0 * (d_bw - r_bw) / d_bw),
        ]);
    }
    print_table(
        &["message", "direct (GB/s)", "via relay (GB/s)", "penalty"],
        &rows,
    );
    let c = classify(&cfg, 0, 999);
    println!();
    println!(
        "path 0→999 classified {c:?}; per-node sustained bandwidth target: {:.1} GB/s",
        cfg.effective_node_gbps
    );
    println!("Paper: no measurable bandwidth difference for big messages (both ~1.2 GB/s).");
}
