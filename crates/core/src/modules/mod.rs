//! The Figure 1 processing modules.
//!
//! The BFS body is six modules — Forward Generator / Relay / Handler and
//! Backward Generator / Relay / Handler. Generators and handlers live here
//! as pure functions over [`RankState`](crate::rank::RankState) plus
//! outboxes; the relay modules are transport-level and live in
//! [`crate::exchange`]. Handlers are *dispose* modules (no output data);
//! everything else is a *reaction* module (produces records to send),
//! which on the real machine runs on the contention-free shuffle engine.

mod backward_generator;
mod backward_handler;
mod forward_generator;
mod forward_handler;
pub mod reference;

pub use backward_generator::backward_generator;
pub use backward_handler::backward_handler;
pub use forward_generator::forward_generator;
pub use forward_handler::forward_handler;

use crate::messages::EdgeRec;

/// Record buffer a reaction module fills, tagged per destination rank.
///
/// Storage is **flat**: two parallel vectors in push order (records and
/// destination tags) instead of one `Vec` per destination. A push is a
/// single append with no per-destination growth, the buffers recycle
/// through [`ExchangeArena`](crate::arena::ExchangeArena) with their
/// capacity intact, and the exchange turns the flat stream into
/// per-destination batches with one counting-sort pass.
#[derive(Clone, Debug, Default)]
pub struct Outboxes {
    ranks: usize,
    recs: Vec<EdgeRec>,
    dests: Vec<u32>,
    /// Record capacity at checkout time; the arena compares against it
    /// on return to detect growth (= heap work) during generation.
    lent_cap: usize,
}

impl Outboxes {
    /// Empty outboxes for `ranks` destinations.
    pub fn new(ranks: usize) -> Self {
        Self {
            ranks,
            recs: Vec::new(),
            dests: Vec::new(),
            lent_cap: 0,
        }
    }

    /// Rebuilds outboxes on top of recycled buffers (cleared, capacity
    /// kept). Used by the exchange arena's buffer pool.
    pub(crate) fn from_pooled(ranks: usize, mut recs: Vec<EdgeRec>, mut dests: Vec<u32>) -> Self {
        recs.clear();
        dests.clear();
        let lent_cap = recs.capacity();
        Self {
            ranks,
            recs,
            dests,
            lent_cap,
        }
    }

    /// Capacity the buffers had when checked out of the arena pool.
    pub(crate) fn lent_capacity(&self) -> usize {
        self.lent_cap
    }

    /// Queues a record for `dest`.
    #[inline]
    pub fn push(&mut self, dest: u32, rec: EdgeRec) {
        debug_assert!((dest as usize) < self.ranks, "destination out of range");
        self.recs.push(rec);
        self.dests.push(dest);
    }

    /// Number of destination slots.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Records queued for `dest`, in push order. O(total records) — a
    /// diagnostic/test accessor, not a hot-path API.
    pub fn for_rank(&self, dest: u32) -> Vec<EdgeRec> {
        self.recs
            .iter()
            .zip(&self.dests)
            .filter(|&(_, &d)| d == dest)
            .map(|(&r, _)| r)
            .collect()
    }

    /// Total queued records.
    pub fn total_records(&self) -> u64 {
        self.recs.len() as u64
    }

    /// Forgets all queued records, keeping the buffers' capacity.
    pub fn clear(&mut self) {
        self.recs.clear();
        self.dests.clear();
    }

    /// The flat (records, destination tags) streams, in push order.
    pub fn parts(&self) -> (&[EdgeRec], &[u32]) {
        (&self.recs, &self.dests)
    }

    /// Consumes into the flat (records, destination tags) buffers.
    pub(crate) fn into_parts(self) -> (Vec<EdgeRec>, Vec<u32>) {
        (self.recs, self.dests)
    }

    /// Buckets the flat stream into per-destination vectors and clears
    /// the flat buffers, keeping their capacity for the next level. The
    /// per-destination allocation is inherent for callers that hand each
    /// box to a different owner, e.g. the channel transport.
    pub fn drain_into_boxes(&mut self) -> Vec<Vec<EdgeRec>> {
        let mut counts = vec![0usize; self.ranks];
        for &d in &self.dests {
            counts[d as usize] += 1;
        }
        let mut boxes: Vec<Vec<EdgeRec>> =
            counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (&r, &d) in self.recs.iter().zip(&self.dests) {
            boxes[d as usize].push(r);
        }
        self.clear();
        boxes
    }

    /// Consumes into per-destination vectors (buckets the flat stream;
    /// allocates).
    pub fn into_inner(mut self) -> Vec<Vec<EdgeRec>> {
        self.drain_into_boxes()
    }
}

/// What a module did — the per-module slice of
/// [`LevelStats`](crate::result::LevelStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModuleStats {
    /// Adjacency entries scanned.
    pub edges_scanned: u64,
    /// Claims applied without leaving the rank.
    pub local_claims: u64,
    /// Records suppressed by the replicated hub bitmaps.
    pub hub_skips: u64,
    /// Records queued for other ranks.
    pub records_out: u64,
    /// Frontier/visited words examined by word-parallel sweeps.
    pub words_scanned: u64,
    /// Of those, words dismissed with a single all-zero compare.
    pub words_skipped: u64,
    /// Bytes pulled through byte-coded row decoders (chunk headers
    /// included); early exits pay only for the prefix they read.
    pub bytes_decoded: u64,
}

impl ModuleStats {
    /// Accumulates another module's counters.
    pub fn absorb(&mut self, other: ModuleStats) {
        self.edges_scanned += other.edges_scanned;
        self.local_claims += other.local_claims;
        self.hub_skips += other.hub_skips;
        self.records_out += other.records_out;
        self.words_scanned += other.words_scanned;
        self.words_skipped += other.words_skipped;
        self.bytes_decoded += other.bytes_decoded;
    }
}
