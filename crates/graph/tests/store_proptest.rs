//! Property battery for the partition store format: whatever the
//! partition split, an encoded image must round-trip bit-exactly into
//! views; any single flipped byte must be refused at open (checksum,
//! magic, or structural check — never a silently different graph); and
//! a future format version must be refused as unsupported, not
//! misparsed.

use proptest::prelude::*;
use sw_graph::compressed::CompressedCsr;
use sw_graph::store::format::{self, StoreHeader};
use sw_graph::store::{GraphStore, PartitionMeta};
use sw_graph::{generate_kronecker, Csr, KroneckerConfig, Partition1D};

fn rank_image(seed: u64, scale: u32, ranks: u32, rank: u32, hub_min: u64) -> (Csr, Option<CompressedCsr>, Vec<u8>) {
    let el = generate_kronecker(&KroneckerConfig::graph500(scale, seed));
    let part = Partition1D::new(el.num_vertices, ranks);
    let (lo, hi) = part.range(rank);
    let csr = Csr::from_edge_list_rows(&el, lo, hi - lo);
    let cmp = (hub_min > 0).then(|| CompressedCsr::from_csr(&csr, hub_min));
    let meta = PartitionMeta {
        rank,
        num_ranks: ranks,
        input_edges: el.len() as u64,
        degree_ordered: false,
        hub_min_degree: hub_min,
    };
    let image = GraphStore::encode(&csr, cmp.as_ref(), &meta);
    (csr, cmp, image)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round-trip under every split boundary: each rank of each ranks
    /// count reopens to views content-equal to what was encoded —
    /// including the empty-partition and no-sidecar edges.
    #[test]
    fn round_trips_under_every_split(
        seed in 0u64..u64::MAX,
        scale in 7u32..10,
        ranks in 1u32..9,
        hub_min in 0u64..24,
    ) {
        for rank in 0..ranks {
            let (csr, cmp, image) = rank_image(seed, scale, ranks, rank, hub_min);
            let store = GraphStore::from_bytes(image).unwrap();
            prop_assert_eq!(store.header().rank, rank);
            prop_assert_eq!(store.header().num_ranks, ranks);
            prop_assert_eq!(&store.csr(), &csr);
            prop_assert_eq!(&store.compressed(), &cmp);
        }
    }

    /// Single-byte corruption anywhere in the image is refused: either
    /// a checksum mismatch (payload bytes), bad magic / unsupported
    /// version, or a structural error (header and table bytes). The
    /// rare survivable flips are ones that keep the file self-
    /// consistent AND views identical — assert exactly that.
    #[test]
    fn flipped_byte_is_refused_or_harmless(
        seed in 0u64..u64::MAX,
        flip_bit in 0u32..8,
        pos_seed in 0u64..u64::MAX,
    ) {
        let (csr, cmp, image) = rank_image(seed, 8, 3, 1, 4);
        let mut corrupt = image.clone();
        let pos = (pos_seed % image.len() as u64) as usize;
        corrupt[pos] ^= 1 << flip_bit;
        match GraphStore::from_bytes(corrupt) {
            Err(_) => {} // refused: the common, required outcome
            Ok(store) => {
                // A flip inside alignment padding parses — but then the
                // graph must be bit-identical to the original.
                prop_assert_eq!(&store.csr(), &csr);
                prop_assert_eq!(&store.compressed(), &cmp);
            }
        }
    }

    /// A bumped format version is refused as `Unsupported` before any
    /// section is interpreted.
    #[test]
    fn version_bump_refused(seed in 0u64..u64::MAX, version in 2u32..1000) {
        let (_, _, mut image) = rank_image(seed, 7, 2, 0, 0);
        image[8..12].copy_from_slice(&version.to_le_bytes());
        let err = GraphStore::from_bytes(image).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    }

    /// Every truncated prefix of a valid image is refused.
    #[test]
    fn torn_prefix_refused(seed in 0u64..u64::MAX, cut_seed in 0u64..u64::MAX) {
        let (_, _, image) = rank_image(seed, 7, 2, 1, 4);
        let cut = (cut_seed % image.len() as u64) as usize;
        prop_assert!(GraphStore::from_bytes(image[..cut].to_vec()).is_err());
    }

    /// Header fields survive the trip exactly (the manifest-level
    /// metadata a restart depends on).
    #[test]
    fn header_metadata_round_trips(seed in 0u64..u64::MAX, ranks in 1u32..5) {
        let (csr, _, image) = rank_image(seed, 7, ranks, ranks - 1, 6);
        let store = GraphStore::from_bytes(image).unwrap();
        let h: &StoreHeader = store.header();
        prop_assert_eq!(h.version, format::VERSION);
        prop_assert_eq!(h.num_vertices, csr.num_vertices());
        prop_assert_eq!(h.row_base, csr.row_base());
        prop_assert_eq!(h.rows, csr.num_rows());
        prop_assert_eq!(h.hub_min_degree, 6);
        prop_assert!(h.has_compressed());
        prop_assert!(!h.degree_ordered());
    }
}
