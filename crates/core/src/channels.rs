//! A true multi-threaded rank runtime over crossbeam channels.
//!
//! [`crate::threaded::ThreadedCluster`] executes ranks as data (parallel
//! phases over a rank vector) — ideal for determinism and statistics.
//! [`ChannelCluster`] instead runs **one OS thread per rank**, with all
//! communication over MPI-like point-to-point channels: every rank sends
//! exactly one `Records` message to every peer per phase (empty ones are
//! the paper's termination indicators), statistics travel as broadcast
//! packets, and the direction policy is evaluated redundantly on every
//! rank from identical global sums — no coordinator, exactly like the
//! real SPMD program.
//!
//! The two backends must produce identical parent maps; the test suite
//! holds them to that.
//!
//! Error discipline: every send/recv failure — organic or injected by an
//! armed [`FaultPlan`] — surfaces as a structured
//! [`ExchangeError`], never a panic in a rank thread. A failing rank
//! broadcasts an `Abort` packet to every peer before returning, so no
//! peer is left blocking on a receive that will never complete (the
//! sender mesh outlives the thread scope, so channels do not close on
//! their own).

use crate::config::BfsConfig;
use crate::error::{ExchangeError, ExecError};
use crate::exchange::{msgs_for, Codec, ExchangeStats, MSG_HEADER_BYTES};
use crate::faults::{FaultPlan, FaultSession, MsgDesc, RetryPolicy};
use crate::hubs::HubState;
use crate::instrument as ins;
use crate::messages::EdgeRec;
use crate::modules::{
    backward_generator, backward_handler, forward_generator, forward_handler, Outboxes,
};
use crate::policy::{Direction, PolicyInputs, TraversalPolicy};
use crate::rank::RankState;
use crate::result::BfsOutput;
use crate::NO_PARENT;
use crossbeam::channel::{unbounded, Receiver, Sender};
use sw_graph::hub::HubSet;
use sw_graph::{Bitmap, EdgeList, Partition1D, Vid};
use sw_net::GroupLayout;
use sw_trace::{CounterSet, Tracer};

/// Wire packets between rank threads. Every packet carries the sender's
/// global phase sequence number: ranks advance through communication
/// phases in lockstep logically, but threads run ahead physically, so a
/// receiver must be able to stash packets of future phases (the classic
/// MPI tag/epoch discipline).
enum Payload {
    /// One phase's records from a peer (empty = termination indicator).
    Records(Vec<EdgeRec>),
    /// A peer's per-level statistic triple `(n_f, m_f, m_u)`.
    Stats(u64, u64, u64),
    /// A peer's hub contribution (curr words, visited words).
    Hubs(Vec<u64>, Vec<u64>),
    /// The sending rank failed and is shutting the job down; receivers
    /// stop waiting and return [`ExchangeError::Aborted`] instead of
    /// deadlocking on packets that will never arrive.
    Abort(u32),
}

struct Packet {
    seq: u64,
    payload: Payload,
}

/// Receiver with an out-of-phase stash.
struct Mailbox {
    rx: Receiver<Packet>,
    pending: Vec<Packet>,
}

impl Mailbox {
    fn new(rx: Receiver<Packet>) -> Self {
        Self {
            rx,
            pending: Vec::new(),
        }
    }

    /// Receives exactly `count` packets of phase `seq`, stashing any
    /// future-phase packets that arrive in between. An `Abort` packet
    /// short-circuits regardless of its phase; a closed channel maps to
    /// a structured error rather than a panic.
    fn recv_phase(&mut self, seq: u64, count: usize) -> Result<Vec<Payload>, ExchangeError> {
        let mut got = Vec::with_capacity(count);
        // Drain matching stashed packets first.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].seq == seq {
                got.push(self.pending.swap_remove(i).payload);
            } else {
                i += 1;
            }
        }
        while got.len() < count {
            let pkt = self.rx.recv().map_err(|_| ExchangeError::Protocol {
                phase: seq,
                detail: "receive channel closed mid-phase",
            })?;
            if let Payload::Abort(by) = pkt.payload {
                return Err(ExchangeError::Aborted { by });
            }
            debug_assert!(pkt.seq >= seq, "stale packet from phase {}", pkt.seq);
            if pkt.seq == seq {
                got.push(pkt.payload);
            } else {
                self.pending.push(pkt);
            }
        }
        Ok(got)
    }
}

/// Sends one packet, mapping a hung-up peer to a structured error.
fn send_to(senders: &[Sender<Packet>], d: usize, pkt: Packet) -> Result<(), ExchangeError> {
    senders[d]
        .send(pkt)
        .map_err(|_| ExchangeError::PeerDisconnected { rank: d as u32 })
}

/// Tells every peer this rank is going down. Best-effort: a peer that
/// already vanished cannot be aborted twice.
fn broadcast_abort(senders: &[Sender<Packet>], me: usize) {
    for (d, tx) in senders.iter().enumerate() {
        if d != me {
            let _ = tx.send(Packet {
                seq: u64::MAX,
                payload: Payload::Abort(me as u32),
            });
        }
    }
}

/// A cluster whose ranks are OS threads communicating over channels.
pub struct ChannelCluster {
    cfg: BfsConfig,
    part: Partition1D,
    ranks: Vec<RankState>,
    hub_set: HubSet,
    td_limit: u32,
    fault_plan: Option<FaultPlan>,
    /// Canonical counter set of the most recent [`Self::run`]: each rank
    /// thread accumulates its own [`CounterSet`] and the sets merge here
    /// through the same per-key rule the threaded backend uses — one
    /// merge path, identical counter coverage on identical traffic.
    metrics: CounterSet,
    /// Armed span recorder (one lane per rank, `for_ranks` convention).
    tracer: Option<Tracer>,
}

impl ChannelCluster {
    /// Builds per-rank state (same construction as the phase backend).
    pub fn new(el: &EdgeList, num_ranks: u32, cfg: BfsConfig) -> Result<Self, ExecError> {
        if num_ranks == 0 {
            return Err(ExecError::BadSetup("zero ranks".into()));
        }
        cfg.validate().map_err(ExecError::BadSetup)?;
        if el.num_vertices < num_ranks as u64 {
            return Err(ExecError::BadSetup("more ranks than vertices".into()));
        }
        let part = Partition1D::new(el.num_vertices, num_ranks);
        let ranks: Vec<RankState> = (0..num_ranks)
            .map(|r| RankState::build(r, part, el))
            .collect();
        let k = cfg.bottom_up_hubs;
        let mut nominations: Vec<(Vid, u64)> = Vec::new();
        for r in &ranks {
            let mut d = r.owned_degrees();
            d.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            d.truncate(k);
            nominations.extend(d);
        }
        let hub_set = HubSet::from_degrees(nominations, k);
        let td_limit = cfg.top_down_hubs.min(hub_set.len()) as u32;
        Ok(Self {
            cfg,
            part,
            ranks,
            hub_set,
            td_limit,
            fault_plan: None,
            metrics: CounterSet::new(),
            tracer: None,
        })
    }

    /// The canonical counter set of the most recent [`Self::run`].
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Fault-layer telemetry of the most recent [`Self::run`]:
    /// `(re-sends, faults injected, levels delivered degraded)` — a
    /// view over [`Self::metrics`], same keys as the threaded backend.
    pub fn fault_counters(&self) -> (u64, u64, u64) {
        (
            self.metrics.get(ins::FAULTS_RETRIES),
            self.metrics.get(ins::FAULTS_INJECTED),
            self.metrics.get(ins::FAULTS_DEGRADED_LEVELS),
        )
    }

    /// Arms (or disarms with `None`) a span tracer; rank `r` records
    /// onto lane `r`.
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.tracer = tracer;
    }

    /// Builder form of [`Self::set_tracer`].
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.set_tracer(Some(tracer));
        self
    }

    /// Arms (or disarms with `None`) a deterministic fault plan. Each
    /// rank thread replays the same schedule against its own outgoing
    /// traffic, so a given `(plan, root)` pair always fails — or
    /// survives — identically.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// Builder-style variant of [`Self::set_fault_plan`].
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(Some(plan));
        self
    }

    /// Runs one BFS from `root` with every rank on its own thread.
    pub fn run(&mut self, root: Vid) -> Result<BfsOutput, ExecError> {
        if root >= self.part.num_vertices() {
            return Err(ExecError::BadRoot {
                root,
                reason: "outside the vertex id space",
            });
        }
        let p = self.part.num_ranks() as usize;
        self.metrics.clear();

        // Channel mesh: chans[d] receives what anyone sends to rank d.
        let mut senders: Vec<Sender<Packet>> = Vec::with_capacity(p);
        let mut receivers: Vec<Option<Receiver<Packet>>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }

        // Move rank states into the threads; get them back when done.
        let states: Vec<RankState> = std::mem::take(&mut self.ranks);
        let cfg = self.cfg;
        let hub_set = &self.hub_set;
        let td_limit = self.td_limit;
        let senders_ref = &senders;
        let plan_ref = self.fault_plan.as_ref();
        let tracer_ref = self.tracer.as_ref();

        type RankResult = (
            RankState,
            CounterSet,
            Result<Vec<crate::result::LevelStats>, ExecError>,
        );
        let results: Vec<RankResult> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (r, mut st) in states.into_iter().enumerate() {
                let rx = receivers[r].take().expect("receiver taken once");
                handles.push(scope.spawn(move || {
                    let mut metrics = CounterSet::new();
                    let stats = rank_main(
                        &mut st,
                        Mailbox::new(rx),
                        senders_ref,
                        cfg,
                        hub_set,
                        td_limit,
                        root,
                        plan_ref,
                        &mut metrics,
                        tracer_ref,
                    );
                    (st, metrics, stats)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        });

        // Reassemble state unconditionally — even a failed run must hand
        // the rank states back so the cluster stays reusable — then pick
        // the most meaningful error: the rank that hit the root cause,
        // not the peers that merely observed its abort.
        let mut parents = vec![NO_PARENT; self.part.num_vertices() as usize];
        let mut states = Vec::with_capacity(p);
        let mut levels = Vec::new();
        let mut root_cause: Option<ExecError> = None;
        let mut any_err: Option<ExecError> = None;
        for (st, rank_metrics, stats) in results {
            let (start, _) = self.part.range(st.rank);
            parents[start as usize..start as usize + st.owned()].copy_from_slice(&st.parent);
            // The one merge path: per-key rule (max_* by maximum, the
            // rest by sum), identical to the threaded backend's.
            self.metrics.merge(&rank_metrics);
            match stats {
                Ok(stats) => {
                    if st.rank == 0 {
                        // Every rank derives identical global stats; rank
                        // 0's copy is the canonical record.
                        levels = stats;
                    }
                }
                Err(e) => {
                    let secondary = matches!(
                        e,
                        ExecError::Exchange(ExchangeError::Aborted { .. })
                    );
                    if !secondary && root_cause.is_none() {
                        root_cause = Some(e);
                    } else if any_err.is_none() {
                        any_err = Some(e);
                    }
                }
            }
            states.push(st);
        }
        states.sort_by_key(|s| s.rank);
        self.ranks = states;
        if let Some(e) = root_cause.or(any_err) {
            return Err(e);
        }
        Ok(BfsOutput {
            root,
            parents,
            levels,
        })
    }
}

/// The SPMD entry every rank thread executes. On failure the rank
/// broadcasts an `Abort` so no peer blocks forever; a rank that failed
/// *because* of an abort does not re-broadcast (one storm is enough).
#[allow(clippy::too_many_arguments)]
fn rank_main(
    st: &mut RankState,
    mbox: Mailbox,
    senders: &[Sender<Packet>],
    cfg: BfsConfig,
    hub_set: &HubSet,
    td_limit: u32,
    root: Vid,
    fault_plan: Option<&FaultPlan>,
    metrics: &mut CounterSet,
    tracer: Option<&Tracer>,
) -> Result<Vec<crate::result::LevelStats>, ExecError> {
    let me = st.rank as usize;
    match rank_body(st, mbox, senders, cfg, hub_set, td_limit, root, fault_plan, metrics, tracer) {
        Ok(levels) => Ok(levels),
        Err(e) => {
            if !matches!(e, ExchangeError::Aborted { .. }) {
                broadcast_abort(senders, me);
            }
            Err(ExecError::Exchange(e))
        }
    }
}

/// The SPMD body. Returns the per-level global statistics this rank
/// derived (identical on every rank).
#[allow(clippy::too_many_arguments)]
fn rank_body(
    st: &mut RankState,
    mut mbox: Mailbox,
    senders: &[Sender<Packet>],
    cfg: BfsConfig,
    hub_set: &HubSet,
    td_limit: u32,
    root: Vid,
    fault_plan: Option<&FaultPlan>,
    metrics: &mut CounterSet,
    tracer: Option<&Tracer>,
) -> Result<Vec<crate::result::LevelStats>, ExchangeError> {
    let p = senders.len();
    let me = st.rank as usize;
    // Same grouping the threaded backend's wire accounting uses, so the
    // inter-group byte classification agrees rank for rank.
    let layout = GroupLayout::new(p as u32, cfg.group_size.min(p as u32));
    // Every rank replays the plan independently; decisions are pure
    // functions of (seed, phase, src, dst, attempt), so the per-rank
    // sessions agree without any cross-thread coordination.
    let mut session: Option<FaultSession> = fault_plan.map(|pl| FaultSession::new(pl.clone()));
    let retry = cfg.retry;
    let mut hubs = HubState::with_td_limit(hub_set.clone(), td_limit);
    let mut policy = TraversalPolicy::new(cfg.alpha, cfg.beta);
    // Global phase counter; identical progression on every rank because
    // the policy decisions are computed from identical global sums.
    let mut seq = 0u64;

    // Reset and seed.
    st.parent.fill(NO_PARENT);
    st.curr.clear();
    st.next.clear();
    if st.owns(root) {
        let rl = st.local(root);
        st.claim(rl, root);
    }
    exchange_hubs(st, &mut hubs, &mut mbox, senders, me, &mut seq)?;
    st.advance_level();

    let mut levels: Vec<crate::result::LevelStats> = Vec::new();
    // Flat record buffers reused across every level of the run; each
    // exchange drains them but keeps the capacity.
    let mut out = Outboxes::new(p);
    let mut replies = Outboxes::new(p);
    loop {
        // Global statistics by symmetric broadcast.
        let (n_f, m_f, m_u) = allreduce_stats(st, &mut mbox, senders, me, &mut seq)?;
        if let Some(last) = levels.last_mut() {
            // Everything in this frontier settled during the prior level.
            last.settled = n_f;
        }
        if n_f == 0 {
            break;
        }
        let dir = if cfg.force_top_down {
            Direction::TopDown
        } else {
            policy.decide(&PolicyInputs {
                frontier_vertices: n_f,
                frontier_edges: m_f,
                unvisited_edges: m_u,
                total_vertices: st.part.num_vertices(),
            })
        };

        levels.push(crate::result::LevelStats {
            level: levels.len() as u32,
            direction: dir,
            frontier_vertices: n_f,
            frontier_edges: m_f,
            unvisited_edges: m_u,
            ..Default::default()
        });
        let lvl = (levels.len() - 1) as u32;
        match dir {
            Direction::TopDown => {
                let t0 = ins::span_begin(tracer);
                let g = forward_generator(st, &hubs, &mut out);
                ins::span_end(tracer, me, ins::SPAN_GEN, ins::CAT_COMPUTE, lvl, t0, g.records_out);
                let inbox = exchange_phase(
                    &mut out, &mut mbox, senders, me, &mut seq, &mut session, &retry, &cfg,
                    &layout, metrics, tracer, lvl,
                )?;
                let t0 = ins::span_begin(tracer);
                forward_handler(st, &inbox);
                ins::span_end(
                    tracer,
                    me,
                    ins::SPAN_HANDLE,
                    ins::CAT_COMPUTE,
                    lvl,
                    t0,
                    inbox.len() as u64,
                );
            }
            Direction::BottomUp => {
                let t0 = ins::span_begin(tracer);
                let g = backward_generator(st, &hubs, &mut out);
                ins::span_end(tracer, me, ins::SPAN_GEN, ins::CAT_COMPUTE, lvl, t0, g.records_out);
                let inbox = exchange_phase(
                    &mut out, &mut mbox, senders, me, &mut seq, &mut session, &retry, &cfg,
                    &layout, metrics, tracer, lvl,
                )?;
                let t0 = ins::span_begin(tracer);
                backward_handler(st, &inbox, &mut replies);
                ins::span_end(
                    tracer,
                    me,
                    ins::SPAN_HANDLE,
                    ins::CAT_COMPUTE,
                    lvl,
                    t0,
                    inbox.len() as u64,
                );
                let inbox = exchange_phase(
                    &mut replies,
                    &mut mbox,
                    senders,
                    me,
                    &mut seq,
                    &mut session,
                    &retry,
                    &cfg,
                    &layout,
                    metrics,
                    tracer,
                    lvl,
                )?;
                let t0 = ins::span_begin(tracer);
                forward_handler(st, &inbox);
                ins::span_end(
                    tracer,
                    me,
                    ins::SPAN_HANDLE,
                    ins::CAT_COMPUTE,
                    lvl,
                    t0,
                    inbox.len() as u64,
                );
            }
        }
        exchange_hubs(st, &mut hubs, &mut mbox, senders, me, &mut seq)?;
        st.advance_level();
    }
    Ok(levels)
}

/// One communication phase: send exactly one `Records` packet to every
/// peer (the termination indicator when empty), then assemble the inbox
/// in sender-rank order for determinism.
///
/// With a fault session armed, the deterministic schedule is replayed
/// over this rank's outgoing messages *before* anything touches the
/// wire: the channel transport delivers at most once, so retries are
/// simulated against the plan and only a clean phase actually sends.
#[allow(clippy::too_many_arguments)]
fn exchange_phase(
    out: &mut Outboxes,
    mbox: &mut Mailbox,
    senders: &[Sender<Packet>],
    me: usize,
    seq: &mut u64,
    session: &mut Option<FaultSession>,
    retry: &RetryPolicy,
    cfg: &BfsConfig,
    layout: &GroupLayout,
    metrics: &mut CounterSet,
    tracer: Option<&Tracer>,
    level: u32,
) -> Result<Vec<EdgeRec>, ExchangeError> {
    let p = senders.len();
    let this = *seq;
    *seq += 1;
    let boxes = out.drain_into_boxes();
    let mut retries = 0u64;
    let mut faults = 0u64;
    let sim_result = if let Some(fs) = session.as_mut() {
        let msgs: Vec<MsgDesc> = boxes
            .iter()
            .enumerate()
            .filter(|(d, _)| *d != me)
            .map(|(d, recs)| MsgDesc {
                src: me as u32,
                dst: d as u32,
                records: recs.len() as u64,
                relay: None,
            })
            .collect();
        simulate_sends(fs, &msgs, retry, cfg.compress, &mut retries, &mut faults)
    } else {
        Ok(())
    };
    // This rank's own wire accounting for the phase: exactly the arena
    // backend's per-destination arithmetic, so the `set_max` merge of
    // these per-rank totals reproduces the threaded backend's
    // max-over-ranks. Fault telemetry is absorbed even when the phase
    // dies — a post-mortem counter set must show what the fault layer
    // did.
    let mut xs = ExchangeStats {
        retries,
        faults_injected: faults,
        ..Default::default()
    };
    if let Err(e) = sim_result {
        ins::absorb_exchange(metrics, &xs);
        return Err(e);
    }
    let eff_compressed =
        cfg.compress && !session.as_ref().is_some_and(|s| s.compression_disabled());
    let codec = if eff_compressed {
        Codec::Compressed
    } else {
        Codec::Fixed(cfg.edge_msg_bytes)
    };
    for (d, recs) in boxes.iter().enumerate() {
        if d == me {
            continue;
        }
        let payload = codec.payload_bytes(recs);
        let msgs = msgs_for(payload);
        let bytes = payload + msgs * MSG_HEADER_BYTES;
        xs.messages += msgs;
        xs.bytes += bytes;
        xs.record_hops += recs.len() as u64;
        if layout.group_of(me as u32) != layout.group_of(d as u32) {
            xs.inter_group_bytes += bytes;
        }
    }
    xs.max_send_msgs_per_rank = xs.messages;
    xs.max_send_bytes_per_rank = xs.bytes;
    ins::absorb_exchange(metrics, &xs);
    if retries > 0 {
        ins::mark(tracer, me, ins::INSTANT_RETRY, ins::CAT_FAULT, level, retries);
    }
    if faults > 0 {
        ins::mark(tracer, me, ins::INSTANT_FAULT, ins::CAT_FAULT, level, faults);
    }
    for (d, recs) in boxes.into_iter().enumerate() {
        if d != me {
            send_to(
                senders,
                d,
                Packet {
                    seq: this,
                    payload: Payload::Records(recs),
                },
            )?;
        }
    }
    let t0 = ins::span_begin(tracer);
    let mut inbox: Vec<EdgeRec> = Vec::new();
    for pl in mbox.recv_phase(this, p - 1)? {
        match pl {
            Payload::Records(recs) => inbox.extend(recs),
            _ => {
                return Err(ExchangeError::Protocol {
                    phase: this,
                    detail: "expected records",
                })
            }
        }
    }
    inbox.sort_unstable();
    ins::span_end(
        tracer,
        me,
        ins::SPAN_DELIVER,
        ins::CAT_NET,
        level,
        t0,
        inbox.len() as u64,
    );
    Ok(inbox)
}

/// Replays the fault schedule for one record phase, accumulating the
/// retry/fault tallies into the caller's counters (kept even when the
/// phase ultimately errors). The only in-phase degradation available on
/// this transport is disabling compression (the mesh is already
/// point-to-point, so there is no relay to fall back from); anything
/// else exhausts the retry budget into an error.
fn simulate_sends(
    session: &mut FaultSession,
    msgs: &[MsgDesc],
    retry: &RetryPolicy,
    compressed: bool,
    retries: &mut u64,
    faults: &mut u64,
) -> Result<(), ExchangeError> {
    loop {
        let eff_compressed = compressed && !session.compression_disabled();
        let report = session.deliver_phase(msgs, retry, eff_compressed);
        *retries += report.retries;
        *faults += report.faults_injected;
        match report.error {
            None => {
                session.end_phase();
                return Ok(());
            }
            Some(err) => {
                if retry.compression_fallback && eff_compressed && report.truncations > 0 {
                    session.degrade_compression();
                    continue;
                }
                session.end_phase();
                return Err(err);
            }
        }
    }
}

/// Broadcast local stats, sum all ranks' (deterministic policy input).
fn allreduce_stats(
    st: &RankState,
    mbox: &mut Mailbox,
    senders: &[Sender<Packet>],
    me: usize,
    seq: &mut u64,
) -> Result<(u64, u64, u64), ExchangeError> {
    let this = *seq;
    *seq += 1;
    let local = (
        st.frontier_vertices(),
        st.frontier_edges(),
        st.unvisited_edges(),
    );
    for d in 0..senders.len() {
        if d != me {
            send_to(
                senders,
                d,
                Packet {
                    seq: this,
                    payload: Payload::Stats(local.0, local.1, local.2),
                },
            )?;
        }
    }
    let (mut n_f, mut m_f, mut m_u) = local;
    for pl in mbox.recv_phase(this, senders.len() - 1)? {
        match pl {
            Payload::Stats(a, b, c) => {
                n_f += a;
                m_f += b;
                m_u += c;
            }
            _ => {
                return Err(ExchangeError::Protocol {
                    phase: this,
                    detail: "expected stats",
                })
            }
        }
    }
    Ok((n_f, m_f, m_u))
}

/// Broadcast hub contributions (from `next` + parent state) and merge.
fn exchange_hubs(
    st: &RankState,
    hubs: &mut HubState,
    mbox: &mut Mailbox,
    senders: &[Sender<Packet>],
    me: usize,
    seq: &mut u64,
) -> Result<(), ExchangeError> {
    let this = *seq;
    *seq += 1;
    let nbits = hubs.set.len();
    let mut curr = Bitmap::new(nbits);
    let mut visited = Bitmap::new(nbits);
    for (i, &hv) in hubs.set.hubs().iter().enumerate() {
        if st.owns(hv) {
            let l = st.local(hv);
            if st.next.contains(l) {
                curr.set(i);
            }
            if st.visited(l) {
                visited.set(i);
            }
        }
    }
    for d in 0..senders.len() {
        if d != me {
            send_to(
                senders,
                d,
                Packet {
                    seq: this,
                    payload: Payload::Hubs(
                        curr.as_words().to_vec(),
                        visited.as_words().to_vec(),
                    ),
                },
            )?;
        }
    }
    let mut merged_curr = curr;
    let mut merged_visited = visited;
    for pl in mbox.recv_phase(this, senders.len() - 1)? {
        match pl {
            Payload::Hubs(curr, visited) => {
                merged_curr.union_with(&Bitmap::from_words(nbits, &curr));
                merged_visited.union_with(&Bitmap::from_words(nbits, &visited));
            }
            _ => {
                return Err(ExchangeError::Protocol {
                    phase: this,
                    detail: "expected hub contributions",
                })
            }
        }
    }
    hubs.curr = merged_curr;
    hubs.visited.union_with(&merged_visited);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::ThreadedCluster;
    use sw_graph::{generate_kronecker, KroneckerConfig};

    #[test]
    fn channel_backend_matches_phase_backend() {
        let el = generate_kronecker(&KroneckerConfig::graph500(11, 13));
        let cfg = BfsConfig::threaded_small(4)
            .with_messaging(crate::config::Messaging::Direct);
        let mut phase = ThreadedCluster::new(&el, 6, cfg).unwrap();
        let mut chans = ChannelCluster::new(&el, 6, cfg).unwrap();
        for root in [0u64, 5, 1234] {
            let a = phase.run(root).unwrap();
            let b = chans.run(root).unwrap();
            assert_eq!(a.parents, b.parents, "root {root}");
        }
    }

    #[test]
    fn channel_level_stats_match_phase_backend() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 4));
        let cfg = BfsConfig::threaded_small(2)
            .with_messaging(crate::config::Messaging::Direct);
        let mut phase = ThreadedCluster::new(&el, 4, cfg).unwrap();
        let mut chans = ChannelCluster::new(&el, 4, cfg).unwrap();
        let a = phase.run(2).unwrap();
        let b = chans.run(2).unwrap();
        assert_eq!(a.depth(), b.depth());
        for (x, y) in a.levels.iter().zip(&b.levels) {
            assert_eq!(x.direction, y.direction, "level {}", x.level);
            assert_eq!(x.frontier_vertices, y.frontier_vertices);
            assert_eq!(x.settled, y.settled);
        }
    }

    #[test]
    fn repeat_runs_identical() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 2));
        let mut c = ChannelCluster::new(&el, 4, BfsConfig::threaded_small(2)).unwrap();
        let a = c.run(7).unwrap();
        let b = c.run(7).unwrap();
        assert_eq!(a.parents, b.parents);
    }

    #[test]
    fn single_rank_works() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 1));
        let mut c = ChannelCluster::new(&el, 1, BfsConfig::threaded_small(1)).unwrap();
        let out = c.run(3).unwrap();
        let oracle = crate::baseline::sequential_bfs_levels(&el, 3);
        assert_eq!(out.levels_from_parents(), oracle);
    }

    #[test]
    fn validates_under_graph500_rules() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 8));
        let mut c = ChannelCluster::new(&el, 5, BfsConfig::threaded_small(2)).unwrap();
        let out = c.run(1).unwrap();
        // Levels must equal the oracle.
        let oracle = crate::baseline::sequential_bfs_levels(&el, 1);
        assert_eq!(out.levels_from_parents(), oracle);
    }

    #[test]
    fn bad_inputs_rejected() {
        let el = generate_kronecker(&KroneckerConfig::graph500(8, 1));
        assert!(ChannelCluster::new(&el, 0, BfsConfig::threaded_small(1)).is_err());
        let mut c = ChannelCluster::new(&el, 2, BfsConfig::threaded_small(1)).unwrap();
        assert!(c.run(1 << 40).is_err());
    }

    #[test]
    fn survivable_faults_do_not_change_channel_output() {
        let el = generate_kronecker(&KroneckerConfig::graph500(11, 8));
        let cfg = BfsConfig::threaded_small(2);
        let mut clean = ChannelCluster::new(&el, 4, cfg).unwrap();
        let mut faulty = ChannelCluster::new(&el, 4, cfg)
            .unwrap()
            .with_fault_plan(FaultPlan::lossy(0xC0FF));
        for root in [0u64, 9, 250] {
            let a = clean.run(root).unwrap();
            let b = faulty.run(root).unwrap();
            assert_eq!(a.parents, b.parents, "root {root}");
            assert_eq!(a.levels_from_parents(), b.levels_from_parents());
        }
    }

    #[test]
    fn dead_link_is_a_structured_error_not_a_deadlock() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 4));
        let mut c = ChannelCluster::new(&el, 4, BfsConfig::threaded_small(2))
            .unwrap()
            .with_fault_plan(FaultPlan::quiet(7).with_dead_link(0, 1));
        match c.run(1) {
            Err(ExecError::Exchange(ExchangeError::RetriesExhausted { src, dst, .. })) => {
                assert_eq!((src, dst), (0, 1));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // Every rank thread came home and the cluster is reusable: disarm
        // the plan and the same instance produces oracle-correct output.
        c.set_fault_plan(None);
        let out = c.run(1).unwrap();
        let oracle = crate::baseline::sequential_bfs_levels(&el, 1);
        assert_eq!(out.levels_from_parents(), oracle);
    }
}
