//! Offline shim for the `bytes` 1.x API subset this workspace uses:
//! [`Bytes`] (cheaply cloneable, consuming reads advance a cursor),
//! [`BytesMut`] (growable builder, `freeze` into `Bytes`), and the
//! [`Buf`]/[`BufMut`] traits with the little-endian accessors the wire
//! framing needs.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Remaining (unread) length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the remaining bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Sub-range view sharing the same allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

/// Growable byte builder.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current allocation size.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Drops the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Ensures room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Converts into an immutable [`Bytes`] (consumes the allocation).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Splits off everything written so far into a [`Bytes`], leaving
    /// this builder empty but *not* reusing the allocation (the
    /// returned `Bytes` owns it).
    pub fn split(&mut self) -> Bytes {
        Bytes::from(std::mem::take(&mut self.buf))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", &self.buf)
    }
}

/// Consuming read access.
pub trait Buf {
    /// Unread byte count.
    fn remaining(&self) -> usize;
    /// View of the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(a)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(a)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// Appending write access.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, x: u32) {
        self.put_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, x: u64) {
        self.put_slice(&x.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_read() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64_le(7);
        b.put_u8(0xAB);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes.get_u64_le(), 7);
        assert_eq!(bytes.len(), 1);
        assert_eq!(bytes.get_u8(), 0xAB);
        assert!(bytes.is_empty());
    }

    #[test]
    fn clone_is_cheap_and_independent() {
        let mut b = BytesMut::new();
        b.put_u64_le(1);
        b.put_u64_le(2);
        let a = b.freeze();
        let mut c = a.clone();
        assert_eq!(c.get_u64_le(), 1);
        assert_eq!(a.len(), 16); // original cursor untouched
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn deref_and_to_vec() {
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        let f = b.freeze();
        assert_eq!(f.to_vec(), vec![1, 2, 3]);
        assert_eq!(f.slice(1..3).to_vec(), vec![2, 3]);
    }
}
