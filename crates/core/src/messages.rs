//! Typed wire messages between ranks.
//!
//! Two record kinds flow during a traversal (Algorithm 2):
//!
//! * a **forward** record `(u, v)` — "u, already settled, claims v";
//! * a **backward** record `(u, v)` — "unvisited v asks u's owner whether
//!   u is in the current frontier".
//!
//! Records are fixed-size and batched; [`encode_batch`]/[`decode_batch`]
//! give the byte-level framing the relay stage shuffles (using `bytes` for
//! zero-copy splitting on the receive side).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sw_graph::Vid;

/// One edge record on the wire. Used for both forward claims and backward
/// queries — the surrounding stage determines the meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdgeRec {
    /// Source endpoint (settled vertex for forward, queried for backward).
    pub u: Vid,
    /// Destination endpoint (claimed vertex for forward, asker for
    /// backward).
    pub v: Vid,
}

impl EdgeRec {
    /// Wire bytes per record in the serialized framing.
    pub const WIRE_BYTES: usize = 16;
}

/// Serializes a batch of records (length-prefixed).
pub fn encode_batch(records: &[EdgeRec]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + records.len() * EdgeRec::WIRE_BYTES);
    buf.put_u64_le(records.len() as u64);
    for r in records {
        buf.put_u64_le(r.u);
        buf.put_u64_le(r.v);
    }
    buf.freeze()
}

/// Deserializes a batch produced by [`encode_batch`].
///
/// # Panics
/// Panics on a malformed frame (truncated or over-long).
pub fn decode_batch(mut buf: Bytes) -> Vec<EdgeRec> {
    assert!(buf.len() >= 8, "frame shorter than its header");
    let n = buf.get_u64_le() as usize;
    assert_eq!(
        buf.len(),
        n * EdgeRec::WIRE_BYTES,
        "frame length disagrees with record count"
    );
    (0..n)
        .map(|_| EdgeRec {
            u: buf.get_u64_le(),
            v: buf.get_u64_le(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let recs = vec![
            EdgeRec { u: 0, v: 1 },
            EdgeRec { u: u64::MAX - 1, v: 42 },
        ];
        let bytes = encode_batch(&recs);
        assert_eq!(bytes.len(), 8 + 2 * 16);
        assert_eq!(decode_batch(bytes), recs);
    }

    #[test]
    fn empty_batch() {
        let bytes = encode_batch(&[]);
        assert_eq!(decode_batch(bytes), Vec::new());
    }

    #[test]
    #[should_panic(expected = "disagrees")]
    fn truncated_frame_rejected() {
        let mut b = BytesMut::new();
        b.put_u64_le(5);
        b.put_u64_le(1);
        decode_batch(b.freeze());
    }

    #[test]
    fn ordering_is_by_u_then_v() {
        let a = EdgeRec { u: 1, v: 9 };
        let b = EdgeRec { u: 2, v: 0 };
        assert!(a < b);
    }
}
