//! Regenerates Table 1: the Sunway TaihuLight specification, printed from
//! the simulator's configuration structs (so the table is exactly what the
//! models run with).

use sw_arch::ChipConfig;
use sw_bench::print_table;
use sw_net::NetworkConfig;

fn main() {
    let chip = ChipConfig::sw26010();
    let net = NetworkConfig::full_machine();

    println!("Table 1: Sunway TaihuLight specifications (simulator configuration)\n");
    let rows = vec![
        vec![
            "MPE".into(),
            format!(
                "{:.2} GHz, {} KB L1 D-Cache, {} KB L2",
                chip.clock_hz / 1e9,
                chip.mpe_l1d_bytes / 1024,
                chip.mpe_l2_bytes / 1024
            ),
        ],
        vec![
            "CPE".into(),
            format!(
                "{:.2} GHz, {} KB SPM",
                chip.clock_hz / 1e9,
                chip.spm_bytes / 1024
            ),
        ],
        vec![
            "CG".into(),
            format!("1 MPE + {} CPEs + 1 MC", chip.cpes_per_cluster),
        ],
        vec![
            "Node".into(),
            format!(
                "1 CPU ({} CGs) + 4 x {} GB DDR3 Memory",
                chip.core_groups,
                chip.memory_per_cg_bytes >> 30
            ),
        ],
        vec![
            "Super Node".into(),
            format!(
                "{} Nodes, FDR {} Gbps InfiniBand",
                net.supernode_size,
                (net.nic_gbps * 8.0) as u64
            ),
        ],
        vec!["Cabinet".into(), "4 Super Nodes".into()],
        vec![
            "TaihuLight".into(),
            format!(
                "{} Nodes ({} Super Nodes), 1:{} over-subscribed central switch",
                net.nodes,
                net.num_supernodes(),
                net.oversubscription as u64
            ),
        ],
    ];
    print_table(&["Item", "Specifications"], &rows);

    println!("\nDerived calibration points:");
    println!(
        "  CPE cluster peak DRAM bandwidth : {:.1} GB/s (Fig. 3 plateau)",
        chip.cluster_peak_gbps
    );
    println!(
        "  single MPE bandwidth @256B      : {:.2} GB/s (~10x below cluster)",
        sw_arch::Mpe::new(chip).bandwidth_gbps(256)
    );
    println!(
        "  register link bandwidth         : {:.1} GB/s per CPE pair",
        chip.reg_link_gbps()
    );
    println!(
        "  super-node uplink (oversubbed)  : {:.0} GB/s",
        net.supernode_uplink_gbps()
    );
    println!(
        "  central bisection               : {:.1} TB/s",
        net.central_bisection_gbps() / 1000.0
    );
}
