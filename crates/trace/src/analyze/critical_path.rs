//! Critical-path extraction through the span DAG.
//!
//! The exchange pipeline is barrier-synchronized per level: every rank
//! runs `gen → bucket → deliver → relay → handle` and no rank enters a
//! stage before every rank finished the previous one (the threaded
//! backend joins between phases; the channel backend blocks on
//! receives). Under that model the critical path of a level is the sum
//! over stages of the *slowest lane's* units in that stage, and a
//! lane's slack in a stage is the gap to that slowest lane.
//!
//! Stages absent from a level (e.g. `relay` in a virtual domain, where
//! relay forwarding is deliberately unrecorded to keep Direct/Relay
//! traces identical) contribute nothing. Ties on the slowest lane break
//! toward the lowest lane index, so the extraction is deterministic.

use crate::report::TraceReport;
use crate::tracer::{EventKind, NO_LEVEL};
use std::collections::BTreeMap;

/// Pipeline stages in DAG order.
pub const STAGES: [&str; 5] = ["gen", "bucket", "deliver", "relay", "handle"];

/// The slowest lane of one stage of one level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageCritical {
    /// Stage name (one of [`STAGES`]).
    pub stage: &'static str,
    /// Index into the report's rank-lane list of the slowest lane.
    pub lane: usize,
    /// The slowest lane's units — this stage's critical-path share.
    pub units: u64,
    /// Total slack: Σ over lanes of (critical − lane units).
    pub slack_units: u64,
}

/// One level's walk through the pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelPath {
    /// BFS level (or algorithm round).
    pub level: u32,
    /// Stages with nonzero work, in DAG order.
    pub stages: Vec<StageCritical>,
    /// Σ stage critical units — the level's critical-path length.
    pub units: u64,
}

/// The critical path of a whole trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPathReport {
    /// Rank-lane display names (`run` excluded), in lane order.
    pub lane_names: Vec<String>,
    /// One entry per level, ascending.
    pub levels: Vec<LevelPath>,
    /// Σ level critical units.
    pub total_units: u64,
    /// Σ of every lane's units over all stages/levels (total work).
    pub work_units: u64,
    /// Per-lane slack summed over all stages/levels.
    pub lane_slack: Vec<u64>,
}

impl CriticalPathReport {
    /// Achieved parallelism `1000 × work / critical` (1000 = serial;
    /// ideally ≈ 1000 × ranks). 0 when the critical path is empty.
    pub fn parallelism_permille(&self) -> u64 {
        self.work_units
            .saturating_mul(1000)
            .checked_div(self.total_units)
            .unwrap_or(0)
    }
}

/// Extracts the critical path of `rep` under the barrier-stage model.
pub fn extract(rep: &TraceReport) -> CriticalPathReport {
    let rank_lanes: Vec<usize> = (0..rep.lanes.len())
        .filter(|&i| rep.lanes[i].name != "run")
        .collect();
    let lane_names: Vec<String> = rank_lanes
        .iter()
        .map(|&i| rep.lanes[i].name.clone())
        .collect();
    let nlanes = rank_lanes.len();

    // level → stage → per-lane units.
    let mut acc: BTreeMap<u32, Vec<Vec<u64>>> = BTreeMap::new();
    for (pos, &i) in rank_lanes.iter().enumerate() {
        for ev in &rep.lanes[i].events {
            if ev.kind != EventKind::Span || ev.level == NO_LEVEL {
                continue;
            }
            let Some(stage) = STAGES.iter().position(|&s| s == ev.name) else {
                continue;
            };
            acc.entry(ev.level)
                .or_insert_with(|| vec![vec![0; nlanes]; STAGES.len()])[stage][pos] += ev.dur_ns;
        }
    }

    let mut levels = Vec::new();
    let mut total_units = 0u64;
    let mut work_units = 0u64;
    let mut lane_slack = vec![0u64; nlanes];
    for (level, stages) in acc {
        let mut path = LevelPath {
            level,
            stages: Vec::new(),
            units: 0,
        };
        for (si, per_lane) in stages.iter().enumerate() {
            let crit = per_lane.iter().copied().max().unwrap_or(0);
            if crit == 0 {
                continue;
            }
            let lane = per_lane
                .iter()
                .position(|&u| u == crit)
                .expect("max exists");
            let mut slack = 0u64;
            for (pos, &u) in per_lane.iter().enumerate() {
                lane_slack[pos] += crit - u;
                slack += crit - u;
                work_units += u;
            }
            path.stages.push(StageCritical {
                stage: STAGES[si],
                lane,
                units: crit,
                slack_units: slack,
            });
            path.units += crit;
        }
        total_units += path.units;
        levels.push(path);
    }

    CriticalPathReport {
        lane_names,
        levels,
        total_units,
        work_units,
        lane_slack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{ClockDomain, Tracer};

    #[test]
    fn critical_path_takes_stage_maxima() {
        let t = Tracer::for_ranks(ClockDomain::VirtualWork, 2, 64);
        // Level 0: rank0 gen 10, rank1 gen 30; rank0 handle 5, rank1 handle 5.
        t.end(0, "gen", "compute", 0, 0, 10);
        t.end(1, "gen", "compute", 0, 0, 30);
        t.end(0, "handle", "compute", 0, 0, 5);
        t.end(1, "handle", "compute", 0, 0, 5);
        t.end(t.run_lane(), "level", "run", 0, 0, 99); // run lane ignored
        let cp = extract(&t.report());
        assert_eq!(cp.levels.len(), 1);
        let l = &cp.levels[0];
        assert_eq!(l.units, 35, "max(gen) + max(handle)");
        assert_eq!(l.stages[0].stage, "gen");
        assert_eq!(l.stages[0].lane, 1);
        assert_eq!(l.stages[0].slack_units, 20);
        assert_eq!(l.stages[1].stage, "handle");
        assert_eq!(l.stages[1].lane, 0, "tie breaks to lowest lane");
        assert_eq!(cp.total_units, 35);
        assert_eq!(cp.work_units, 50);
        assert_eq!(cp.lane_slack, vec![20, 0]);
        // 50/35 ≈ 1.428× parallelism.
        assert_eq!(cp.parallelism_permille(), 1428);
    }

    #[test]
    fn absent_stages_are_skipped() {
        let t = Tracer::for_ranks(ClockDomain::VirtualWork, 1, 16);
        t.end(0, "gen", "compute", 0, 0, 4);
        t.end(0, "deliver", "net", 0, 0, 6);
        let cp = extract(&t.report());
        let names: Vec<&str> = cp.levels[0].stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, vec!["gen", "deliver"], "no bucket/relay/handle rows");
        assert_eq!(cp.total_units, 10);
    }

    #[test]
    fn multiple_levels_accumulate() {
        let t = Tracer::for_ranks(ClockDomain::VirtualWork, 2, 64);
        for level in 0..3u32 {
            t.end(0, "gen", "compute", level, 0, 10);
            t.end(1, "gen", "compute", level, 0, 10 + level as u64);
        }
        let cp = extract(&t.report());
        assert_eq!(cp.levels.len(), 3);
        assert_eq!(cp.total_units, 10 + 11 + 12);
        assert_eq!(cp.lane_slack, vec![3, 0], "rank0 trails by 1 then 2");
    }

    #[test]
    fn empty_trace_is_empty_path() {
        let t = Tracer::for_ranks(ClockDomain::VirtualWork, 2, 8);
        let cp = extract(&t.report());
        assert!(cp.levels.is_empty());
        assert_eq!(cp.parallelism_permille(), 0);
    }
}
