//! # sw-arch — SW26010 many-core chip simulator
//!
//! The paper's on-chip technique ("contention-free data shuffling", §4.3)
//! exists because of four hardware constraints of the SW26010 CPE cluster:
//!
//! 1. CPEs talk to each other **only** over an 8×8 register mesh, and only
//!    within a row or a column, with synchronous explicit messaging — so an
//!    arbitrary communication pattern can deadlock.
//! 2. Each CPE has a 64 KB scratch-pad memory (SPM) and no cache — all main
//!    memory traffic is explicit DMA, efficient only in ≥256 B chunks.
//! 3. Main memory atomics are limited to fetch-add and are slow.
//! 4. The MPE is a single-threaded general-purpose core with ~10× less
//!    memory bandwidth than a CPE cluster.
//!
//! This crate simulates exactly those constraints:
//!
//! * [`config`] — the Table 1 machine constants and calibrated bandwidth
//!   parameters.
//! * [`dma`] — the DMA engine timing model that reproduces the Figure 3
//!   (bandwidth vs chunk size) and Figure 5 (bandwidth vs #CPEs) curves.
//! * [`mesh`] — CPE coordinates, register-pipe legality, route planning and
//!   a channel-dependency-graph deadlock detector.
//! * [`spm`] — scratch-pad capacity accounting with overflow errors.
//! * [`mpe`] — the management core's timing model (memory bandwidth,
//!   interrupt latency, flag-polling notification costs).
//! * [`cluster`] — a CPE cluster: 64 CPEs + mesh + DMA + SPM.
//! * [`shuffle`] — the contention-free producer/router/consumer shuffle
//!   engine: functional packet movement with cycle accounting, SPM
//!   feasibility checks, and steady-state throughput estimates.
//!
//! Algorithms that run deadlock-free and SPM-feasible on this simulator do
//! so for the same structural reasons as on the real silicon, and the same
//! sizing arithmetic (16 consumers × 64 KB / 256 B batches ⇒ max ~1024
//! destination buckets, paper §4.3) emerges from the capacity checks.

pub mod cluster;
pub mod collective;
pub mod config;
pub mod cyclesim;
pub mod dma;
pub mod error;
pub mod mesh;
pub mod metrics;
pub mod mpe;
pub mod shuffle;
pub mod spm;
pub mod spm_cache;

pub use cluster::CpeCluster;
pub use collective::Broadcast;
pub use config::ChipConfig;
pub use cyclesim::{CycleReport, CycleSim};
pub use dma::DmaEngine;
pub use error::ArchError;
pub use mesh::{CpeId, Mesh, Route};
pub use mpe::Mpe;
pub use shuffle::{ShuffleEngine, ShuffleLayout, ShuffleReport};
pub use spm::Spm;
pub use spm_cache::ClusterBitmap;

/// Simulated time in nanoseconds.
pub type SimNanos = f64;

/// Converts a byte count moved in `nanos` simulated nanoseconds to GB/s.
pub fn gbps(bytes: u64, nanos: SimNanos) -> f64 {
    if nanos <= 0.0 {
        return 0.0;
    }
    bytes as f64 / nanos
}
