//! The 8×8 CPE register mesh.
//!
//! CPEs in the same row or column exchange 256-bit register messages over
//! dedicated buses with no bandwidth conflicts between distinct links
//! (paper §3.1). Messaging is synchronous and explicit, so any schedule
//! whose channel-dependency graph contains a cycle can deadlock — the
//! reason the paper restricts shuffle traffic to a producer→router→consumer
//! dataflow with fixed directions (§4.3).
//!
//! This module provides coordinates, link legality, multi-hop route
//! planning under the row/column constraint, and a deadlock detector that
//! checks a set of routes for circular wait.

use crate::error::ArchError;
use std::collections::HashMap;
use std::fmt;

/// Coordinates of one CPE in its cluster mesh: `(row, col)`, both `0..side`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpeId {
    /// Mesh row.
    pub row: u8,
    /// Mesh column.
    pub col: u8,
}

impl CpeId {
    /// Creates a coordinate pair (not range-checked; the [`Mesh`] checks).
    pub const fn new(row: u8, col: u8) -> Self {
        Self { row, col }
    }

    /// Linear index within an 8-wide mesh.
    pub fn linear(&self, side: u8) -> usize {
        self.row as usize * side as usize + self.col as usize
    }
}

impl fmt::Display for CpeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// A directed single-hop register link between two mesh-adjacent-by-bus
/// CPEs (same row or same column; distance may exceed 1 — the register bus
/// connects all CPEs in a row/column directly).
pub type Link = (CpeId, CpeId);

/// A planned multi-hop route: the sequence of CPEs a packet visits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// Visited CPEs, source first, destination last.
    pub hops: Vec<CpeId>,
}

impl Route {
    /// The directed links the route occupies.
    pub fn links(&self) -> impl Iterator<Item = Link> + '_ {
        self.hops.windows(2).map(|w| (w[0], w[1]))
    }

    /// Number of register transfers.
    pub fn num_hops(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }
}

/// The mesh: side length and legality/routing rules.
#[derive(Clone, Copy, Debug)]
pub struct Mesh {
    side: u8,
}

impl Mesh {
    /// An `side × side` register mesh (8 on SW26010).
    pub fn new(side: u8) -> Self {
        assert!(side > 0, "empty mesh");
        Self { side }
    }

    /// Mesh side length.
    pub fn side(&self) -> u8 {
        self.side
    }

    /// Total CPEs.
    pub fn num_cpes(&self) -> usize {
        self.side as usize * self.side as usize
    }

    /// True if `id` is inside the mesh.
    pub fn contains(&self, id: CpeId) -> bool {
        id.row < self.side && id.col < self.side
    }

    /// True if a single register transfer `from -> to` is legal: distinct
    /// CPEs sharing a row or a column.
    pub fn link_legal(&self, from: CpeId, to: CpeId) -> bool {
        self.contains(from)
            && self.contains(to)
            && from != to
            && (from.row == to.row || from.col == to.col)
    }

    /// Validates a single hop, returning a structured error when illegal.
    pub fn check_link(&self, from: CpeId, to: CpeId) -> Result<(), ArchError> {
        if self.link_legal(from, to) {
            Ok(())
        } else {
            Err(ArchError::IllegalRoute { from, to })
        }
    }

    /// Plans a route `from -> to` using row-then-column movement (the
    /// dimension order the shuffle dataflow uses). Zero-hop when equal,
    /// one hop when row/column aligned, otherwise two hops through the
    /// corner `(from.row, to.col)`.
    pub fn plan_row_first(&self, from: CpeId, to: CpeId) -> Result<Route, ArchError> {
        self.plan_via(from, to, CpeId::new(from.row, to.col))
    }

    /// Plans a route `from -> to` using column-then-row movement, through
    /// the corner `(to.row, from.col)`.
    pub fn plan_col_first(&self, from: CpeId, to: CpeId) -> Result<Route, ArchError> {
        self.plan_via(from, to, CpeId::new(to.row, from.col))
    }

    fn plan_via(&self, from: CpeId, to: CpeId, corner: CpeId) -> Result<Route, ArchError> {
        if !self.contains(from) || !self.contains(to) {
            return Err(ArchError::IllegalRoute { from, to });
        }
        let mut hops = vec![from];
        if from != to {
            if from.row == to.row || from.col == to.col {
                hops.push(to);
            } else {
                hops.push(corner);
                hops.push(to);
            }
        }
        let route = Route { hops };
        for (a, b) in route.links() {
            self.check_link(a, b)?;
        }
        Ok(route)
    }

    /// Checks a communication schedule (a set of routes that may be in
    /// flight simultaneously) for deadlock hazard: builds the channel
    /// dependency graph — link *L1 → L2* whenever some route holds L1 while
    /// waiting for L2 — and reports any cycle.
    ///
    /// This is the classical sufficient condition: an acyclic channel
    /// dependency graph guarantees deadlock freedom for synchronous
    /// wormhole-style messaging.
    pub fn check_deadlock_free(&self, routes: &[Route]) -> Result<(), ArchError> {
        // Collect distinct links and dependency edges.
        let mut link_ids: HashMap<Link, usize> = HashMap::new();
        let mut links: Vec<Link> = Vec::new();
        let mut id_of = |l: Link, links: &mut Vec<Link>| -> usize {
            *link_ids.entry(l).or_insert_with(|| {
                links.push(l);
                links.len() - 1
            })
        };
        let mut deps: Vec<Vec<usize>> = Vec::new();
        for r in routes {
            let ls: Vec<Link> = r.links().collect();
            for w in ls.windows(2) {
                let a = id_of(w[0], &mut links);
                let b = id_of(w[1], &mut links);
                if deps.len() < links.len() {
                    deps.resize(links.len(), Vec::new());
                }
                deps[a].push(b);
            }
            // Routes with a single link still occupy it; register it.
            if ls.len() == 1 {
                let a = id_of(ls[0], &mut links);
                if deps.len() < links.len() {
                    deps.resize(links.len(), Vec::new());
                }
                let _ = a;
            }
        }
        deps.resize(links.len(), Vec::new());

        // DFS cycle detection with path recovery.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color = vec![Color::White; links.len()];
        let mut parent = vec![usize::MAX; links.len()];
        for start in 0..links.len() {
            if color[start] != Color::White {
                continue;
            }
            // Iterative DFS.
            let mut stack = vec![(start, 0usize)];
            color[start] = Color::Grey;
            while let Some(&mut (u, ref mut i)) = stack.last_mut() {
                if *i < deps[u].len() {
                    let v = deps[u][*i];
                    *i += 1;
                    match color[v] {
                        Color::White => {
                            color[v] = Color::Grey;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        Color::Grey => {
                            // Recover the cycle v -> ... -> u -> v.
                            let mut cyc = vec![links[u]];
                            let mut x = u;
                            while x != v {
                                x = parent[x];
                                cyc.push(links[x]);
                            }
                            cyc.reverse();
                            return Err(ArchError::MeshDeadlock { cycle: cyc });
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u] = Color::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(8)
    }

    #[test]
    fn link_legality() {
        let m = mesh();
        assert!(m.link_legal(CpeId::new(0, 0), CpeId::new(0, 7)));
        assert!(m.link_legal(CpeId::new(3, 2), CpeId::new(6, 2)));
        assert!(!m.link_legal(CpeId::new(0, 0), CpeId::new(1, 1)));
        assert!(!m.link_legal(CpeId::new(0, 0), CpeId::new(0, 0)));
        assert!(!m.link_legal(CpeId::new(0, 0), CpeId::new(0, 8)));
    }

    #[test]
    fn plan_row_first_routes() {
        let m = mesh();
        let r = m.plan_row_first(CpeId::new(2, 1), CpeId::new(5, 6)).unwrap();
        assert_eq!(
            r.hops,
            vec![CpeId::new(2, 1), CpeId::new(2, 6), CpeId::new(5, 6)]
        );
        assert_eq!(r.num_hops(), 2);

        let aligned = m.plan_row_first(CpeId::new(2, 1), CpeId::new(2, 6)).unwrap();
        assert_eq!(aligned.num_hops(), 1);

        let self_route = m.plan_row_first(CpeId::new(2, 1), CpeId::new(2, 1)).unwrap();
        assert_eq!(self_route.num_hops(), 0);
    }

    #[test]
    fn plan_col_first_routes() {
        let m = mesh();
        let r = m.plan_col_first(CpeId::new(2, 1), CpeId::new(5, 6)).unwrap();
        assert_eq!(
            r.hops,
            vec![CpeId::new(2, 1), CpeId::new(5, 1), CpeId::new(5, 6)]
        );
    }

    #[test]
    fn out_of_mesh_rejected() {
        let m = mesh();
        assert!(matches!(
            m.plan_row_first(CpeId::new(0, 0), CpeId::new(8, 0)),
            Err(ArchError::IllegalRoute { .. })
        ));
    }

    #[test]
    fn dimension_ordered_routes_are_deadlock_free() {
        // All-pairs row-first routing must have an acyclic channel graph
        // (classical XY-routing argument).
        let m = mesh();
        let mut routes = Vec::new();
        for a in 0..8u8 {
            for b in 0..8u8 {
                for c in 0..8u8 {
                    for d in 0..8u8 {
                        let from = CpeId::new(a, b);
                        let to = CpeId::new(c, d);
                        if from != to {
                            routes.push(m.plan_row_first(from, to).unwrap());
                        }
                    }
                }
            }
        }
        m.check_deadlock_free(&routes).unwrap();
    }

    #[test]
    fn mixed_dimension_order_deadlocks() {
        // A row-first route and a col-first route between opposite corners
        // of a 2×2 sub-square create the textbook circular wait.
        let m = mesh();
        let r1 = m.plan_row_first(CpeId::new(0, 0), CpeId::new(1, 1)).unwrap();
        let r2 = m.plan_col_first(CpeId::new(1, 1), CpeId::new(0, 0)).unwrap();
        // r1: (0,0)->(0,1)->(1,1); r2: (1,1)->(0,1)->(0,0). Hmm — these
        // don't conflict. Build the real 4-route cycle instead.
        let r3 = m.plan_row_first(CpeId::new(1, 1), CpeId::new(0, 0)).unwrap();
        let r4 = m.plan_col_first(CpeId::new(0, 0), CpeId::new(1, 1)).unwrap();
        // r3: (1,1)->(1,0)->(0,0); r4: (0,0)->(1,0)->(1,1).
        // Channel deps: r3: [(1,1)->(1,0)] -> [(1,0)->(0,0)];
        //               r4: [(0,0)->(1,0)] -> [(1,0)->(1,1)].
        // Still acyclic — extend with the mirrored pair to close the loop.
        let err = m.check_deadlock_free(&[
            r1.clone(),
            r2.clone(),
            r3,
            r4,
            Route {
                hops: vec![CpeId::new(0, 1), CpeId::new(1, 1), CpeId::new(1, 0)],
            },
            Route {
                hops: vec![CpeId::new(1, 0), CpeId::new(0, 0), CpeId::new(0, 1)],
            },
        ]);
        assert!(matches!(err, Err(ArchError::MeshDeadlock { .. })), "{err:?}");
        // And the simple pair alone is fine.
        m.check_deadlock_free(&[r1, r2]).unwrap();
    }

    #[test]
    fn deadlock_witness_is_a_real_cycle() {
        let m = mesh();
        // Two routes that wait on each other: A holds L1 wants L2; B holds
        // L2 wants L1.
        let a = Route {
            hops: vec![CpeId::new(0, 0), CpeId::new(0, 1), CpeId::new(1, 1)],
        };
        let b = Route {
            hops: vec![CpeId::new(1, 1), CpeId::new(0, 1), CpeId::new(0, 0)],
        };
        // a: [(0,0)->(0,1)] then [(0,1)->(1,1)]
        // b: [(1,1)->(0,1)] then [(0,1)->(0,0)] — no shared links, acyclic.
        m.check_deadlock_free(&[a, b]).unwrap();

        // Genuine cycle: L1->L2 and L2->L1 via two routes sharing links.
        let c = Route {
            hops: vec![CpeId::new(0, 0), CpeId::new(0, 1), CpeId::new(0, 2)],
        };
        let d = Route {
            hops: vec![CpeId::new(0, 1), CpeId::new(0, 2), CpeId::new(0, 3)],
        };
        let e = Route {
            hops: vec![CpeId::new(0, 2), CpeId::new(0, 3), CpeId::new(0, 0)],
        };
        let f = Route {
            hops: vec![CpeId::new(0, 3), CpeId::new(0, 0), CpeId::new(0, 1)],
        };
        let err = m.check_deadlock_free(&[c, d, e, f]).unwrap_err();
        match err {
            ArchError::MeshDeadlock { cycle } => {
                assert!(cycle.len() >= 2);
                // Consecutive links in the witness share a CPE.
                for w in cycle.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}
