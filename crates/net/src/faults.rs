//! Deterministic network-level fault knobs.
//!
//! The core fault scheduler (`swbfs-core::faults::FaultPlan`) projects
//! its seed into this struct so the network layer can degrade the same
//! way on every run: per-super-node bandwidth brownouts (a tier running
//! below nominal rate — cable trouble, a congested switch board) and
//! extra connection-memory pressure (a co-resident library pinning node
//! memory the MPI state was counting on). Everything is a pure function
//! of the seed; no interior state, no ordered RNG stream.

/// Seeded network fault parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetFaults {
    /// Decision seed (independent of the core plan's seed spacing).
    pub seed: u64,
    /// Per-super-node probability of a brownout, ‰.
    pub brownout_permille: u16,
    /// Bandwidth factor a browned-out tier drops to, ‰ of nominal
    /// (e.g. 250 = quarter rate).
    pub brownout_floor_permille: u16,
}

/// SplitMix64 finalizer (kept in sync with the core scheduler's hash).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl NetFaults {
    /// Injects nothing; `simulate_phase` with this is bit-identical to
    /// the fault-free simulator.
    pub fn none() -> Self {
        Self {
            seed: 0,
            brownout_permille: 0,
            brownout_floor_permille: 1000,
        }
    }

    /// True if no brownout can fire.
    pub fn is_none(&self) -> bool {
        self.brownout_permille == 0 || self.brownout_floor_permille >= 1000
    }

    /// Bandwidth factor (in `(0, 1]`) of super node `sn`'s intra tier.
    pub fn supernode_factor(&self, sn: u32) -> f64 {
        self.factor(0x5400_0000 | sn as u64)
    }

    /// Bandwidth factor (in `(0, 1]`) of super node `sn`'s uplink.
    pub fn uplink_factor(&self, sn: u32) -> f64 {
        self.factor(0x5500_0000 | sn as u64)
    }

    fn factor(&self, salt: u64) -> f64 {
        if self.is_none() {
            return 1.0;
        }
        let h = mix(self.seed ^ salt);
        if (h % 1000) as u16 >= self.brownout_permille {
            return 1.0;
        }
        // Browned out: the factor itself is drawn from the upper hash
        // bits, between the floor and nominal.
        let floor = self.brownout_floor_permille.min(999) as f64 / 1000.0;
        let span = 1.0 - floor;
        floor + span * ((h >> 32) % 1000) as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_unity_everywhere() {
        let f = NetFaults::none();
        for sn in 0..64 {
            assert_eq!(f.supernode_factor(sn), 1.0);
            assert_eq!(f.uplink_factor(sn), 1.0);
        }
    }

    #[test]
    fn factors_are_deterministic_and_bounded() {
        let f = NetFaults {
            seed: 42,
            brownout_permille: 500,
            brownout_floor_permille: 250,
        };
        let mut any_degraded = false;
        for sn in 0..256 {
            let a = f.supernode_factor(sn);
            let b = f.supernode_factor(sn);
            assert_eq!(a, b, "factor must be a pure function of (seed, sn)");
            assert!(a > 0.0 && a <= 1.0);
            assert!((0.25..=1.0).contains(&f.uplink_factor(sn)));
            if a < 1.0 {
                any_degraded = true;
            }
        }
        assert!(any_degraded, "500‰ over 256 super nodes must hit some");
    }

    #[test]
    fn different_seeds_brown_out_different_tiers() {
        let a = NetFaults {
            seed: 1,
            brownout_permille: 300,
            brownout_floor_permille: 500,
        };
        let b = NetFaults { seed: 2, ..a };
        let pattern = |f: &NetFaults| -> Vec<bool> {
            (0..128).map(|sn| f.supernode_factor(sn) < 1.0).collect()
        };
        assert_ne!(pattern(&a), pattern(&b));
    }
}
