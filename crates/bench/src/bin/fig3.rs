//! Regenerates Figure 3: DMA bandwidth of a CPE cluster vs chunk size,
//! with the MPE curve for comparison. Measured by issuing simulated
//! transfers through the timing engine (not by printing the formula's
//! constants): a fixed 256 MiB of traffic is moved per point and the
//! bandwidth computed from the simulated elapsed time.

use sw_arch::{gbps, ChipConfig, DmaEngine, Mpe};
use sw_bench::print_table;

fn main() {
    let chip = ChipConfig::sw26010();
    let dma = DmaEngine::new(chip);
    let mpe = Mpe::new(chip);
    let bytes: u64 = 256 << 20;

    println!("Figure 3: DMA bandwidth vs chunk size (simulated measurement)\n");
    let mut rows = Vec::new();
    for chunk in [8u32, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
        let t_cluster = dma.transfer_ns(bytes, chunk, chip.cpes_per_cluster);
        let t_mpe = mpe.transfer_ns(bytes, chunk);
        rows.push(vec![
            format!("{chunk}"),
            format!("{:.2}", gbps(bytes, t_cluster)),
            format!("{:.2}", gbps(bytes, t_mpe)),
            format!("{:.1}x", gbps(bytes, t_cluster) / gbps(bytes, t_mpe)),
        ]);
    }
    print_table(
        &["chunk (B)", "CPE cluster (GB/s)", "MPE (GB/s)", "ratio"],
        &rows,
    );
    println!();
    println!("Paper shape targets: cluster saturates at 28.9 GB/s for >=256 B;");
    println!("cluster ≈ 10x MPE (Fig. 3 caption); both curves monotone in chunk size.");
}
