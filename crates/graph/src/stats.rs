//! Degree-distribution statistics.
//!
//! Used by tests (to check the generator produces a power law), by the hub
//! machinery, and by the traffic model in `swbfs-core` (which needs per-level
//! edge-count expectations when extrapolating to machine scale).

use crate::Csr;

/// Summary statistics of a degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of rows inspected.
    pub num_vertices: u64,
    /// Number of rows with degree 0.
    pub isolated: u64,
    /// Maximum degree.
    pub max: u64,
    /// Mean degree over all rows.
    pub mean: f64,
    /// Fraction of adjacency entries owned by the top 1% of rows by degree.
    pub top1pct_edge_fraction: f64,
    /// Gini coefficient of the degree distribution (0 = uniform, →1 =
    /// concentrated). Power-law graphs score high.
    pub gini: f64,
}

/// Computes [`DegreeStats`] over the rows of a CSR.
pub fn degree_stats(csr: &Csr) -> DegreeStats {
    let n = csr.num_rows();
    let mut degrees: Vec<u64> = (0..n as usize).map(|i| csr.degree_local(i)).collect();
    degrees.sort_unstable();
    let total: u64 = degrees.iter().sum();
    let isolated = degrees.iter().take_while(|&&d| d == 0).count() as u64;
    let max = degrees.last().copied().unwrap_or(0);
    let mean = if n == 0 { 0.0 } else { total as f64 / n as f64 };

    let top1 = ((n as usize).max(100) / 100).max(1);
    let top1pct: u64 = degrees.iter().rev().take(top1).sum();
    let top1pct_edge_fraction = if total == 0 {
        0.0
    } else {
        top1pct as f64 / total as f64
    };

    // Gini over the sorted degrees: G = (2*sum(i*d_i)/(n*sum d)) - (n+1)/n.
    let gini = if total == 0 || n == 0 {
        0.0
    } else {
        let weighted: f64 = degrees
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
            .sum();
        (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
    };

    DegreeStats {
        num_vertices: n,
        isolated,
        max,
        mean,
        top1pct_edge_fraction,
        gini,
    }
}

/// Degree histogram in powers of two: `hist[k]` counts rows with degree in
/// `[2^k, 2^(k+1))`; `hist[0]` additionally includes degree-1 rows and
/// isolated rows are excluded.
pub fn log2_degree_histogram(csr: &Csr) -> Vec<u64> {
    let mut hist = vec![0u64; 65];
    let mut max_bucket = 0;
    for i in 0..csr.num_rows() as usize {
        let d = csr.degree_local(i);
        if d == 0 {
            continue;
        }
        let b = 63 - d.leading_zeros() as usize;
        hist[b] += 1;
        max_bucket = max_bucket.max(b);
    }
    hist.truncate(max_bucket + 1);
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_kronecker, Csr, EdgeList, KroneckerConfig};

    #[test]
    fn uniform_graph_has_low_gini() {
        // A cycle: every vertex degree 2.
        let n = 64u64;
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let csr = Csr::from_edge_list(&EdgeList::new(n, edges));
        let st = degree_stats(&csr);
        assert_eq!(st.max, 2);
        assert!(st.gini.abs() < 1e-9, "gini = {}", st.gini);
        assert_eq!(st.isolated, 0);
    }

    #[test]
    fn kronecker_is_heavy_tailed() {
        let csr = Csr::from_edge_list(&generate_kronecker(&KroneckerConfig::graph500(13, 2)));
        let st = degree_stats(&csr);
        assert!(st.gini > 0.5, "expected skewed degrees, gini = {}", st.gini);
        assert!(st.top1pct_edge_fraction > 0.1);
        assert!(st.max as f64 > 20.0 * st.mean);
        // Graph500 EF16 symmetric: mean ~ 32 (minus loop effects).
        assert!((st.mean - 32.0).abs() < 2.0, "mean = {}", st.mean);
    }

    #[test]
    fn histogram_counts_every_nonisolated_vertex() {
        let csr = Csr::from_edge_list(&generate_kronecker(&KroneckerConfig::graph500(10, 6)));
        let st = degree_stats(&csr);
        let hist = log2_degree_histogram(&csr);
        let counted: u64 = hist.iter().sum();
        assert_eq!(counted, st.num_vertices - st.isolated);
    }

    #[test]
    fn histogram_buckets_correct() {
        // Degrees: v0 = 3 edges, v1..v3 = 1.
        let el = EdgeList::new(4, vec![(0, 1), (0, 2), (0, 3)]);
        let hist = log2_degree_histogram(&Csr::from_edge_list(&el));
        // degree 1 -> bucket 0 (three vertices); degree 3 -> bucket 1.
        assert_eq!(hist, vec![3, 1]);
    }

    #[test]
    fn empty_graph_stats() {
        let csr = Csr::from_edge_list(&EdgeList::new(5, vec![]));
        let st = degree_stats(&csr);
        assert_eq!(st.isolated, 5);
        assert_eq!(st.max, 0);
        assert_eq!(st.gini, 0.0);
        assert_eq!(st.top1pct_edge_fraction, 0.0);
    }
}
