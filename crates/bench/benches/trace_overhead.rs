//! Tracing overhead on the exchange hot path.
//!
//! The sw-trace design promise is *zero overhead when disabled*: the
//! disarmed hot path is one `Option` discriminant check per
//! instrumentation site. This bench proves it by running the PR-2
//! pooled exchange loop (the same workload as `benches/exchange.rs`,
//! scale 14, Direct and Relay) three ways:
//!
//! * `disarmed` — no tracer; must be within noise of the PR-2 pooled
//!   baseline in `BENCH_exchange.json`.
//! * `armed_wall` — wall-clock spans per bucket/deliver/relay phase.
//! * `armed_virtual` — virtual-work spans (the golden-trace domain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sw_net::GroupLayout;
use sw_trace::{ClockDomain, Tracer};
use swbfs_core::arena::ExchangeArena;
use swbfs_core::config::Messaging;
use swbfs_core::exchange::Codec;
use swbfs_core::messages::EdgeRec;
use swbfs_core::modules::Outboxes;

const RANKS: usize = 32;
const GROUP: u32 = 8;
const SCALE: u32 = 14;

fn per_pair() -> usize {
    let records = (16u64 << SCALE) / 2;
    (records as usize) / (RANKS * (RANKS - 1))
}

fn rec(s: usize, d: usize, i: usize) -> EdgeRec {
    EdgeRec {
        u: ((s << 22) + i) as u64,
        v: ((d << 22) + (i * 17) % (1 << 14)) as u64,
    }
}

fn fill_flat(out: &mut [Outboxes], per_pair: usize) {
    for (s, o) in out.iter_mut().enumerate() {
        for d in 0..RANKS {
            if d == s {
                continue;
            }
            for i in 0..per_pair {
                o.push(d as u32, rec(s, d, i));
            }
        }
    }
}

fn bench_trace_overhead(c: &mut Criterion) {
    let layout = GroupLayout::new(RANKS as u32, GROUP);
    let pp = per_pair();
    let records = (RANKS * (RANKS - 1) * pp) as u64;
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10);
    g.throughput(Throughput::Elements(records));

    for (mode_name, mode) in [("direct", Messaging::Direct), ("relay", Messaging::Relay)] {
        for (arm, domain) in [
            ("disarmed", None),
            ("armed_wall", Some(ClockDomain::Wall)),
            ("armed_virtual", Some(ClockDomain::VirtualWork)),
        ] {
            let mut arena = ExchangeArena::new(RANKS);
            arena.set_tracer(domain.map(|d| Tracer::for_ranks(d, RANKS, 1 << 10)));
            arena.set_trace_level(0);
            // Warm the pool so the measured loop is the steady state.
            let mut out = arena.lend_outboxes();
            fill_flat(&mut out, pp);
            let (inboxes, _) = arena.exchange(mode, out, &layout, Codec::Fixed(16));
            arena.recycle_inboxes(inboxes);
            g.bench_function(BenchmarkId::new(format!("{mode_name}_{arm}"), SCALE), |b| {
                b.iter(|| {
                    let mut out = arena.lend_outboxes();
                    fill_flat(&mut out, pp);
                    let (inboxes, stats) = arena.exchange(mode, out, &layout, Codec::Fixed(16));
                    arena.recycle_inboxes(inboxes);
                    stats
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
