//! Per-rank state: the slice of the graph a node owns plus its share of
//! the traversal state.

use crate::frontier::Frontier;
use crate::NO_PARENT;
use sw_graph::compressed::CompressedCsr;
use sw_graph::{Bitmap, Csr, EdgeList, GraphStore, Partition1D, Vid};

/// One rank's (node's) state under 1-D partitioning.
#[derive(Clone, Debug)]
pub struct RankState {
    /// This rank's id.
    pub rank: u32,
    /// The global partition map.
    pub part: Partition1D,
    /// CSR rows owned by this rank (columns are global ids).
    pub csr: Csr,
    /// Byte-coded copies of high-degree rows (armed by
    /// [`RankState::seal_adjacency`]); kernels prefer a coded row when
    /// one exists and fall back to [`RankState::csr`] otherwise.
    pub adjacency: Option<CompressedCsr>,
    /// Parent of each owned vertex, by local index; `NO_PARENT` when
    /// unvisited.
    pub parent: Vec<Vid>,
    /// Dense visited map, bit `i` ⟺ `parent[i] != NO_PARENT`. Kept in
    /// lockstep by [`RankState::claim`]; the word surface is what the
    /// Bottom-Up sweep scans to skip 64 settled vertices at a time.
    pub visited_bits: Bitmap,
    /// Local frontier: owned vertices in the current level (hybrid
    /// sparse/dense representation).
    pub curr: Frontier,
    /// Owned vertices discovered this level.
    pub next: Frontier,
}

impl RankState {
    /// Builds rank `rank`'s state from the global edge list.
    pub fn build(rank: u32, part: Partition1D, edges: &EdgeList) -> Self {
        let (start, end) = part.range(rank);
        let csr = Csr::from_edge_list_rows(edges, start, end - start);
        let owned = (end - start) as usize;
        Self {
            rank,
            part,
            csr,
            adjacency: None,
            parent: vec![NO_PARENT; owned],
            visited_bits: Bitmap::new(owned),
            curr: Frontier::new(owned),
            next: Frontier::new(owned),
        }
    }

    /// Builds rank `rank`'s state from an opened partition store.
    ///
    /// The CSR (and the byte-coded sidecar, when the store carries one)
    /// are *views* into the store's backing bytes — on the mmap backend
    /// no adjacency word is copied. The store is already sealed: callers
    /// must not reorder or re-seal, which is why the persisted manifest
    /// records `degree_ordered` / `hub_min_degree` and engine
    /// construction refuses a config that disagrees.
    pub fn from_store(rank: u32, part: Partition1D, store: &GraphStore) -> Self {
        let csr = store.csr();
        let adjacency = store.compressed();
        let owned = csr.num_rows() as usize;
        Self {
            rank,
            part,
            csr,
            adjacency,
            parent: vec![NO_PARENT; owned],
            visited_bits: Bitmap::new(owned),
            curr: Frontier::new(owned),
            next: Frontier::new(owned),
        }
    }

    /// Builds the byte-coded sidecar for rows with degree at least
    /// `min_degree`. Call after any adjacency reordering — the coding
    /// snapshots the rows as they are. Returns the number of coded rows.
    pub fn seal_adjacency(&mut self, min_degree: u64) -> u64 {
        let coded = CompressedCsr::from_csr(&self.csr, min_degree);
        let n = coded.coded_rows() as u64;
        self.adjacency = Some(coded);
        n
    }

    /// Number of owned vertices.
    pub fn owned(&self) -> usize {
        self.parent.len()
    }

    /// True if this rank owns global vertex `v`.
    pub fn owns(&self, v: Vid) -> bool {
        self.part.owner(v) == self.rank
    }

    /// Local index of an owned global vertex.
    pub fn local(&self, v: Vid) -> usize {
        debug_assert!(self.owns(v));
        self.part.to_local(v) as usize
    }

    /// Global id of a local index.
    pub fn global(&self, local: usize) -> Vid {
        self.part.to_global(self.rank, local as u32)
    }

    /// True if the owned vertex at `local` has been settled.
    pub fn visited(&self, local: usize) -> bool {
        self.parent[local] != NO_PARENT
    }

    /// Claims vertex `local` for `parent` if unclaimed; returns whether the
    /// claim won. Winners enter `next` and the visited bitmap.
    pub fn claim(&mut self, local: usize, parent: Vid) -> bool {
        if self.parent[local] == NO_PARENT {
            self.parent[local] = parent;
            self.visited_bits.set(local);
            self.next.insert(local);
            true
        } else {
            false
        }
    }

    /// Returns the rank to its pre-run state: parents unset, visited and
    /// both frontiers empty. Capacity (and the sealed adjacency) is kept.
    pub fn reset(&mut self) {
        self.parent.fill(NO_PARENT);
        self.visited_bits.clear_all();
        self.curr.clear();
        self.next.clear();
    }

    /// Ends the level: `next` becomes `curr`, `next` clears. Returns the
    /// number of vertices settled this level.
    pub fn advance_level(&mut self) -> u64 {
        let settled = self.next.count() as u64;
        std::mem::swap(&mut self.curr, &mut self.next);
        self.next.clear();
        settled
    }

    /// Sum of degrees of current-frontier vertices (this rank's share of
    /// `m_f`).
    pub fn frontier_edges(&self) -> u64 {
        self.curr.iter().map(|i| self.csr.degree_local(i)).sum()
    }

    /// Sum of degrees of unvisited owned vertices (this rank's share of
    /// `m_u`).
    ///
    /// Word-parallel: each 64-vertex block is one complement-and-test;
    /// fully-settled blocks — most of the graph once Bottom-Up engages —
    /// cost one word compare instead of 64 predicate calls.
    pub fn unvisited_edges(&self) -> u64 {
        let owned = self.owned();
        let offsets = self.csr.offsets();
        let mut sum = 0u64;
        for (wi, &vw) in self.visited_bits.words().iter().enumerate() {
            let mut w = !vw & tail_mask(wi, owned);
            if w == 0 {
                continue;
            }
            while w != 0 {
                let i = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                sum += offsets[i + 1] - offsets[i];
            }
        }
        sum
    }

    /// Frontier vertex count (this rank's share of `n_f`).
    pub fn frontier_vertices(&self) -> u64 {
        self.curr.count() as u64
    }

    /// Degrees of owned vertices as `(global, degree)` pairs with nonzero
    /// degree — input to distributed hub selection.
    pub fn owned_degrees(&self) -> Vec<(Vid, u64)> {
        (0..self.owned())
            .filter_map(|i| {
                let d = self.csr.degree_local(i);
                (d > 0).then(|| (self.global(i), d))
            })
            .collect()
    }
}

/// Valid-bit mask for word `wi` of a `len`-bit surface: all-ones for
/// interior words, low `len % 64` bits for a partial last word.
#[inline]
pub(crate) fn tail_mask(wi: usize, len: usize) -> u64 {
    let base = wi * 64;
    debug_assert!(base < len || len == 0);
    if len - base >= 64 {
        !0
    } else {
        (1u64 << (len - base)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rank_setup() -> (RankState, RankState) {
        // 6 vertices, path 0-1-2-3-4-5; ranks own [0,3) and [3,6).
        let el = EdgeList::new(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let part = Partition1D::new(6, 2);
        (
            RankState::build(0, part, &el),
            RankState::build(1, part, &el),
        )
    }

    #[test]
    fn build_partitions_rows() {
        let (r0, r1) = two_rank_setup();
        assert_eq!(r0.owned(), 3);
        assert_eq!(r1.owned(), 3);
        assert!(r0.owns(2) && !r0.owns(3));
        assert_eq!(r1.local(3), 0);
        assert_eq!(r1.global(0), 3);
        assert_eq!(r0.csr.neighbors(2), &[1, 3]);
    }

    #[test]
    fn claim_is_first_wins() {
        let (mut r0, _) = two_rank_setup();
        assert!(r0.claim(1, 0));
        assert!(!r0.claim(1, 2));
        assert_eq!(r0.parent[1], 0);
        assert!(r0.next.contains(1));
        assert!(r0.visited(1));
    }

    #[test]
    fn advance_level_swaps_and_counts() {
        let (mut r0, _) = two_rank_setup();
        r0.claim(0, 0);
        r0.claim(2, 1);
        assert_eq!(r0.advance_level(), 2);
        assert!(r0.curr.contains(0) && r0.curr.contains(2));
        assert!(r0.next.is_empty());
        assert_eq!(r0.frontier_vertices(), 2);
        // degrees: v0 = 1 (0-1), v2 = 2 (1-2, 2-3).
        assert_eq!(r0.frontier_edges(), 3);
    }

    #[test]
    fn unvisited_edges_shrinks_as_claims_land() {
        let (mut r0, _) = two_rank_setup();
        let before = r0.unvisited_edges();
        r0.claim(1, 0); // degree 2
        assert_eq!(r0.unvisited_edges(), before - 2);
    }

    #[test]
    fn claim_tracks_visited_bitmap() {
        let (mut r0, _) = two_rank_setup();
        r0.claim(1, 0);
        assert!(r0.visited_bits.get(1));
        assert!(!r0.visited_bits.get(0));
        // The bitmap and the parent map agree bit for bit.
        for i in 0..r0.owned() {
            assert_eq!(r0.visited_bits.get(i), r0.visited(i));
        }
        r0.reset();
        assert!(r0.visited_bits.all_zero());
        assert_eq!(r0.parent, vec![NO_PARENT; 3]);
        assert!(r0.curr.is_empty() && r0.next.is_empty());
    }

    #[test]
    fn unvisited_edges_matches_scalar_filter() {
        // 70 vertices in a ring: every vertex degree 2, one rank.
        let edges: Vec<(Vid, Vid)> = (0..70u64).map(|v| (v, (v + 1) % 70)).collect();
        let el = EdgeList::new(70, edges);
        let mut r = RankState::build(0, Partition1D::new(70, 1), &el);
        for i in (0..70).step_by(3) {
            r.claim(i, 0);
        }
        let scalar: u64 = (0..r.owned())
            .filter(|&i| !r.visited(i))
            .map(|i| r.csr.degree_local(i))
            .sum();
        assert_eq!(r.unvisited_edges(), scalar);
        // Settle everything: the word sweep must short-circuit to zero.
        for i in 0..70 {
            r.claim(i, 0);
        }
        assert_eq!(r.unvisited_edges(), 0);
    }

    #[test]
    fn seal_adjacency_codes_hub_rows() {
        // Star around vertex 0 plus a pendant edge: 0 is the only hub.
        let mut edges: Vec<(Vid, Vid)> = (1..=5u64).map(|v| (0, v)).collect();
        edges.push((1, 2));
        let el = EdgeList::new(6, edges);
        let mut r = RankState::build(0, Partition1D::new(6, 1), &el);
        assert_eq!(r.seal_adjacency(3), 1);
        let adj = r.adjacency.as_ref().unwrap();
        assert!(adj.is_compressed(0));
        let decoded: Vec<Vid> = adj.coded_row(0).unwrap().collect();
        assert_eq!(decoded, r.csr.neighbors_local(0));
    }

    #[test]
    fn tail_mask_edges() {
        assert_eq!(tail_mask(0, 64), !0);
        assert_eq!(tail_mask(0, 3), 0b111);
        assert_eq!(tail_mask(1, 70), (1 << 6) - 1);
        assert_eq!(tail_mask(1, 128), !0);
    }

    #[test]
    fn owned_degrees_skip_isolated() {
        let el = EdgeList::new(4, vec![(0, 1)]);
        let part = Partition1D::new(4, 1);
        let r = RankState::build(0, part, &el);
        assert_eq!(r.owned_degrees(), vec![(0, 1), (1, 1)]);
    }
}
