//! Δ-stepping SSSP — the bucketed refinement of the Bellman–Ford kernel.
//!
//! [`crate::sssp`] relaxes every improved vertex each round, which on
//! weighted graphs re-relaxes long-distance vertices many times.
//! Δ-stepping (Meyer & Sanders) processes vertices in distance buckets of
//! width Δ: *light* edges (weight ≤ Δ) are relaxed repeatedly inside the
//! current bucket until it stabilizes, *heavy* edges once when the bucket
//! retires. Communication stays shuffle-shaped — `(target, candidate)`
//! records to owners — so it slots into the same exchange machinery and
//! benefits from the same relay batching.

use crate::runtime::{edge_weight, AlgoCluster};
use swbfs_core::engine::Transport;
use crate::sssp::INF;
use sw_graph::Vid;
use sw_trace::Tracer;
use swbfs_core::instrument as ins;
use swbfs_core::messages::EdgeRec;
use swbfs_core::modules::Outboxes;

/// Runs Δ-stepping from `root` with synthetic weights in `1..=max_weight`
/// and bucket width `delta`. Returns per-vertex distances.
pub fn sssp_delta_stepping<T: Transport>(
    cluster: &mut AlgoCluster<T>,
    root: Vid,
    max_weight: u64,
    delta: u64,
) -> Vec<u64> {
    assert!(delta > 0, "zero bucket width");
    let ranks = cluster.num_ranks() as usize;
    let n = cluster.num_vertices() as usize;

    let mut dist: Vec<Vec<u64>> = (0..ranks)
        .map(|r| vec![INF; cluster.part.owned_count(r as u32) as usize])
        .collect();
    // Vertices whose distance improved and whose edges (of the given
    // class) are pending relaxation.
    let mut pending: Vec<Vec<bool>> = dist.iter().map(|d| vec![false; d.len()]).collect();
    {
        let r = cluster.part.owner(root) as usize;
        let l = cluster.part.to_local(root) as usize;
        dist[r][l] = 0;
        pending[r][l] = true;
    }

    let tracer = cluster.tracer().cloned();
    let tr = tracer.as_ref();
    let mut round = 0u32;
    let mut bucket = 0u64;
    loop {
        // --- light-edge phases within the current bucket ---
        loop {
            cluster.set_round(round);
            let mut out = cluster.lend_outboxes();
            let mut any = false;
            for r in 0..ranks {
                let t0 = ins::span_begin(tr);
                let mut produced = 0u64;
                let csr = &cluster.csrs[r];
                let (start, _) = cluster.part.range(r as u32);
                for i in 0..dist[r].len() {
                    let du = dist[r][i];
                    if !pending[r][i] || du >= (bucket + 1) * delta {
                        continue;
                    }
                    // Stays pending for the heavy phase; light edges relax
                    // now.
                    let u = start + i as Vid;
                    any = true;
                    pending[r][i] = false;
                    for &v in csr.neighbors_local(i) {
                        let w = edge_weight(u, v, max_weight);
                        if w > delta {
                            continue;
                        }
                        produced += 1;
                        relax(
                            cluster,
                            &mut dist,
                            &mut pending,
                            &mut out,
                            r,
                            v,
                            du + w,
                            (bucket + 1) * delta,
                        );
                    }
                }
                ins::span_end(tr, r, ins::SPAN_GEN, ins::CAT_COMPUTE, round, t0, produced);
            }
            if !any {
                break;
            }
            let inboxes = cluster.exchange_round(out);
            apply(
                cluster,
                &mut dist,
                &mut pending,
                &inboxes,
                (bucket + 1) * delta,
                tr,
                round,
            );
            cluster.recycle_inboxes(inboxes);
            round += 1;
        }

        // --- heavy-edge phase: every settled vertex of this bucket fires
        // its heavy edges once ---
        cluster.set_round(round);
        let mut out = cluster.lend_outboxes();
        for r in 0..ranks {
            let t0 = ins::span_begin(tr);
            let mut produced = 0u64;
            let csr = &cluster.csrs[r];
            let (start, _) = cluster.part.range(r as u32);
            for i in 0..dist[r].len() {
                let du = dist[r][i];
                if du == INF || du / delta != bucket {
                    continue;
                }
                let u = start + i as Vid;
                for &v in csr.neighbors_local(i) {
                    let w = edge_weight(u, v, max_weight);
                    if w <= delta {
                        continue;
                    }
                    produced += 1;
                    // Heavy targets land in future buckets; the bucket
                    // advance re-marks them, so no horizon here.
                    relax(cluster, &mut dist, &mut pending, &mut out, r, v, du + w, 0);
                }
            }
            ins::span_end(tr, r, ins::SPAN_GEN, ins::CAT_COMPUTE, round, t0, produced);
        }
        let inboxes = cluster.exchange_round(out);
        apply(cluster, &mut dist, &mut pending, &inboxes, 0, tr, round);
        cluster.recycle_inboxes(inboxes);
        round += 1;

        // --- advance to the next non-empty bucket ---
        let mut next = u64::MAX;
        for r in 0..ranks {
            for i in 0..dist[r].len() {
                let d = dist[r][i];
                if d != INF && d / delta > bucket {
                    next = next.min(d / delta);
                }
                if pending[r][i] && d != INF {
                    next = next.min(d / delta);
                }
            }
        }
        if next == u64::MAX {
            break;
        }
        bucket = next;
        // Vertices in the new bucket become pending.
        for r in 0..ranks {
            for i in 0..dist[r].len() {
                let d = dist[r][i];
                if d != INF && d / delta == bucket {
                    pending[r][i] = true;
                }
            }
        }
    }

    let mut result = vec![INF; n];
    for (r, d) in dist.into_iter().enumerate() {
        let (s, _) = cluster.part.range(r as u32);
        result[s as usize..s as usize + d.len()].copy_from_slice(&d);
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn relax<T: Transport>(
    cluster: &AlgoCluster<T>,
    dist: &mut [Vec<u64>],
    pending: &mut [Vec<bool>],
    out: &mut [Outboxes],
    from_rank: usize,
    v: Vid,
    cand: u64,
    light_horizon: u64,
) {
    let owner = cluster.part.owner(v) as usize;
    if owner == from_rank {
        let vl = cluster.part.to_local(v) as usize;
        if cand < dist[from_rank][vl] {
            dist[from_rank][vl] = cand;
            if cand < light_horizon {
                pending[from_rank][vl] = true;
            }
        }
    } else {
        out[from_rank].push(owner as u32, EdgeRec { u: v, v: cand });
    }
}

#[allow(clippy::too_many_arguments)]
fn apply<T: Transport>(
    cluster: &AlgoCluster<T>,
    dist: &mut [Vec<u64>],
    pending: &mut [Vec<bool>],
    inboxes: &[Vec<EdgeRec>],
    light_horizon: u64,
    tr: Option<&Tracer>,
    round: u32,
) {
    for (r, inbox) in inboxes.iter().enumerate() {
        let t0 = ins::span_begin(tr);
        for rec in inbox {
            let vl = cluster.part.to_local(rec.u) as usize;
            if rec.v < dist[r][vl] {
                dist[r][vl] = rec.v;
                if rec.v < light_horizon {
                    pending[r][vl] = true;
                }
            }
        }
        ins::span_end(
            tr,
            r,
            ins::SPAN_HANDLE,
            ins::CAT_COMPUTE,
            round,
            t0,
            inbox.len() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sssp::{sssp_distributed, sssp_oracle};
    use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig};
    use swbfs_core::config::Messaging;

    #[test]
    fn matches_dijkstra_and_bellman_ford() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 4));
        let oracle = sssp_oracle(&el, 2, 20);
        for delta in [1u64, 4, 8, 20] {
            let mut c = AlgoCluster::new(&el, 5, 2, Messaging::Relay);
            let got = sssp_delta_stepping(&mut c, 2, 20, delta);
            assert_eq!(got, oracle, "delta = {delta}");
        }
        let mut c = AlgoCluster::new(&el, 5, 2, Messaging::Relay);
        assert_eq!(sssp_distributed(&mut c, 2, 20), oracle);
    }

    #[test]
    fn big_delta_reduces_to_bellman_ford_rounds() {
        // Δ ≥ max distance: a single bucket, still correct.
        let el = EdgeList::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let oracle = sssp_oracle(&el, 0, 10);
        let mut c = AlgoCluster::new(&el, 2, 2, Messaging::Direct);
        assert_eq!(sssp_delta_stepping(&mut c, 0, 10, 1_000_000), oracle);
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let el = EdgeList::new(4, vec![(0, 1)]);
        let mut c = AlgoCluster::new(&el, 2, 2, Messaging::Relay);
        let d = sssp_delta_stepping(&mut c, 0, 5, 3);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }

    #[test]
    #[should_panic(expected = "zero bucket width")]
    fn zero_delta_rejected() {
        let el = EdgeList::new(2, vec![(0, 1)]);
        let mut c = AlgoCluster::new(&el, 1, 1, Messaging::Direct);
        sssp_delta_stepping(&mut c, 0, 5, 0);
    }
}
