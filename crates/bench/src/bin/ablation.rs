//! Ablation study over the design choices DESIGN.md calls out, measured
//! on the threaded backend with a real Kronecker graph: each row removes
//! or adds one technique relative to the paper configuration and reports
//! work and traffic.
//!
//! Usage: `ablation [scale] [ranks]`

use std::time::Instant;
use sw_bench::print_table;
use sw_graph::{generate_kronecker, KroneckerConfig};
use swbfs_core::{BfsConfig, ClusterBuilder, Messaging};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(17);
    let ranks: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    let el = generate_kronecker(&KroneckerConfig::graph500(scale, 4));
    eprintln!(
        "graph: scale {scale} ({} vertices, {} edges), {ranks} ranks",
        el.num_vertices,
        el.len()
    );
    let base = BfsConfig::threaded_small((ranks / 4).max(1));

    let variants: Vec<(&str, BfsConfig)> = vec![
        ("paper (relay, dir-opt, hubs)", base),
        (
            "- direction optimization",
            BfsConfig {
                force_top_down: true,
                ..base
            },
        ),
        (
            "- hub prefetch",
            BfsConfig {
                top_down_hubs: 1,
                bottom_up_hubs: 1,
                ..base
            },
        ),
        ("- relay (direct messaging)", base.with_messaging(Messaging::Direct)),
        ("+ message compression (§7)", base.with_compression()),
        (
            "+ degree-ordered adjacency [25]",
            BfsConfig {
                degree_ordered_adjacency: true,
                ..base
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, cfg) in variants {
        let mut tc = ClusterBuilder::new(&el, ranks, cfg).build().expect("cluster");
        let root = (0..el.num_vertices.min(512))
            .max_by_key(|&v| tc.degree_of(v))
            .unwrap();
        let t0 = Instant::now();
        let out = tc.run(root).expect("bfs");
        let dt = t0.elapsed().as_secs_f64();
        let records: u64 = out.levels.iter().map(|l| l.records_generated).sum();
        let bytes: u64 = out.levels.iter().map(|l| l.bytes_sent).sum();
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", dt),
            format!("{}", out.total_edges_scanned()),
            format!("{records}"),
            format!("{}", out.total_messages_sent()),
            format!("{:.1}", bytes as f64 / (1 << 20) as f64),
            format!("{}", out.reached()),
        ]);
    }
    println!("\nAblation (threaded backend, wall time on this host):\n");
    print_table(
        &[
            "variant",
            "time (s)",
            "edges scanned",
            "records",
            "messages",
            "MiB sent",
            "reached",
        ],
        &rows,
    );
    println!("\nExpected: removing direction optimization multiplies scanned edges;");
    println!("removing hubs multiplies records; direct messaging multiplies message");
    println!("count; compression divides bytes by ~3 while changing nothing else.");
}
