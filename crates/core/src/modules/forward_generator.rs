//! Forward Generator (Algorithm 2, `FORWARD_GENERATOR`): scan the current
//! frontier's edges, claim local targets immediately, and queue a forward
//! record `(u, v)` to `owner(v)` for remote targets — unless the replicated
//! hub-visited bitmap proves the message pointless.
//!
//! Local claims are **cache-blocked**: the scan stages `(target, parent)`
//! pairs instead of claiming inline, then applies them grouped by target
//! block so the parent-array writes land with locality instead of
//! hopping across the whole owned range. The grouping is a *stable*
//! counting sort and each target's competing claims live in one block,
//! so the winner of every contest — and, via a final pass in original
//! scan order, the `next`-frontier insertion order — is exactly what the
//! inline loop produced: parents stay bit-identical to
//! [`reference::forward_generator`](super::reference). Remote records
//! are pushed during the scan, order unchanged.
//!
//! A dense frontier is swept word-parallel over its bitmap (zero words
//! skipped with one compare); a sparse frontier keeps its queue order.
//! Rows with a byte-coded copy decode through the varint stream.

use super::{ModuleStats, Outboxes};
use crate::hubs::HubState;
use crate::messages::EdgeRec;
use crate::rank::{tail_mask, RankState};
use crate::NO_PARENT;
use sw_graph::Vid;

/// Local-claim block: 2^12 targets = 32 KB of parent entries, sized for
/// a core-local cache tile.
const BLOCK_BITS: u32 = 12;

/// One frontier row: hub-visited suppression, remote push, local stage.
fn scan_row(
    state: &RankState,
    hubs: &HubState,
    u: Vid,
    neighbours: impl Iterator<Item = Vid>,
    staged: &mut Vec<(u32, Vid)>,
    out: &mut Outboxes,
    stats: &mut ModuleStats,
) {
    for v in neighbours {
        stats.edges_scanned += 1;
        if let Some(idx) = hubs.hub_index(v) {
            if idx < hubs.td_limit && hubs.is_visited(idx) {
                stats.hub_skips += 1;
                continue;
            }
        }
        if state.owns(v) {
            staged.push((state.local(v) as u32, u));
        } else {
            out.push(state.part.owner(v), EdgeRec { u, v });
            stats.records_out += 1;
        }
    }
}

/// Runs the Forward Generator over `state`'s current frontier.
pub fn forward_generator(
    state: &mut RankState,
    hubs: &HubState,
    out: &mut Outboxes,
) -> ModuleStats {
    let mut stats = ModuleStats::default();

    // Frontier enumeration: queue order while sparse (matching the
    // reference kernel's `curr.iter()`), word-parallel bitmap sweep once
    // dense — same ascending order the dense iterator produced.
    let frontier: Vec<u32> = if state.curr.is_sparse() {
        state.curr.iter().map(|i| i as u32).collect()
    } else {
        let bits = state.curr.as_bitmap();
        let len = bits.len();
        let mut members = Vec::with_capacity(state.curr.count());
        for (wi, &word) in bits.words().iter().enumerate() {
            stats.words_scanned += 1;
            let mut w = word & tail_mask(wi, len);
            if w == 0 {
                stats.words_skipped += 1;
                continue;
            }
            while w != 0 {
                members.push((wi * 64) as u32 + w.trailing_zeros());
                w &= w - 1;
            }
        }
        members
    };

    // Pass 1 — scan: remote records out in scan order, local claims
    // staged as (target, parent) in scan order.
    let mut staged: Vec<(u32, Vid)> = Vec::new();
    for &u_local in &frontier {
        let u = state.global(u_local as usize);
        let coded = state
            .adjacency
            .as_ref()
            .and_then(|a| a.coded_row(u_local as usize));
        match coded {
            Some(mut it) => {
                scan_row(state, hubs, u, it.by_ref(), &mut staged, out, &mut stats);
                stats.bytes_decoded += it.bytes_read() as u64;
            }
            None => scan_row(
                state,
                hubs,
                u,
                state.csr.neighbors_local(u_local as usize).iter().copied(),
                &mut staged,
                out,
                &mut stats,
            ),
        }
    }

    // Pass 2 — blocked claim: stable counting sort by target block, then
    // parent writes block by block. All claims on one target share a
    // block and keep their scan order, so each contest's winner equals
    // the inline loop's.
    let num_blocks = (state.owned() >> BLOCK_BITS) + 1;
    let mut cursors = vec![0u32; num_blocks + 1];
    for &(vl, _) in &staged {
        cursors[(vl >> BLOCK_BITS) as usize + 1] += 1;
    }
    for b in 0..num_blocks {
        cursors[b + 1] += cursors[b];
    }
    let mut order = vec![0u32; staged.len()];
    for (idx, &(vl, _)) in staged.iter().enumerate() {
        let c = &mut cursors[(vl >> BLOCK_BITS) as usize];
        order[*c as usize] = idx as u32;
        *c += 1;
    }
    let mut winner = vec![false; staged.len()];
    for &idx in &order {
        let (vl, u) = staged[idx as usize];
        if state.parent[vl as usize] == NO_PARENT {
            state.parent[vl as usize] = u;
            winner[idx as usize] = true;
        }
    }

    // Pass 3 — publish winners in original scan order, so the `next`
    // queue records discoveries exactly as the inline loop did.
    for (idx, &(vl, _)) in staged.iter().enumerate() {
        if winner[idx] {
            state.visited_bits.set(vl as usize);
            state.next.insert(vl as usize);
            stats.local_claims += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::reference;
    use sw_graph::hub::HubSet;
    use sw_graph::{EdgeList, Partition1D};

    fn setup() -> (RankState, HubState) {
        // 8 vertices over 2 ranks; rank 0 owns 0..4.
        // Edges: 0-1 (local to r0), 0-5 (remote), 0-6 (remote hub), 1-2.
        let el = EdgeList::new(8, vec![(0, 1), (0, 5), (0, 6), (1, 2)]);
        let part = Partition1D::new(8, 2);
        let state = RankState::build(0, part, &el);
        let hubs = HubState::new(HubSet::from_degrees(vec![(6, 50)], 4));
        (state, hubs)
    }

    /// Engine-style seeding: claim then promote, keeping parent map,
    /// visited bitmap, and frontier consistent.
    fn seed_frontier(state: &mut RankState, members: &[(usize, Vid)]) {
        for &(local, parent) in members {
            state.claim(local, parent);
        }
        state.advance_level();
    }

    #[test]
    fn claims_local_and_queues_remote() {
        let (mut state, hubs) = setup();
        seed_frontier(&mut state, &[(0, 0)]); // frontier = {0}
        let mut out = Outboxes::new(2);
        let stats = forward_generator(&mut state, &hubs, &mut out);
        assert_eq!(stats.edges_scanned, 3);
        assert_eq!(stats.local_claims, 1); // v=1
        assert_eq!(stats.records_out, 2); // v=5, v=6 (hub not yet visited)
        assert_eq!(out.for_rank(1), &[EdgeRec { u: 0, v: 5 }, EdgeRec { u: 0, v: 6 }]);
        assert!(state.visited(1));
        assert!(state.next.contains(1));
    }

    #[test]
    fn hub_visited_suppresses_message() {
        let (mut state, mut hubs) = setup();
        seed_frontier(&mut state, &[(0, 0)]);
        let idx = hubs.hub_index(6).unwrap();
        hubs.visited.set(idx as usize);
        let mut out = Outboxes::new(2);
        let stats = forward_generator(&mut state, &hubs, &mut out);
        assert_eq!(stats.hub_skips, 1);
        assert_eq!(stats.records_out, 1); // only v=5
        assert_eq!(out.for_rank(1), &[EdgeRec { u: 0, v: 5 }]);
    }

    #[test]
    fn already_visited_local_target_not_reclaimed() {
        let (mut state, hubs) = setup();
        // Settle v=1 a level before 0 enters the frontier.
        seed_frontier(&mut state, &[(1, 0)]);
        seed_frontier(&mut state, &[(0, 0)]); // frontier = {0}, next empty
        let mut out = Outboxes::new(2);
        let stats = forward_generator(&mut state, &hubs, &mut out);
        assert_eq!(stats.local_claims, 0);
        assert!(!state.next.contains(1));
    }

    #[test]
    fn empty_frontier_is_a_noop() {
        let (mut state, hubs) = setup();
        let mut out = Outboxes::new(2);
        let stats = forward_generator(&mut state, &hubs, &mut out);
        assert_eq!(stats, ModuleStats::default());
        assert_eq!(out.total_records(), 0);
    }

    #[test]
    fn dense_frontier_sweeps_words() {
        // 130 owned vertices, frontier dense in the first word only:
        // words 1 and 2 are skipped with one compare each.
        let edges: Vec<(Vid, Vid)> = (0..130u64).map(|v| (v, (v + 1) % 130)).collect();
        let el = EdgeList::new(130, edges);
        let mut state = RankState::build(0, Partition1D::new(130, 1), &el);
        let members: Vec<(usize, Vid)> = (0..8).map(|i| (i, i as Vid)).collect();
        seed_frontier(&mut state, &members);
        assert!(!state.curr.is_sparse(), "8/130 must be dense at divisor 32");
        let hubs = HubState::new(HubSet::from_degrees(vec![], 4));
        let mut out = Outboxes::new(1);
        let stats = forward_generator(&mut state, &hubs, &mut out);
        assert_eq!(stats.words_scanned, 3);
        assert_eq!(stats.words_skipped, 2);
    }

    #[test]
    fn matches_reference_kernel_with_and_without_coding() {
        // Contested claims: many frontier vertices share targets, so the
        // blocked pass must reproduce every first-wins outcome and the
        // exact next-queue order.
        let edges: Vec<(Vid, Vid)> = (0..60u64)
            .flat_map(|v| [(v, (v + 1) % 60), (v, (v * 13 + 7) % 60), (v % 6, (v + 30) % 60)])
            .collect();
        let el = EdgeList::new(60, edges);
        let part = Partition1D::new(60, 2);
        let hubs = HubState::new(HubSet::from_degrees(vec![(2, 90)], 4));
        for min_degree in [None, Some(1), Some(10)] {
            let mut word = RankState::build(0, part, &el);
            let mut refk = word.clone();
            if let Some(d) = min_degree {
                word.seal_adjacency(d);
            }
            let members: Vec<(usize, Vid)> = (0..12).map(|i| (i, i as Vid)).collect();
            seed_frontier(&mut word, &members);
            seed_frontier(&mut refk, &members);
            let (mut out_w, mut out_r) = (Outboxes::new(2), Outboxes::new(2));
            let st_w = forward_generator(&mut word, &hubs, &mut out_w);
            let st_r = reference::forward_generator(&mut refk, &hubs, &mut out_r);
            assert_eq!(word.parent, refk.parent, "min_degree {min_degree:?}");
            assert_eq!(out_w.parts(), out_r.parts());
            assert_eq!(
                word.next.iter().collect::<Vec<_>>(),
                refk.next.iter().collect::<Vec<_>>(),
                "next-frontier insertion order must match"
            );
            assert_eq!(st_w.edges_scanned, st_r.edges_scanned);
            assert_eq!(st_w.local_claims, st_r.local_claims);
            assert_eq!(st_w.hub_skips, st_r.hub_skips);
            assert_eq!(st_w.records_out, st_r.records_out);
            if min_degree.is_some() {
                assert!(st_w.bytes_decoded > 0, "coded rows should be exercised");
            }
        }
    }
}
