//! Offline shim for the `rayon` API subset this workspace uses — now
//! backed by a real work-stealing pool.
//!
//! The parallel-iterator entry points (`par_iter`, `par_iter_mut`,
//! `into_par_iter`, `par_chunks`, `par_chunks_mut`) return *indexed*
//! parallel iterators ([`iter::ParallelIterator`]): sources that know
//! their length and can materialize any contiguous sub-range as a
//! sequential iterator. Consumers split the index space into chunks,
//! execute the chunks on a crossbeam-deque work-stealing pool
//! ([`mod@pool`]), and reassemble results in chunk order — so every
//! reduction is **bit-identical at any thread count**.
//!
//! The pool is sized by `SW_POOL_THREADS` (default 1). At the default
//! size no threads spawn and everything runs inline, preserving this
//! container's single-CPU behaviour and all committed baselines; CI
//! additionally runs the conformance and chaos suites at
//! `SW_POOL_THREADS=4` to hold the determinism guarantee.

pub mod iter;
pub mod pool;
pub mod slice;

pub use pool::{current_num_threads, join, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

pub mod prelude {
    //! Everything `use rayon::prelude::*` is expected to bring in.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn iterator_surface_works() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 10);
        let flat: Vec<u64> = (0u64..3).into_par_iter().flat_map_iter(|x| 0..x).collect();
        assert_eq!(flat, vec![0, 0, 1]);
        let mut m = vec![3, 1, 2];
        m.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(m, vec![13, 11, 12]);
    }

    #[test]
    fn zip_enumerate_chunks_compose() {
        let a = vec![1u64, 2, 3, 4, 5];
        let mut b = vec![10u64, 20, 30, 40, 50];
        let pairs: Vec<(usize, (u64, u64))> = a
            .par_iter()
            .map(|&x| x)
            .zip(b.par_iter_mut().map(|x| *x))
            .enumerate()
            .collect();
        assert_eq!(pairs[2], (2, (3, 30)));
        let sums: Vec<u64> = b.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![30, 70, 50]);
        let mut c = vec![1u64; 7];
        c.par_chunks_mut(3)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|x| *x += i as u64));
        assert_eq!(c, vec![1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn forced_pool_runs_every_chunk_once() {
        let pool = crate::pool::PoolCore::new(4);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(100, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn forced_pool_chunked_reduction_matches_sequential() {
        let pool = crate::pool::PoolCore::new(4);
        let data: Vec<u64> = (0..10_000).map(|i| i * 2_654_435_761).collect();
        let seq: u64 = data.iter().copied().fold(0u64, u64::wrapping_add);
        let chunked = crate::pool::run_chunked_on(Some(&pool), data.len(), &|lo, hi| {
            data[lo..hi].iter().copied().fold(0u64, u64::wrapping_add)
        });
        // Ordered per-chunk fold, then an ordered outer fold: identical
        // to the sequential result even for wrapping arithmetic.
        let par = chunked.into_iter().fold(0u64, u64::wrapping_add);
        assert_eq!(par, seq);
    }

    #[test]
    fn forced_pool_propagates_panics() {
        let pool = crate::pool::PoolCore::new(3);
        let caught = std::panic::catch_unwind(|| {
            pool.run(8, &|i| {
                if i == 5 {
                    panic!("chunk 5 exploded");
                }
            });
        });
        assert!(caught.is_err(), "worker panic must resurface at the submitter");
        // The pool must stay usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(4, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 6 * 7, || "ok");
        assert_eq!((a, b), (42, "ok"));
    }
}
