//! Typed wire messages between ranks.
//!
//! Two record kinds flow during a traversal (Algorithm 2):
//!
//! * a **forward** record `(u, v)` — "u, already settled, claims v";
//! * a **backward** record `(u, v)` — "unvisited v asks u's owner whether
//!   u is in the current frontier".
//!
//! Records are fixed-size and batched; [`encode_batch`]/[`decode_batch`]
//! give the byte-level framing the relay stage shuffles (using `bytes` for
//! zero-copy splitting on the receive side).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sw_graph::Vid;

/// One edge record on the wire. Used for both forward claims and backward
/// queries — the surrounding stage determines the meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdgeRec {
    /// Source endpoint (settled vertex for forward, queried for backward).
    pub u: Vid,
    /// Destination endpoint (claimed vertex for forward, asker for
    /// backward).
    pub v: Vid,
}

impl EdgeRec {
    /// Wire bytes per record in the serialized framing.
    pub const WIRE_BYTES: usize = 16;
}

/// Serializes a batch of records (length-prefixed).
pub fn encode_batch(records: &[EdgeRec]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + records.len() * EdgeRec::WIRE_BYTES);
    buf.put_u64_le(records.len() as u64);
    for r in records {
        buf.put_u64_le(r.u);
        buf.put_u64_le(r.v);
    }
    buf.freeze()
}

/// Deserializes a batch produced by [`encode_batch`].
///
/// # Panics
/// Panics on a malformed frame (truncated or over-long).
pub fn decode_batch(mut buf: Bytes) -> Vec<EdgeRec> {
    assert!(buf.len() >= 8, "frame shorter than its header");
    let n = buf.get_u64_le() as usize;
    assert_eq!(
        buf.len(),
        n * EdgeRec::WIRE_BYTES,
        "frame length disagrees with record count"
    );
    (0..n)
        .map(|_| EdgeRec {
            u: buf.get_u64_le(),
            v: buf.get_u64_le(),
        })
        .collect()
}

/// Checked [`decode_batch`] over a borrowed slice, for payloads that
/// arrived over a real socket: malformed framing is a static
/// description (mapped by the transport to `ExchangeError::Protocol`),
/// never a panic and never a partial batch.
pub fn try_decode_batch(buf: &[u8]) -> Result<Vec<EdgeRec>, &'static str> {
    if buf.len() < 8 {
        return Err("record frame shorter than its count header");
    }
    let n = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes")) as usize;
    let body = &buf[8..];
    if body.len() != n.checked_mul(EdgeRec::WIRE_BYTES).ok_or("record count overflows")? {
        return Err("record frame length disagrees with its count");
    }
    Ok(body
        .chunks_exact(EdgeRec::WIRE_BYTES)
        .map(|c| EdgeRec {
            u: u64::from_le_bytes(c[0..8].try_into().expect("8 bytes")),
            v: u64::from_le_bytes(c[8..16].try_into().expect("8 bytes")),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let recs = vec![
            EdgeRec { u: 0, v: 1 },
            EdgeRec { u: u64::MAX - 1, v: 42 },
        ];
        let bytes = encode_batch(&recs);
        assert_eq!(bytes.len(), 8 + 2 * 16);
        assert_eq!(decode_batch(bytes), recs);
    }

    #[test]
    fn empty_batch() {
        let bytes = encode_batch(&[]);
        assert_eq!(decode_batch(bytes), Vec::new());
    }

    #[test]
    #[should_panic(expected = "disagrees")]
    fn truncated_frame_rejected() {
        let mut b = BytesMut::new();
        b.put_u64_le(5);
        b.put_u64_le(1);
        decode_batch(b.freeze());
    }

    #[test]
    fn checked_decode_matches_and_rejects() {
        let recs = vec![EdgeRec { u: 3, v: 9 }, EdgeRec { u: 0, v: u64::MAX }];
        let bytes = encode_batch(&recs);
        assert_eq!(try_decode_batch(&bytes).unwrap(), recs);
        assert!(try_decode_batch(&bytes[..bytes.len() - 1]).is_err());
        assert!(try_decode_batch(&bytes[..4]).is_err());
        let mut grown = bytes.to_vec();
        grown.push(0);
        assert!(try_decode_batch(&grown).is_err());
        assert_eq!(try_decode_batch(&encode_batch(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn ordering_is_by_u_then_v() {
        let a = EdgeRec { u: 1, v: 9 };
        let b = EdgeRec { u: 2, v: 0 };
        assert!(a < b);
    }
}
