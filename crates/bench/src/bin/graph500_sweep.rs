//! Multi-scale Graph500 sweep on the threaded backend, CSV output —
//! handy for tracking host-TEPS across graph sizes and rank counts.
//!
//! Usage: `graph500_sweep [min_scale] [max_scale] [ranks] [roots]`

use sw_graph500::{run_benchmark, Graph500Spec};
use swbfs_core::BfsConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let min_scale: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let max_scale: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(18);
    let ranks: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);
    let roots: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(8);

    println!(
        "scale,vertices,edges,ranks,roots,construction_s,min_teps,median_teps,harmonic_mean_teps,max_teps"
    );
    for scale in min_scale..=max_scale {
        let spec = Graph500Spec::quick(scale, 7, roots);
        match run_benchmark(&spec, ranks, BfsConfig::threaded_small((ranks / 4).max(1))) {
            Ok(res) => {
                let s = &res.stats;
                println!(
                    "{scale},{},{},{ranks},{},{:.3},{:.3e},{:.3e},{:.3e},{:.3e}",
                    spec.num_vertices(),
                    spec.num_edges(),
                    res.runs.len(),
                    res.construction_s,
                    s.min,
                    s.median,
                    s.harmonic_mean,
                    s.max
                );
            }
            Err(e) => {
                eprintln!("scale {scale}: {e}");
            }
        }
    }
}
