//! BFS configuration: the axes Figure 11 sweeps plus the paper's tuning
//! constants.

use serde::{Deserialize, Serialize};

/// How inter-node messages travel (the Figure 11 "Direct" vs "Relay" axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Messaging {
    /// Point-to-point to the destination node — one connection per peer.
    Direct,
    /// Group-based message batching (§4.4): two-stage delivery through the
    /// N×M relay layout, one connection per group + per group-mate.
    Relay,
}

/// Where module processing runs (the Figure 11 "MPE" vs "CPE" axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Processing {
    /// Modules processed on the management core directly.
    Mpe,
    /// Modules processed on CPE clusters with contention-free shuffling
    /// (§4.3).
    Cpe,
}

/// Full configuration of a BFS run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BfsConfig {
    /// Message transport.
    pub messaging: Messaging,
    /// Module processing location.
    pub processing: Processing,
    /// Relay group size (nodes per group; the paper maps groups onto
    /// 256-node super nodes).
    pub group_size: u32,
    /// Direction heuristic: switch Top-Down → Bottom-Up when
    /// `m_frontier > m_unvisited / alpha` (Beamer's α, default 14).
    pub alpha: u64,
    /// Direction heuristic: switch Bottom-Up → Top-Down when
    /// `n_frontier < n / beta` (Beamer's β, default 24).
    pub beta: u64,
    /// Hub vertices replicated during Top-Down levels (2^12, §5).
    pub top_down_hubs: usize,
    /// Hub vertices replicated during Bottom-Up levels (2^14, §5).
    pub bottom_up_hubs: usize,
    /// Inputs smaller than this are processed on the MPE instead of
    /// notifying a CPE cluster (1 KB, §5 "quick processing for small
    /// messages").
    pub small_input_bytes: usize,
    /// Wire size of one edge message, bytes.
    pub edge_msg_bytes: usize,
    /// Sort inboxes before applying, making parent maps independent of
    /// transport (Direct and Relay then produce identical trees).
    pub canonical_order: bool,
    /// Disable the direction optimization and traverse Top-Down only — the
    /// conventional-BFS ablation baseline.
    pub force_top_down: bool,
    /// Delta+varint message compression (§7 future-work integration; off in
    /// the paper's configuration).
    pub compress: bool,
    /// Reorder neighbour lists by descending degree (the Yasui-style
    /// Bottom-Up refinement, §7 ref \[25\]; off in the paper's
    /// configuration).
    pub degree_ordered_adjacency: bool,
    /// Bounded-retry and degradation policy for injected transport
    /// faults; only consulted when a fault session is armed.
    pub retry: crate::faults::RetryPolicy,
    /// Build byte-coded copies of high-degree rows at construction and
    /// decode them in the generators instead of the plain CSR slices.
    pub compress_hub_rows: bool,
    /// Degree threshold for [`compress_hub_rows`](Self::compress_hub_rows):
    /// rows with at least this many neighbours get a coded copy.
    pub hub_compress_min_degree: u64,
    /// Run the preserved pre-word-parallel generator kernels
    /// ([`crate::modules::reference`]) instead of the word-parallel ones —
    /// the differential-testing and benchmarking baseline, never a
    /// production setting.
    pub reference_kernels: bool,
}

impl Default for BfsConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl BfsConfig {
    /// The paper's final configuration: Relay messaging, CPE processing,
    /// groups of 256, α=14/β=24, 2^12/2^14 hubs, 1 KB small-input cutoff.
    pub fn paper() -> Self {
        Self {
            messaging: Messaging::Relay,
            processing: Processing::Cpe,
            group_size: 256,
            alpha: 14,
            beta: 24,
            top_down_hubs: 1 << 12,
            bottom_up_hubs: 1 << 14,
            small_input_bytes: 1024,
            edge_msg_bytes: 8,
            canonical_order: true,
            force_top_down: false,
            compress: false,
            degree_ordered_adjacency: false,
            retry: crate::faults::RetryPolicy::default(),
            compress_hub_rows: false,
            hub_compress_min_degree: 64,
            reference_kernels: false,
        }
    }

    /// A configuration scaled for small threaded runs: groups of
    /// `group_size` ranks and proportionally fewer hubs, so the relay and
    /// hub machinery is exercised even with a handful of ranks.
    pub fn threaded_small(group_size: u32) -> Self {
        Self {
            group_size,
            top_down_hubs: 1 << 8,
            bottom_up_hubs: 1 << 10,
            ..Self::paper()
        }
    }

    /// Returns a copy with the given messaging mode.
    pub fn with_messaging(mut self, m: Messaging) -> Self {
        self.messaging = m;
        self
    }

    /// Returns a copy with the given processing mode.
    pub fn with_processing(mut self, p: Processing) -> Self {
        self.processing = p;
        self
    }

    /// Returns a copy with message compression enabled.
    pub fn with_compression(mut self) -> Self {
        self.compress = true;
        self
    }

    /// Sanity-checks the configuration, returning a description of the
    /// first problem found. Both backends call this at construction.
    pub fn validate(&self) -> Result<(), String> {
        if self.group_size == 0 {
            return Err("group_size must be positive".into());
        }
        if self.alpha == 0 || self.beta == 0 {
            return Err("direction thresholds must be positive".into());
        }
        if self.top_down_hubs > self.bottom_up_hubs {
            return Err(format!(
                "top_down_hubs ({}) must not exceed bottom_up_hubs ({}): the \
                 Top-Down set is a prefix of the Bottom-Up set",
                self.top_down_hubs, self.bottom_up_hubs
            ));
        }
        if self.edge_msg_bytes == 0 {
            return Err("edge_msg_bytes must be positive".into());
        }
        if self.compress_hub_rows && self.hub_compress_min_degree == 0 {
            return Err(
                "hub_compress_min_degree must be positive: coding every \
                 empty row wastes a chunk header per vertex"
                    .into(),
            );
        }
        self.retry.validate()?;
        Ok(())
    }

    /// The wire codec this configuration implies.
    pub fn codec(&self) -> crate::exchange::Codec {
        if self.compress {
            crate::exchange::Codec::Compressed
        } else {
            crate::exchange::Codec::Fixed(self.edge_msg_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_spec() {
        let c = BfsConfig::paper();
        assert_eq!(c.group_size, 256);
        assert_eq!(c.top_down_hubs, 4096);
        assert_eq!(c.bottom_up_hubs, 16384);
        assert_eq!(c.small_input_bytes, 1024);
        assert_eq!(c.alpha, 14);
        assert_eq!(c.beta, 24);
        assert_eq!(c.messaging, Messaging::Relay);
        assert_eq!(c.processing, Processing::Cpe);
    }

    #[test]
    fn validate_catches_nonsense() {
        assert!(BfsConfig::paper().validate().is_ok());
        assert!(BfsConfig {
            group_size: 0,
            ..BfsConfig::paper()
        }
        .validate()
        .is_err());
        assert!(BfsConfig {
            alpha: 0,
            ..BfsConfig::paper()
        }
        .validate()
        .is_err());
        assert!(BfsConfig {
            top_down_hubs: 1 << 15,
            ..BfsConfig::paper()
        }
        .validate()
        .is_err());
        assert!(BfsConfig {
            edge_msg_bytes: 0,
            ..BfsConfig::paper()
        }
        .validate()
        .is_err());
        assert!(BfsConfig {
            compress_hub_rows: true,
            hub_compress_min_degree: 0,
            ..BfsConfig::paper()
        }
        .validate()
        .is_err());
        assert!(BfsConfig {
            retry: crate::faults::RetryPolicy {
                max_attempts: 0,
                ..Default::default()
            },
            ..BfsConfig::paper()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn builders_override_axes() {
        let c = BfsConfig::paper()
            .with_messaging(Messaging::Direct)
            .with_processing(Processing::Mpe);
        assert_eq!(c.messaging, Messaging::Direct);
        assert_eq!(c.processing, Processing::Mpe);
    }
}
