//! Compressed Sparse Row adjacency.
//!
//! The paper stores the (symmetrized) adjacency matrix in CSR and partitions
//! it by rows. This module builds a CSR from an edge list — either the whole
//! graph or only the rows owned by one partition — with rayon-parallel
//! counting sort. Neighbour lists are sorted, which the Bottom-Up traversal
//! exploits (early exit on the first parent found is deterministic).

use crate::store::view::U64s;
use crate::{EdgeList, Vid};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// CSR adjacency for a contiguous row range `[row_base, row_base + rows)`.
///
/// Column ids are always *global* vertex ids; rows are addressed by local
/// index (`0..num_rows`). A whole-graph CSR is simply one with
/// `row_base == 0` and `rows == num_vertices`.
///
/// Storage is a pair of [`U64s`] views: builders produce owned vectors,
/// while [`GraphStore`](crate::store::GraphStore) opens hand out
/// zero-copy views over the store's backing bytes — same type, same
/// kernels, no copies. Equality is by content either way.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    /// Global id of row 0.
    row_base: Vid,
    /// Global vertex count (id space size).
    num_vertices: Vid,
    /// `offsets[i]..offsets[i+1]` indexes `targets` for local row `i`.
    offsets: U64s,
    /// Concatenated neighbour lists (global ids), sorted within each row.
    targets: U64s,
}

impl Csr {
    /// Builds the CSR over all vertices from an undirected edge list.
    ///
    /// Every non-loop edge contributes entries in both directions; self
    /// loops contribute one. Duplicate edges are kept (Graph500 permits
    /// multigraph inputs; BFS is insensitive to multiplicity).
    pub fn from_edge_list(el: &EdgeList) -> Self {
        Self::from_edge_list_rows(el, 0, el.num_vertices)
    }

    /// Builds only the rows `[row_base, row_base + rows)` from an edge list,
    /// i.e. the CSR partition owned by one rank under 1-D partitioning.
    pub fn from_edge_list_rows(el: &EdgeList, row_base: Vid, rows: Vid) -> Self {
        assert!(row_base + rows <= el.num_vertices, "row range out of bounds");
        let rows_usize = usize::try_from(rows).expect("row count exceeds address space");
        let in_range = |x: Vid| x >= row_base && x < row_base + rows;

        // 1. Count degree per owned row (atomic histogram).
        let counts: Vec<AtomicU64> = (0..rows_usize).map(|_| AtomicU64::new(0)).collect();
        el.edges.par_iter().for_each(|&(u, v)| {
            if in_range(u) {
                counts[(u - row_base) as usize].fetch_add(1, Ordering::Relaxed);
            }
            if u != v && in_range(v) {
                counts[(v - row_base) as usize].fetch_add(1, Ordering::Relaxed);
            }
        });

        // 2. Prefix sum -> offsets.
        let mut offsets = Vec::with_capacity(rows_usize + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for c in &counts {
            acc += c.load(Ordering::Relaxed);
            offsets.push(acc);
        }
        let nnz = usize::try_from(acc).expect("nnz exceeds address space");

        // 3. Scatter targets using the counts as per-row write cursors.
        let cursors: Vec<AtomicU64> = offsets[..rows_usize]
            .iter()
            .map(|&o| AtomicU64::new(o))
            .collect();
        let targets: Vec<AtomicU64> = (0..nnz).map(|_| AtomicU64::new(0)).collect();
        el.edges.par_iter().for_each(|&(u, v)| {
            if in_range(u) {
                let slot = cursors[(u - row_base) as usize].fetch_add(1, Ordering::Relaxed);
                targets[slot as usize].store(v, Ordering::Relaxed);
            }
            if u != v && in_range(v) {
                let slot = cursors[(v - row_base) as usize].fetch_add(1, Ordering::Relaxed);
                targets[slot as usize].store(u, Ordering::Relaxed);
            }
        });
        let mut targets: Vec<Vid> = targets
            .into_iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();

        // 4. Sort each row's neighbour list (deterministic layout).
        {
            let offs = &offsets;
            // Split `targets` into per-row slices for parallel sorting.
            let mut slices: Vec<&mut [Vid]> = Vec::with_capacity(rows_usize);
            let mut rest: &mut [Vid] = &mut targets;
            for i in 0..rows_usize {
                let len = (offs[i + 1] - offs[i]) as usize;
                let (head, tail) = rest.split_at_mut(len);
                slices.push(head);
                rest = tail;
            }
            slices.par_iter_mut().for_each(|s| s.sort_unstable());
        }

        Self {
            row_base,
            num_vertices: el.num_vertices,
            offsets: offsets.into(),
            targets: targets.into(),
        }
    }

    /// Assembles a CSR from raw storage views — the store-open seam.
    ///
    /// The caller (the store module, after checksum verification) is
    /// responsible for offsets coherence; cheap shape invariants are
    /// asserted here.
    pub(crate) fn from_parts(row_base: Vid, num_vertices: Vid, offsets: U64s, targets: U64s) -> Self {
        assert!(!offsets.is_empty(), "offsets must hold rows + 1 entries");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len() as u64,
            "offsets must end at the target count"
        );
        Self { row_base, num_vertices, offsets, targets }
    }

    /// Global id of the first owned row.
    pub fn row_base(&self) -> Vid {
        self.row_base
    }

    /// Number of owned rows.
    pub fn num_rows(&self) -> Vid {
        (self.offsets.len() - 1) as Vid
    }

    /// Size of the global vertex id space.
    pub fn num_vertices(&self) -> Vid {
        self.num_vertices
    }

    /// Total stored directed adjacency entries.
    pub fn num_entries(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// True if the global vertex is an owned row.
    pub fn owns(&self, v: Vid) -> bool {
        v >= self.row_base && v - self.row_base < self.num_rows()
    }

    /// Neighbours (global ids, sorted) of an owned global vertex.
    ///
    /// # Panics
    /// Panics if `v` is not owned.
    pub fn neighbors(&self, v: Vid) -> &[Vid] {
        assert!(self.owns(v), "vertex {v} not in rows {}..", self.row_base);
        self.neighbors_local((v - self.row_base) as usize)
    }

    /// Neighbours of local row `i`.
    pub fn neighbors_local(&self, i: usize) -> &[Vid] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree (with multiplicity) of an owned global vertex.
    pub fn degree(&self, v: Vid) -> u64 {
        self.neighbors(v).len() as u64
    }

    /// Degree of local row `i`.
    pub fn degree_local(&self, i: usize) -> u64 {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Iterates `(global_id, neighbors)` over owned rows.
    pub fn rows(&self) -> impl Iterator<Item = (Vid, &[Vid])> + '_ {
        (0..self.num_rows() as usize).map(move |i| (self.row_base + i as Vid, self.neighbors_local(i)))
    }

    /// Raw offsets slice (for traffic models and tests).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw concatenated targets slice (for store persistence).
    pub(crate) fn targets_raw(&self) -> &[Vid] {
        &self.targets
    }

    /// True when both storage sections are zero-copy views into a
    /// mapped store region (no owned adjacency bytes).
    pub fn is_mapped(&self) -> bool {
        self.offsets.is_mapped() && self.targets.is_mapped()
    }

    /// Reorders every neighbour list by **descending degree** of the
    /// neighbour (ties by ascending id) — the Yasui-style Bottom-Up
    /// refinement (paper §7, ref \[25\]): scanning likely parents (hubs)
    /// first lets the Bottom-Up early exit fire sooner. `degree_of` must
    /// return the global degree of any vertex id.
    ///
    /// # Panics
    /// Panics on a store-mapped CSR: mapped sections are read-only.
    /// Reorder before persisting — the store manifest records the
    /// ordering, so a loaded partition never needs it again.
    pub fn reorder_neighbors_by_degree(&mut self, degree_of: impl Fn(Vid) -> u64 + Sync) {
        let rows = self.num_rows() as usize;
        let offs: Vec<u64> = self.offsets.to_vec();
        let mut slices: Vec<&mut [Vid]> = Vec::with_capacity(rows);
        let mut rest: &mut [Vid] = self.targets.as_mut_slice();
        for i in 0..rows {
            let len = (offs[i + 1] - offs[i]) as usize;
            let (head, tail) = rest.split_at_mut(len);
            slices.push(head);
            rest = tail;
        }
        let deg = &degree_of;
        slices.par_iter_mut().for_each(|s| {
            s.sort_unstable_by(|&a, &b| deg(b).cmp(&deg(a)).then(a.cmp(&b)));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    fn tiny() -> EdgeList {
        // 0-1, 0-2, 1-2, 3-3 (loop), duplicate 0-1
        EdgeList::new(5, vec![(0, 1), (0, 2), (1, 2), (3, 3), (1, 0)])
    }

    #[test]
    fn whole_graph_shape() {
        let csr = Csr::from_edge_list(&tiny());
        assert_eq!(csr.num_rows(), 5);
        // 0: {1,2,1} 1: {0,2,0} 2: {0,1} 3: {3} 4: {}
        assert_eq!(csr.num_entries(), 3 + 3 + 2 + 1);
        assert_eq!(csr.neighbors(0), &[1, 1, 2]);
        assert_eq!(csr.neighbors(1), &[0, 0, 2]);
        assert_eq!(csr.neighbors(2), &[0, 1]);
        assert_eq!(csr.neighbors(3), &[3]);
        assert_eq!(csr.neighbors(4), &[] as &[Vid]);
    }

    #[test]
    fn partitioned_rows_match_whole() {
        let el = tiny();
        let whole = Csr::from_edge_list(&el);
        let part = Csr::from_edge_list_rows(&el, 1, 3);
        assert_eq!(part.row_base(), 1);
        assert_eq!(part.num_rows(), 3);
        for v in 1..4 {
            assert_eq!(part.neighbors(v), whole.neighbors(v));
        }
        assert!(!part.owns(0));
        assert!(!part.owns(4));
    }

    #[test]
    fn self_loop_counted_once() {
        let el = EdgeList::new(2, vec![(1, 1)]);
        let csr = Csr::from_edge_list(&el);
        assert_eq!(csr.degree(1), 1);
        assert_eq!(csr.degree(0), 0);
    }

    #[test]
    fn symmetric_degree_sum() {
        let el = crate::generate_kronecker(&crate::KroneckerConfig::graph500(10, 4));
        let csr = Csr::from_edge_list(&el);
        let loops = el.self_loops() as u64;
        assert_eq!(csr.num_entries(), 2 * el.len() as u64 - loops);
    }

    #[test]
    fn rows_sorted() {
        let el = crate::generate_kronecker(&crate::KroneckerConfig::graph500(8, 4));
        let csr = Csr::from_edge_list(&el);
        for (_, nbrs) in csr.rows() {
            assert!(nbrs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "not in rows")]
    fn neighbors_panics_on_unowned() {
        let csr = Csr::from_edge_list_rows(&tiny(), 1, 2);
        csr.neighbors(0);
    }

    #[test]
    fn degree_reorder_puts_hubs_first() {
        // 0 is the hub (degree 3); 1-2 edge makes 1 and 2 degree 2.
        let el = EdgeList::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
        let full = Csr::from_edge_list(&el);
        let degs: Vec<u64> = (0..4).map(|v| full.degree(v)).collect();
        let mut csr = Csr::from_edge_list(&el);
        csr.reorder_neighbors_by_degree(|v| degs[v as usize]);
        // 3's only neighbour is 0; 1's neighbours: 0 (deg 3) then 2 (deg 2).
        assert_eq!(csr.neighbors(1), &[0, 2]);
        assert_eq!(csr.neighbors(2), &[0, 1]);
        // Ascending id among equal degrees.
        assert_eq!(csr.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn deterministic_build() {
        let el = crate::generate_kronecker(&crate::KroneckerConfig::graph500(9, 17));
        let a = Csr::from_edge_list(&el);
        let b = Csr::from_edge_list(&el);
        assert_eq!(a, b);
    }
}
