//! Regenerates Figure 5: memory bandwidth vs number of participating CPEs
//! at the 256 B chunk size — the measurement behind the paper's "no less
//! than 16 CPEs" rule for producer/consumer sizing.

use sw_arch::{gbps, ChipConfig, DmaEngine};
use sw_bench::print_table;

fn main() {
    let chip = ChipConfig::sw26010();
    let dma = DmaEngine::new(chip);
    let bytes: u64 = 256 << 20;
    let chunk = chip.dma_batch_bytes;

    println!("Figure 5: memory bandwidth vs #CPEs at {chunk} B chunks (simulated measurement)\n");
    let mut rows = Vec::new();
    for n in [1u32, 2, 4, 8, 12, 16, 20, 24, 32, 48, 64] {
        let t = dma.transfer_ns(bytes, chunk, n);
        let bw = gbps(bytes, t);
        rows.push(vec![
            format!("{n}"),
            format!("{bw:.2}"),
            format!("{:.0}%", 100.0 * bw / chip.cluster_peak_gbps),
        ]);
    }
    print_table(&["CPEs", "bandwidth (GB/s)", "of peak"], &rows);
    println!();
    println!("Paper shape target: ~16 CPEs already generate an acceptable");
    println!("(>90% of peak) bandwidth; more CPEs add nothing.");
}
