//! Bridge between the BFS and the `sw-arch` contention-free shuffle
//! engine: the destination-bucket algebra for each messaging mode and the
//! SPM feasibility check that produces the Direct-CPE crash.
//!
//! A reaction module's shuffle buckets are its distinct *message targets*:
//!
//! * **Direct** — one bucket per peer rank (`P` buckets): every record goes
//!   straight to its destination node's send buffer. This is what blows
//!   past the consumers' SPM capacity as the job grows (§6.1: "it crashes
//!   when the scale increases because of the limitation of SPM size").
//! * **Relay** — one bucket per remote *group* plus one per group-mate
//!   (`N + M - 1` buckets): §4.3's "Section 4.4 explains how to extend it
//!   to 40,000".
//!
//! The BFS-mode shuffle layout reserves extra consumer SPM for the
//! replicated hub bitmaps, which lowers the §4.3 stand-alone figure of
//! 1024 destinations to ~944 in traversal context.

use crate::config::{BfsConfig, Messaging, Processing};
use crate::error::ExecError;
use sw_arch::{ChipConfig, ShuffleEngine, ShuffleLayout};
use sw_net::GroupLayout;

/// The shuffle layout a BFS reaction module runs with: the paper's Figure 6
/// roles, with consumer SPM additionally reserved for the hub bitmaps.
pub fn bfs_shuffle_layout(cfg: &BfsConfig) -> ShuffleLayout {
    let mut layout = ShuffleLayout::paper_default();
    let hub_bitmap_bytes = (cfg.top_down_hubs.div_ceil(8) + cfg.bottom_up_hubs.div_ceil(8)) as u32;
    layout.consumer_reserved_bytes += hub_bitmap_bytes;
    layout
}

/// Distinct shuffle destinations a reaction module on `rank` addresses.
pub fn bucket_count(messaging: Messaging, layout: &GroupLayout, rank: u32) -> usize {
    match messaging {
        Messaging::Direct => layout.nodes() as usize,
        Messaging::Relay => {
            // Remote groups + own group-mates + self slot.
            let n = layout.num_groups() as usize;
            let m = layout.group_size_of(layout.group_of(rank)) as usize;
            n + m - 1
        }
    }
}

/// Checks that the configured processing mode can actually shuffle into
/// the required number of destinations — the feasibility gate both
/// backends apply before running.
pub fn check_chip_feasibility(
    cfg: &BfsConfig,
    chip: &ChipConfig,
    layout: &GroupLayout,
) -> Result<(), ExecError> {
    if cfg.processing == Processing::Mpe {
        return Ok(()); // MPE buffers live in main memory.
    }
    let shuffle_layout = bfs_shuffle_layout(cfg);
    let engine = ShuffleEngine::new(*chip, shuffle_layout.clone()).map_err(ExecError::Arch)?;
    engine.verify_deadlock_free().map_err(ExecError::Arch)?;
    let max = shuffle_layout.max_destinations(chip);
    // The worst rank is one in a full group.
    let worst = (0..layout.nodes().min(4096))
        .map(|r| bucket_count(cfg.messaging, layout, r))
        .max()
        .unwrap_or(0)
        .max(match cfg.messaging {
            Messaging::Direct => layout.nodes() as usize,
            Messaging::Relay => {
                (layout.num_groups() + layout.group_size().min(layout.nodes())) as usize - 1
            }
        });
    if worst > max {
        return Err(ExecError::Arch(sw_arch::ArchError::TooManyDestinations {
            requested: worst,
            max,
        }));
    }
    Ok(())
}

/// Effective module-processing throughput, GB/s of input, for the given
/// processing mode: the shuffle pipeline bound on CPE clusters, or the
/// MPE's read+write-shared bandwidth degraded by the same pipeline
/// efficiency. The ratio between the two is the paper's 10×.
pub fn processing_rate_gbps(cfg: &BfsConfig, chip: &ChipConfig) -> f64 {
    match cfg.processing {
        Processing::Cpe => {
            let engine = ShuffleEngine::new(*chip, bfs_shuffle_layout(cfg))
                .expect("paper layout is valid");
            engine.throughput_bound_gbps()
        }
        Processing::Mpe => {
            let mpe = sw_arch::Mpe::new(*chip);
            mpe.bandwidth_gbps(chip.dma_batch_bytes) / 2.0 * chip.shuffle_efficiency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_layout_reserves_hub_bitmaps() {
        let cfg = BfsConfig::paper();
        let l = bfs_shuffle_layout(&cfg);
        assert_eq!(l.consumer_reserved_bytes, 32 * 1024 + 512 + 2048);
        // 944 destinations in traversal context.
        assert_eq!(l.max_destinations(&ChipConfig::sw26010()), 944);
    }

    #[test]
    fn bucket_counts_per_mode() {
        let layout = GroupLayout::new(1024, 256);
        assert_eq!(bucket_count(Messaging::Direct, &layout, 0), 1024);
        assert_eq!(bucket_count(Messaging::Relay, &layout, 0), 4 + 256 - 1);
    }

    #[test]
    fn direct_cpe_crashes_past_944_nodes() {
        let chip = ChipConfig::sw26010();
        let cfg = BfsConfig::paper().with_messaging(Messaging::Direct);
        // 256 nodes: fine (the paper's "better performance for up to 256").
        check_chip_feasibility(&cfg, &chip, &GroupLayout::new(256, 256)).unwrap();
        check_chip_feasibility(&cfg, &chip, &GroupLayout::new(512, 256)).unwrap();
        // 1024 nodes: SPM capacity exceeded -> the Figure 11 crash.
        let err = check_chip_feasibility(&cfg, &chip, &GroupLayout::new(1024, 256)).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Arch(sw_arch::ArchError::TooManyDestinations { .. })
        ));
    }

    #[test]
    fn relay_cpe_feasible_at_full_machine() {
        let chip = ChipConfig::sw26010();
        let cfg = BfsConfig::paper();
        check_chip_feasibility(&cfg, &chip, &GroupLayout::new(40_960, 256)).unwrap();
    }

    #[test]
    fn mpe_mode_never_spm_limited() {
        let chip = ChipConfig::sw26010();
        let cfg = BfsConfig::paper()
            .with_messaging(Messaging::Direct)
            .with_processing(Processing::Mpe);
        check_chip_feasibility(&cfg, &chip, &GroupLayout::new(40_960, 256)).unwrap();
    }

    #[test]
    fn cpe_rate_is_10x_mpe_rate() {
        let chip = ChipConfig::sw26010();
        let cpe = processing_rate_gbps(&BfsConfig::paper(), &chip);
        let mpe = processing_rate_gbps(
            &BfsConfig::paper().with_processing(Processing::Mpe),
            &chip,
        );
        let ratio = cpe / mpe;
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
        assert!((9.0..11.0).contains(&cpe), "cpe rate {cpe}");
    }
}
