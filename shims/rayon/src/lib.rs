//! Offline shim for the `rayon` API subset this workspace uses.
//!
//! The parallel-iterator entry points (`par_iter`, `par_iter_mut`,
//! `into_par_iter`) return the corresponding *standard* iterators, so
//! every adapter chain (`map`, `zip`, `filter`, `collect`, `sum`,
//! `for_each`, …) type-checks and runs **sequentially**. `flat_map_iter`
//! and `with_min_len`, which exist only on rayon's iterators, are
//! provided by a blanket extension trait.
//!
//! This container exposes a single CPU, so sequential execution costs
//! nothing here; on a multi-core machine, swapping this shim for the
//! real rayon re-enables parallelism with no call-site changes.

/// Builder mirroring `rayon::ThreadPoolBuilder` (thread count ignored).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    _threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepted and ignored: the shim always executes inline.
    pub fn num_threads(mut self, n: usize) -> Self {
        self._threads = n;
        self
    }

    /// Builds the (trivial) pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (unreachable in shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Trivial pool: `install` just invokes the closure inline.
pub struct ThreadPool;

impl ThreadPool {
    /// Runs `f` "inside" the pool.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }
}

/// Runs both closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of worker threads (always 1 in the shim).
pub fn current_num_threads() -> usize {
    1
}

pub mod iter {
    //! Sequential stand-ins for rayon's parallel iterator traits.

    /// `into_par_iter()` — the standard `IntoIterator` under another name.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Converts into a ("parallel") iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter()` on shared references.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Borrowing ("parallel") iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Item = <&'a C as IntoIterator>::Item;
        type Iter = <&'a C as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` on unique references.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Mutably borrowing ("parallel") iterator.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
    where
        &'a mut C: IntoIterator,
    {
        type Item = <&'a mut C as IntoIterator>::Item;
        type Iter = <&'a mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Adapters that exist on rayon's iterators but not on std's.
    pub trait ParallelIteratorExt: Iterator + Sized {
        /// rayon's `flat_map_iter` — sequential `flat_map`.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }

        /// Work-splitting hint; meaningless sequentially.
        fn with_min_len(self, _len: usize) -> Self {
            self
        }

        /// Work-splitting hint; meaningless sequentially.
        fn with_max_len(self, _len: usize) -> Self {
            self
        }
    }

    impl<I: Iterator> ParallelIteratorExt for I {}
}

pub mod slice {
    //! Sequential stand-ins for rayon's parallel slice traits.

    /// rayon's `par_chunks` — sequential `chunks`.
    pub trait ParallelSlice<T> {
        /// Chunked ("parallel") iteration over a shared slice.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// rayon's `par_chunks_mut` — sequential `chunks_mut`.
    pub trait ParallelSliceMut<T> {
        /// Chunked ("parallel") iteration over a unique slice.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

pub mod prelude {
    //! Everything `use rayon::prelude::*` is expected to bring in.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIteratorExt,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn iterator_surface_works() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let s: u64 = v.par_iter().sum();
        assert_eq!(s, 10);
        let flat: Vec<u64> = (0u64..3).into_par_iter().flat_map_iter(|x| 0..x).collect();
        assert_eq!(flat, vec![0, 0, 1]);
        let mut m = vec![3, 1, 2];
        m.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(m, vec![13, 11, 12]);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
    }
}
