//! Offline shim for the `crossbeam` API subset this workspace uses:
//! `crossbeam::channel::{unbounded, Sender, Receiver}`, implemented
//! over `std::sync::mpsc` (whose `Sender` has been `Sync` since Rust
//! 1.72, which is what the SPMD channel mesh relies on).

pub mod channel {
    //! MPMC-flavoured unbounded channel over `std::sync::mpsc`.

    use std::sync::mpsc;

    /// Sending half (cloneable, shareable across threads).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side is gone. Like upstream,
    /// `Debug` does not require `T: Debug` and elides the payload.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when every sender is gone and the queue is empty.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `t`; fails only if the receiver was dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t).map_err(|mpsc::SendError(t)| SendError(t))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive (`Err` when empty or disconnected).
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn round_trip_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                tx.send(1).unwrap();
            });
            s.spawn(move || {
                tx2.send(2).unwrap();
            });
        });
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn sender_is_sync() {
        fn assert_sync<T: Sync>(_: &T) {}
        let (tx, _rx) = unbounded::<u64>();
        assert_sync(&tx);
    }
}
