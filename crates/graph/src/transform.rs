//! Edge-list transforms: the clean-up passes real deployments run between
//! generation and construction.
//!
//! Graph500 inputs are multigraphs with self-loops by design; downstream
//! consumers (and some of the example workloads) want simple graphs,
//! degree-ordered labels, or just the giant component. All transforms are
//! deterministic.

use crate::{Csr, EdgeList, Vid};
use std::collections::HashSet;

/// Removes self-loops.
pub fn remove_self_loops(el: &EdgeList) -> EdgeList {
    EdgeList::new(
        el.num_vertices,
        el.edges.iter().copied().filter(|&(u, v)| u != v).collect(),
    )
}

/// Removes duplicate undirected edges (keeps the first occurrence of each
/// `{u, v}`; self-loops dedup too).
pub fn dedup_edges(el: &EdgeList) -> EdgeList {
    let mut seen: HashSet<(Vid, Vid)> = HashSet::with_capacity(el.len());
    let mut edges = Vec::new();
    for &(u, v) in &el.edges {
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push((u, v));
        }
    }
    EdgeList::new(el.num_vertices, edges)
}

/// Relabels vertices by descending degree (the hubs become ids 0, 1, …) —
/// the whole-graph version of the Yasui layout refinement. Returns the
/// relabeled list and the permutation `new_id[old_id]`.
pub fn relabel_by_degree(el: &EdgeList) -> (EdgeList, Vec<Vid>) {
    let csr = Csr::from_edge_list(el);
    let mut order: Vec<Vid> = (0..el.num_vertices).collect();
    order.sort_by(|&a, &b| csr.degree(b).cmp(&csr.degree(a)).then(a.cmp(&b)));
    let mut new_id = vec![0 as Vid; el.num_vertices as usize];
    for (new, &old) in order.iter().enumerate() {
        new_id[old as usize] = new as Vid;
    }
    let edges = el
        .edges
        .iter()
        .map(|&(u, v)| (new_id[u as usize], new_id[v as usize]))
        .collect();
    (EdgeList::new(el.num_vertices, edges), new_id)
}

/// Extracts the largest connected component as its own compact graph.
/// Returns the sub-list plus the mapping `old -> Option<new>`.
pub fn largest_component(el: &EdgeList) -> (EdgeList, Vec<Option<Vid>>) {
    // Union-find over the edges.
    let n = el.num_vertices as usize;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut [usize], mut x: usize) -> usize {
        while p[x] != x {
            p[x] = p[p[x]];
            x = p[x];
        }
        x
    }
    for &(u, v) in &el.edges {
        let (a, b) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
        if a != b {
            parent[a.max(b)] = a.min(b);
        }
    }
    let mut size = vec![0u64; n];
    for v in 0..n {
        let r = find(&mut parent, v);
        size[r] += 1;
    }
    let giant = (0..n).max_by_key(|&r| (size[r], usize::MAX - r)).unwrap_or(0);

    let mut map: Vec<Option<Vid>> = vec![None; n];
    let mut next = 0 as Vid;
    for (v, slot) in map.iter_mut().enumerate() {
        if find(&mut parent, v) == giant {
            *slot = Some(next);
            next += 1;
        }
    }
    let edges = el
        .edges
        .iter()
        .filter_map(|&(u, v)| Some((map[u as usize]?, map[v as usize]?)))
        .collect();
    (EdgeList::new(next.max(1), edges), map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_kronecker, KroneckerConfig};

    fn messy() -> EdgeList {
        EdgeList::new(6, vec![(0, 1), (1, 0), (2, 2), (0, 1), (3, 4)])
    }

    #[test]
    fn self_loops_removed() {
        let el = remove_self_loops(&messy());
        assert_eq!(el.self_loops(), 0);
        assert_eq!(el.len(), 4);
    }

    #[test]
    fn dedup_collapses_both_directions() {
        let el = dedup_edges(&messy());
        // {0,1} once, {2,2} once, {3,4} once.
        assert_eq!(el.len(), 3);
        assert_eq!(el.edges[0], (0, 1));
    }

    #[test]
    fn relabel_puts_hubs_first() {
        // Star: 0 has degree 4.
        let el = EdgeList::new(5, vec![(4, 0), (4, 1), (4, 2), (4, 3)]);
        let (relabeled, new_id) = relabel_by_degree(&el);
        assert_eq!(new_id[4], 0, "hub must become vertex 0");
        let csr = Csr::from_edge_list(&relabeled);
        assert_eq!(csr.degree(0), 4);
        // Degree multiset preserved.
        let before = Csr::from_edge_list(&el);
        let mut a: Vec<u64> = (0..5).map(|v| before.degree(v)).collect();
        let mut b: Vec<u64> = (0..5).map(|v| csr.degree(v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn relabel_preserves_connectivity() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 3));
        let (relabeled, new_id) = relabel_by_degree(&el);
        use crate::stats::degree_stats;
        let a = degree_stats(&Csr::from_edge_list(&el));
        let b = degree_stats(&Csr::from_edge_list(&relabeled));
        assert_eq!(a.max, b.max);
        assert_eq!(a.isolated, b.isolated);
        // Bijection.
        let set: HashSet<Vid> = new_id.iter().copied().collect();
        assert_eq!(set.len(), el.num_vertices as usize);
    }

    #[test]
    fn largest_component_extracts_giant() {
        // Components: {0,1,2} (triangle), {3,4}, {5} isolated.
        let el = EdgeList::new(6, vec![(0, 1), (1, 2), (2, 0), (3, 4)]);
        let (sub, map) = largest_component(&el);
        assert_eq!(sub.num_vertices, 3);
        assert_eq!(sub.len(), 3);
        assert!(map[0].is_some() && map[1].is_some() && map[2].is_some());
        assert!(map[3].is_none() && map[5].is_none());
    }

    #[test]
    fn largest_component_of_kronecker_is_most_of_it() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 7));
        let (sub, _) = largest_component(&el);
        // Giant component holds the overwhelming share of edges.
        assert!(sub.len() as f64 > 0.95 * el.len() as f64);
        assert!(sub.num_vertices < el.num_vertices);
    }

    #[test]
    fn empty_graph_survives_everything() {
        let el = EdgeList::new(3, vec![]);
        assert_eq!(remove_self_loops(&el).len(), 0);
        assert_eq!(dedup_edges(&el).len(), 0);
        let (sub, _) = largest_component(&el);
        assert!(sub.is_empty());
    }
}
