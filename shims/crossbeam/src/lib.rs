//! Offline shim for the `crossbeam` API subset this workspace uses:
//! `crossbeam::channel::{unbounded, Sender, Receiver}`, implemented
//! over `std::sync::mpsc` (whose `Sender` has been `Sync` since Rust
//! 1.72, which is what the SPMD channel mesh relies on), and
//! `crossbeam::deque::{Worker, Stealer, Injector, Steal}`, the
//! work-stealing deque surface the rayon shim's pool is built on.

pub mod channel {
    //! MPMC-flavoured unbounded channel over `std::sync::mpsc`.

    use std::sync::mpsc;

    /// Sending half (cloneable, shareable across threads).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side is gone. Like upstream,
    /// `Debug` does not require `T: Debug` and elides the payload.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when every sender is gone and the queue is empty.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `t`; fails only if the receiver was dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t).map_err(|mpsc::SendError(t)| SendError(t))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive (`Err` when empty or disconnected).
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

pub mod deque {
    //! Work-stealing deques mirroring `crossbeam-deque`.
    //!
    //! Same ownership model as upstream — a [`Worker`] is the owning
    //! end of one queue, [`Stealer`]s are cloneable remote ends, and an
    //! [`Injector`] is a shared FIFO for external submission — but the
    //! storage is an honest `Mutex<VecDeque>` rather than upstream's
    //! lock-free Chase-Lev array. For the pool sizes this container
    //! runs (a handful of threads, coarse chunk-sized jobs) the lock is
    //! uncontended in practice; the API is what matters, so swapping in
    //! the real crate stays a `Cargo.toml` change.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt, mirroring `crossbeam_deque::Steal`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and may be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Converts to `Option`, treating `Retry` as no task.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// True if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// The owning end of one work-stealing queue (FIFO flavour).
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A new FIFO queue: `push` appends, `pop` and steals take from
        /// the front, so owner and thieves drain in submission order.
        pub fn new_fifo() -> Self {
            Self {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, t: T) {
            self.q.lock().unwrap().push_back(t);
        }

        /// Takes the owner-side next task.
        pub fn pop(&self) -> Option<T> {
            self.q.lock().unwrap().pop_front()
        }

        /// True if no task is queued.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }

        /// A remote (stealing) handle onto this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: self.q.clone() }
        }
    }

    /// A remote handle that steals from a [`Worker`]'s queue.
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { q: self.q.clone() }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the front task.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// A shared FIFO every thread may push to and steal from.
    #[derive(Default)]
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Self {
                q: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, t: T) {
            self.q.lock().unwrap().push_back(t);
        }

        /// Attempts to steal the front task.
        pub fn steal(&self) -> Steal<T> {
            match self.q.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True if no task is queued.
        pub fn is_empty(&self) -> bool {
            self.q.lock().unwrap().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn worker_pushes_thieves_steal() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
        assert!(w.is_empty());
    }

    #[test]
    fn injector_is_shared_fifo() {
        let inj = Injector::new();
        std::thread::scope(|sc| {
            let inj = &inj;
            for t in 0..4 {
                sc.spawn(move || inj.push(t));
            }
        });
        let mut got: Vec<i32> = std::iter::from_fn(|| inj.steal().success()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(inj.is_empty());
    }

    #[test]
    fn round_trip_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                tx.send(1).unwrap();
            });
            s.spawn(move || {
                tx2.send(2).unwrap();
            });
        });
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn sender_is_sync() {
        fn assert_sync<T: Sync>(_: &T) {}
        let (tx, _rx) = unbounded::<u64>();
        assert_sync(&tx);
    }
}
