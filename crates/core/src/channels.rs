//! Deprecated facade: the channel backend is now the channel-transport
//! configuration of the unified superstep engine.
//!
//! The SPMD runtime that used to live here — one OS thread per rank,
//! redundant per-rank policy loops, stat all-reduce broadcasts, hub
//! packet exchange — duplicated the entire BFS lifecycle of the
//! threaded backend. That lifecycle now lives once in
//! [`crate::engine::SuperstepEngine`]; the genuinely channel-specific
//! part (records really travelling between OS threads over a crossbeam
//! point-to-point mesh, one `Records` message per ordered rank pair per
//! phase, empty ones as termination indicators) became the
//! [`crate::engine::Channels`] transport. What remains here is a name:
//! [`ChannelCluster`] is exactly `SuperstepEngine<Channels>`, kept so
//! existing callers compile — and, now that both names share one
//! engine, the channel backend gained the full telemetry surface
//! (`pool_counters`, `injection_trace`, `is_degraded`) it used to lack.
//!
//! New code should build through [`crate::engine::ClusterBuilder`]:
//!
//! ```no_run
//! use swbfs_core::engine::{Channels, ClusterBuilder};
//! # let el = sw_graph::generate_kronecker(&sw_graph::KroneckerConfig::graph500(10, 1));
//! # let cfg = swbfs_core::BfsConfig::threaded_small(2);
//! let mut bfs = ClusterBuilder::new(&el, 4, cfg)
//!     .transport(Channels::new())
//!     .build()
//!     .unwrap();
//! ```

use crate::engine::{Channels, SuperstepEngine};

/// Deprecated name for [`SuperstepEngine`] over the [`Channels`]
/// transport. Prefer [`crate::engine::ClusterBuilder`].
pub type ChannelCluster = SuperstepEngine<Channels>;

#[cfg(test)]
mod tests {
    use super::ChannelCluster;
    use crate::config::BfsConfig;
    use crate::error::{ExchangeError, ExecError};
    use crate::faults::FaultPlan;
    use crate::threaded::ThreadedCluster;
    use sw_graph::{generate_kronecker, KroneckerConfig};

    #[test]
    fn channel_backend_matches_phase_backend() {
        let el = generate_kronecker(&KroneckerConfig::graph500(11, 13));
        let cfg = BfsConfig::threaded_small(4)
            .with_messaging(crate::config::Messaging::Direct);
        let mut phase = ThreadedCluster::new(&el, 6, cfg).unwrap();
        let mut chans = ChannelCluster::new(&el, 6, cfg).unwrap();
        for root in [0u64, 5, 1234] {
            let a = phase.run(root).unwrap();
            let b = chans.run(root).unwrap();
            assert_eq!(a.parents, b.parents, "root {root}");
        }
    }

    #[test]
    fn channel_level_stats_match_phase_backend() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 4));
        let cfg = BfsConfig::threaded_small(2)
            .with_messaging(crate::config::Messaging::Direct);
        let mut phase = ThreadedCluster::new(&el, 4, cfg).unwrap();
        let mut chans = ChannelCluster::new(&el, 4, cfg).unwrap();
        let a = phase.run(2).unwrap();
        let b = chans.run(2).unwrap();
        assert_eq!(a.depth(), b.depth());
        for (x, y) in a.levels.iter().zip(&b.levels) {
            assert_eq!(x.direction, y.direction, "level {}", x.level);
            assert_eq!(x.frontier_vertices, y.frontier_vertices);
            assert_eq!(x.settled, y.settled);
        }
    }

    #[test]
    fn repeat_runs_identical() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 2));
        let mut c = ChannelCluster::new(&el, 4, BfsConfig::threaded_small(2)).unwrap();
        let a = c.run(7).unwrap();
        let b = c.run(7).unwrap();
        assert_eq!(a.parents, b.parents);
    }

    #[test]
    fn single_rank_works() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 1));
        let mut c = ChannelCluster::new(&el, 1, BfsConfig::threaded_small(1)).unwrap();
        let out = c.run(3).unwrap();
        let oracle = crate::baseline::sequential_bfs_levels(&el, 3);
        assert_eq!(out.levels_from_parents(), oracle);
    }

    #[test]
    fn validates_under_graph500_rules() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 8));
        let mut c = ChannelCluster::new(&el, 5, BfsConfig::threaded_small(2)).unwrap();
        let out = c.run(1).unwrap();
        // Levels must equal the oracle.
        let oracle = crate::baseline::sequential_bfs_levels(&el, 1);
        assert_eq!(out.levels_from_parents(), oracle);
    }

    #[test]
    fn bad_inputs_rejected() {
        let el = generate_kronecker(&KroneckerConfig::graph500(8, 1));
        assert!(ChannelCluster::new(&el, 0, BfsConfig::threaded_small(1)).is_err());
        let mut c = ChannelCluster::new(&el, 2, BfsConfig::threaded_small(1)).unwrap();
        assert!(c.run(1 << 40).is_err());
    }

    #[test]
    fn survivable_faults_do_not_change_channel_output() {
        let el = generate_kronecker(&KroneckerConfig::graph500(11, 8));
        let cfg = BfsConfig::threaded_small(2);
        let mut clean = ChannelCluster::new(&el, 4, cfg).unwrap();
        let mut faulty = ChannelCluster::new(&el, 4, cfg)
            .unwrap()
            .with_fault_plan(FaultPlan::lossy(0xC0FF));
        for root in [0u64, 9, 250] {
            let a = clean.run(root).unwrap();
            let b = faulty.run(root).unwrap();
            assert_eq!(a.parents, b.parents, "root {root}");
            assert_eq!(a.levels_from_parents(), b.levels_from_parents());
        }
    }

    #[test]
    fn dead_link_is_a_structured_error_not_a_deadlock() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 4));
        let mut c = ChannelCluster::new(&el, 4, BfsConfig::threaded_small(2))
            .unwrap()
            .with_fault_plan(FaultPlan::quiet(7).with_dead_link(0, 1));
        match c.run(1) {
            Err(ExecError::Exchange(ExchangeError::RetriesExhausted { src, dst, .. })) => {
                assert_eq!((src, dst), (0, 1));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // Every rank thread came home and the cluster is reusable: disarm
        // the plan and the same instance produces oracle-correct output.
        c.set_fault_plan(None);
        let out = c.run(1).unwrap();
        let oracle = crate::baseline::sequential_bfs_levels(&el, 1);
        assert_eq!(out.levels_from_parents(), oracle);
    }

    /// The facade-era API drift is gone: the channel backend now exposes
    /// the full telemetry surface the threaded backend always had.
    #[test]
    fn channel_backend_has_the_full_telemetry_surface() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 3));
        let mut c = ChannelCluster::new(&el, 4, BfsConfig::threaded_small(2))
            .unwrap()
            .with_fault_plan(FaultPlan::lossy(5));
        c.run(2).unwrap();
        // No buffer pool on this fabric — honestly zero, not absent.
        assert_eq!(c.pool_counters(), (0, 0));
        let (retries, injected, _) = c.fault_counters();
        assert!(injected > 0, "lossy plan never fired");
        assert!(retries > 0);
        assert_eq!(c.injection_trace().len() as u64, injected);
        assert!(!c.is_degraded(), "clamped lossy plan must not degrade");
    }
}
