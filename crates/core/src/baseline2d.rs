//! 2-D-partitioned BFS — the main alternative the paper weighs its 1-D
//! choice against (§7: "The distributed BFS algorithm can be divided into
//! 1D and 2D partitioning in terms of data layout \[26\]. Buluc et al.
//! discuss the pros and cons \[6\]").
//!
//! Processors form an `R × C` grid. The adjacency matrix is blocked: the
//! directed edge `u → v` is stored at processor
//! `(rowchunk(v), colchunk(u))`. A Top-Down level then needs only
//! grid-aligned collectives:
//!
//! 1. **expand** — every owner broadcasts its frontier vertices down the
//!    processor *column* that stores their out-edges (`R-1` peers);
//! 2. **scan** — each processor matches received frontier vertices
//!    against its block, producing candidates `(u, v)` with `v` in its
//!    row chunk;
//! 3. **fold** — candidates go to `v`'s owner, which lies in the same
//!    processor *row* (`C-1` peers), and first-claim wins.
//!
//! So a processor talks to `R + C - 2` peers instead of `P - 1` — the 2-D
//! pitch. The paper's relay technique reaches a comparable `N + M - 1`
//! *without* giving up the 1-D layout (and its cheap Bottom-Up), which is
//! exactly the comparison the `ablation2d` harness prints.

use crate::messages::EdgeRec;
use crate::result::{BfsOutput, LevelStats};
use crate::NO_PARENT;
use sw_graph::{EdgeList, Vid};

/// Traffic counters of a 2-D run, comparable to `LevelStats` totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats2D {
    /// Frontier-vertex announcements sent during expands.
    pub expand_records: u64,
    /// Candidate records sent during folds.
    pub fold_records: u64,
    /// Discrete messages (termination indicators included): per level each
    /// processor runs one column collective and one row collective.
    pub messages: u64,
    /// Levels executed.
    pub levels: u32,
}

/// The processor grid and block algebra.
#[derive(Clone, Copy, Debug)]
pub struct Grid2D {
    /// Grid rows.
    pub r: u32,
    /// Grid columns.
    pub c: u32,
    n: Vid,
    row_chunk: Vid,
    col_chunk: Vid,
}

impl Grid2D {
    /// An `r × c` grid over `n` vertices.
    pub fn new(n: Vid, r: u32, c: u32) -> Self {
        assert!(r > 0 && c > 0 && n >= (r * c) as u64, "grid too fine");
        Self {
            r,
            c,
            n,
            row_chunk: n.div_ceil(r as u64),
            col_chunk: n.div_ceil(c as u64),
        }
    }

    /// Total processors.
    pub fn procs(&self) -> u32 {
        self.r * self.c
    }

    /// Vertex-id space size.
    pub fn num_vertices(&self) -> Vid {
        self.n
    }

    /// Grid row whose processors store edges *into* `v`.
    pub fn rowchunk(&self, v: Vid) -> u32 {
        debug_assert!(v < self.n, "vertex out of range");
        (v / self.row_chunk) as u32
    }

    /// Grid column whose processors store edges *out of* `u`.
    pub fn colchunk(&self, u: Vid) -> u32 {
        (u / self.col_chunk) as u32
    }

    /// The owner processor of `v`: the vertices of row chunk `i` are split
    /// into `c` consecutive sub-blocks, one per processor of grid row `i`,
    /// so an owner always sits in `rowchunk(v)`'s grid row (which is what
    /// keeps the fold a row-local collective).
    pub fn owner(&self, v: Vid) -> u32 {
        let row = self.rowchunk(v);
        let within = v - row as u64 * self.row_chunk;
        let col = (within / self.row_chunk.div_ceil(self.c as u64)) as u32;
        self.cell(row, col.min(self.c - 1))
    }

    /// Linear processor id of `(row, col)`.
    pub fn cell(&self, row: u32, col: u32) -> u32 {
        row * self.c + col
    }

    /// Grid row of a linear processor id.
    pub fn row_of(&self, p: u32) -> u32 {
        p / self.c
    }
}

/// Runs a Top-Down 2-D-partitioned BFS; returns the parent map (as a
/// [`BfsOutput`] with per-level frontier/settled stats) plus the 2-D
/// traffic counters.
pub fn bfs_2d(el: &EdgeList, r: u32, c: u32, root: Vid) -> (BfsOutput, Stats2D) {
    let grid = Grid2D::new(el.num_vertices, r, c);
    let procs = grid.procs() as usize;

    // Block storage: per processor, edges grouped as (u, v) pairs sorted
    // by u for scan locality.
    let mut blocks: Vec<Vec<EdgeRec>> = vec![Vec::new(); procs];
    for (u, v) in el.symmetric_iter() {
        let p = grid.cell(grid.rowchunk(v), grid.colchunk(u));
        blocks[p as usize].push(EdgeRec { u, v });
    }
    for b in &mut blocks {
        b.sort_unstable();
    }

    let n = el.num_vertices as usize;
    let mut parent: Vec<Vid> = vec![NO_PARENT; n];
    parent[root as usize] = root;
    let mut frontier: Vec<Vid> = vec![root];
    let mut stats = Stats2D::default();
    let mut levels: Vec<LevelStats> = Vec::new();

    while !frontier.is_empty() {
        // --- expand: owners announce frontier vertices down the column
        // that stores their out-edges. One announcement reaches R block
        // processors; it stays local for the announcer's own cell.
        let mut announced: Vec<Vec<Vid>> = vec![Vec::new(); procs];
        for &u in &frontier {
            let col = grid.colchunk(u);
            let owner = grid.owner(u);
            for row in 0..grid.r {
                let dest = grid.cell(row, col);
                announced[dest as usize].push(u);
                if dest != owner {
                    stats.expand_records += 1;
                }
            }
        }

        // --- scan: every block processor matches announcements against
        // its edges, generating fold candidates addressed to owners in
        // its own grid row.
        let mut claims: Vec<EdgeRec> = Vec::new();
        for (p, us) in announced.iter().enumerate() {
            if us.is_empty() {
                continue;
            }
            let block = &blocks[p];
            for &u in us {
                // Binary search the sorted (u, v) pairs for u's range.
                let lo = block.partition_point(|e| e.u < u);
                let hi = block.partition_point(|e| e.u <= u);
                for e in &block[lo..hi] {
                    debug_assert_eq!(grid.rowchunk(e.v), grid.row_of(p as u32));
                    let owner = grid.owner(e.v);
                    if owner != p as u32 {
                        stats.fold_records += 1;
                    }
                    claims.push(*e);
                }
            }
        }

        // Collectives run once per level per processor regardless of
        // payload: column allgather (R-1 msgs) + row fold (C-1 msgs).
        stats.messages += procs as u64 * (grid.r as u64 - 1 + grid.c as u64 - 1);

        // --- fold/claim: owners apply first-claim-wins in deterministic
        // order.
        claims.sort_unstable_by(|a, b| a.v.cmp(&b.v).then(a.u.cmp(&b.u)));
        let mut next: Vec<Vid> = Vec::new();
        let mut scanned = 0u64;
        for e in &claims {
            scanned += 1;
            if parent[e.v as usize] == NO_PARENT {
                parent[e.v as usize] = e.u;
                next.push(e.v);
            }
        }

        levels.push(LevelStats {
            level: stats.levels,
            frontier_vertices: frontier.len() as u64,
            edges_scanned: scanned,
            records_generated: stats.fold_records,
            settled: next.len() as u64,
            ..Default::default()
        });
        stats.levels += 1;
        frontier = next;
    }

    (
        BfsOutput {
            root,
            parents: parent,
            levels,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::sequential_bfs_levels;
    use sw_graph::{generate_kronecker, KroneckerConfig};

    #[test]
    fn matches_oracle_levels() {
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 6));
        let oracle = sequential_bfs_levels(&el, 2);
        for (r, c) in [(1u32, 1u32), (2, 2), (4, 4), (2, 8), (3, 5)] {
            let (out, _) = bfs_2d(&el, r, c, 2);
            assert_eq!(out.levels_from_parents(), oracle, "grid {r}x{c}");
        }
    }

    #[test]
    fn tree_edges_exist() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 3));
        let (out, _) = bfs_2d(&el, 4, 4, 0);
        let edges: std::collections::HashSet<(Vid, Vid)> = el.symmetric_iter().collect();
        for (v, &p) in out.parents.iter().enumerate() {
            if p != NO_PARENT && v as Vid != out.root {
                assert!(edges.contains(&(p, v as Vid)));
            }
        }
    }

    #[test]
    fn grid_algebra_consistent() {
        let g = Grid2D::new(1000, 4, 8);
        assert_eq!(g.procs(), 32);
        for v in [0u64, 1, 499, 500, 999] {
            let owner = g.owner(v);
            // Owner sits in the grid row that stores v's in-edges.
            assert_eq!(g.row_of(owner), g.rowchunk(v), "v = {v}");
        }
    }

    #[test]
    fn peer_count_is_grid_aligned() {
        // 16 processors as 4x4: 6 peers per processor per level, vs 15
        // under 1-D direct.
        let el = generate_kronecker(&KroneckerConfig::graph500(10, 1));
        let (out, stats) = bfs_2d(&el, 4, 4, 1);
        let per_proc_per_level = stats.messages / (16 * out.depth() as u64);
        assert_eq!(per_proc_per_level, 4 - 1 + 4 - 1);
    }

    #[test]
    fn square_grid_minimizes_messages() {
        let el = generate_kronecker(&KroneckerConfig::graph500(9, 9));
        let (_, sq) = bfs_2d(&el, 4, 4, 0);
        let (_, flat) = bfs_2d(&el, 1, 16, 0);
        let (_, tall) = bfs_2d(&el, 16, 1, 0);
        assert!(sq.messages < flat.messages);
        assert!(sq.messages < tall.messages);
    }

    #[test]
    fn degenerate_grids_reduce_sanely() {
        // 1×1 grid: no communication at all.
        let el = generate_kronecker(&KroneckerConfig::graph500(8, 2));
        let (out, stats) = bfs_2d(&el, 1, 1, 0);
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.expand_records + stats.fold_records, 0);
        assert_eq!(
            out.levels_from_parents(),
            sequential_bfs_levels(&el, 0)
        );
    }
}
