//! Per-level traffic profiles: the bridge from measured threaded runs to
//! machine-scale modeling.
//!
//! Kronecker graphs are statistically self-similar: the *fractions* of
//! vertices settled, edges scanned and records emitted per BFS level are
//! approximately invariant across scales (the level structure shifts by
//! O(log) as the graph grows). The modeled backend therefore takes a
//! profile measured by the threaded backend at a feasible scale and
//! replays it at target scale, with two adjustments:
//!
//! * extra near-empty **tail levels** are appended to account for the
//!   slowly growing BFS depth;
//! * the hub-skip and remote-record fractions are carried over unchanged —
//!   an approximation we document rather than hide (the measurement keeps
//!   the hub-to-vertex ratio comparable to the paper's).

use crate::config::BfsConfig;
use crate::error::ExecError;
use crate::policy::Direction;
use crate::result::BfsOutput;
use crate::engine::ClusterBuilder;
use serde::{Deserialize, Serialize};
use sw_graph::{generate_kronecker, KroneckerConfig, Vid};

/// Scale-free description of one BFS level.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelProfile {
    /// Traversal direction the policy chose.
    pub direction: Direction,
    /// Frontier vertices / total vertices.
    pub frontier_frac: f64,
    /// Vertices settled this level / total vertices.
    pub settled_frac: f64,
    /// Adjacency entries scanned / total directed entries.
    pub edges_scanned_frac: f64,
    /// Remote records generated / total directed entries.
    pub records_frac: f64,
    /// Whether the hub gather moved bitmaps (vs the empty flag).
    pub hub_gather_active: bool,
}

/// Derives a profile from a measured run.
pub fn profile_from_output(out: &BfsOutput, total_vertices: Vid, directed_edges: u64, ranks: u32) -> Vec<LevelProfile> {
    let n = total_vertices as f64;
    let m = directed_edges as f64;
    out.levels
        .iter()
        .map(|l| LevelProfile {
            direction: l.direction,
            frontier_frac: l.frontier_vertices as f64 / n,
            settled_frac: l.settled as f64 / n,
            edges_scanned_frac: l.edges_scanned as f64 / m,
            records_frac: l.records_generated as f64 / m,
            // More than a couple of bytes per rank means bitmaps moved.
            hub_gather_active: l.hub_gather_bytes > 4 * ranks as u64,
        })
        .collect()
}

/// Generates a Kronecker graph at `scale`, runs the threaded backend on
/// `ranks` ranks, and returns the measured profile. This is how the
/// Figure 11/12 harnesses obtain their inputs at run time — nothing is
/// hard-coded.
pub fn measure_profile(
    scale: u32,
    seed: u64,
    ranks: u32,
    cfg: BfsConfig,
    root: Vid,
) -> Result<Vec<LevelProfile>, ExecError> {
    let el = generate_kronecker(&KroneckerConfig::graph500(scale, seed));
    let mut tc = ClusterBuilder::new(&el, ranks, cfg).build()?;
    // Pick a root firmly inside the giant component: the highest-degree
    // vertex among a window of candidates after the requested id.
    let n = el.num_vertices;
    let r = (0..512u64.min(n))
        .map(|i| (root + i) % n)
        .max_by_key(|&v| tc.degree_of(v))
        .expect("nonempty graph");
    let out = tc.run(r)?;
    Ok(profile_from_output(
        &out,
        tc.num_vertices(),
        tc.total_directed_edges(),
        ranks,
    ))
}

/// A representative Kronecker BFS profile — the canonical shape measured
/// by [`measure_profile`] on scale-20 Graph500 graphs (tiny root level,
/// one expanding Top-Down level, two heavy Bottom-Up levels, a dwindling
/// Top-Down tail). Benches measure their own profile at run time; this
/// fixture keeps unit tests fast and deterministic.
pub fn typical_kronecker_profile() -> Vec<LevelProfile> {
    let lv = |direction, frontier_frac, settled_frac, scanned, records, active| LevelProfile {
        direction,
        frontier_frac,
        settled_frac,
        edges_scanned_frac: scanned,
        records_frac: records,
        hub_gather_active: active,
    };
    vec![
        lv(Direction::TopDown, 1e-9, 2e-7, 1e-7, 5e-8, true),
        lv(Direction::TopDown, 2e-7, 3e-4, 4e-4, 2e-4, true),
        lv(Direction::BottomUp, 3e-4, 0.22, 0.24, 0.035, true),
        lv(Direction::BottomUp, 0.22, 0.20, 0.10, 0.012, true),
        lv(Direction::TopDown, 0.20, 0.02, 0.05, 0.008, true),
        lv(Direction::TopDown, 0.02, 1e-3, 2e-3, 4e-4, false),
        lv(Direction::TopDown, 1e-3, 4e-5, 1e-4, 2e-5, false),
        lv(Direction::TopDown, 4e-5, 1e-6, 3e-6, 5e-7, false),
    ]
}

/// Adjusts a measured profile for a target graph `growth_factor` times
/// larger (in vertices) than the measured one: appends
/// `ceil(log2(growth)/4)` near-empty Top-Down tail levels (BFS depth on
/// Kronecker graphs grows roughly with log n, and tail levels are the
/// slowly-appearing ones).
pub fn extrapolate_depth(profile: &[LevelProfile], growth_factor: f64) -> Vec<LevelProfile> {
    let mut p = profile.to_vec();
    if growth_factor <= 1.0 || p.is_empty() {
        return p;
    }
    let extra = (growth_factor.log2() / 4.0).ceil() as usize;
    let tail = LevelProfile {
        direction: Direction::TopDown,
        frontier_frac: 0.0,
        settled_frac: 0.0,
        edges_scanned_frac: 0.0,
        records_frac: 0.0,
        hub_gather_active: false,
    };
    p.extend(std::iter::repeat_n(tail, extra));
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_profile_is_sane() {
        let prof = measure_profile(11, 3, 4, BfsConfig::threaded_small(2), 0).unwrap();
        assert!(prof.len() >= 4, "BFS depth {} too shallow", prof.len());
        let settled: f64 = prof.iter().map(|l| l.settled_frac).sum();
        // RMAT giant component: most non-isolated vertices reached. Scale 11
        // EF16 has ~50% isolated-ish? No — mean degree 32, few isolated.
        assert!(settled > 0.4, "settled frac {settled}");
        // Direction optimization + hub short-circuiting keep the scanned
        // fraction far below 1 (at this tiny scale half the vertices are
        // hubs, so Bottom-Up resolves most vertices after ~1 edge).
        let scanned: f64 = prof.iter().map(|l| l.edges_scanned_frac).sum();
        assert!(scanned > 0.01 && scanned < 3.0, "scanned frac {scanned}");
        // Direction optimization: some level is bottom-up.
        assert!(prof.iter().any(|l| l.direction == Direction::BottomUp));
        // Fractions all within [0, 1].
        for l in &prof {
            assert!((0.0..=1.0).contains(&l.frontier_frac));
            assert!((0.0..=1.5).contains(&l.records_frac));
        }
    }

    #[test]
    fn profiles_are_roughly_scale_invariant() {
        // The settled-fraction trajectory at scale 10 and 12 should agree
        // in shape: same direction sequence modulo one level of shift, and
        // total settled within 20%.
        let a = measure_profile(10, 5, 4, BfsConfig::threaded_small(2), 1).unwrap();
        let b = measure_profile(12, 5, 4, BfsConfig::threaded_small(2), 1).unwrap();
        let sa: f64 = a.iter().map(|l| l.settled_frac).sum();
        let sb: f64 = b.iter().map(|l| l.settled_frac).sum();
        assert!((sa - sb).abs() / sb < 0.25, "settled {sa} vs {sb}");
        let da = a.len() as i64;
        let db = b.len() as i64;
        assert!((da - db).abs() <= 2, "depth {da} vs {db}");
    }

    #[test]
    fn extrapolate_appends_tail_levels() {
        let prof = vec![LevelProfile {
            direction: Direction::TopDown,
            frontier_frac: 0.5,
            settled_frac: 0.5,
            edges_scanned_frac: 0.5,
            records_frac: 0.1,
            hub_gather_active: true,
        }];
        let p = extrapolate_depth(&prof, 2f64.powi(20));
        assert_eq!(p.len(), 1 + 5);
        assert_eq!(p[0], prof[0]);
        assert_eq!(p[5].edges_scanned_frac, 0.0);
        // No growth, no change.
        assert_eq!(extrapolate_depth(&prof, 1.0), prof);
    }
}
