//! # swbfs-core — distributed direction-optimizing BFS for Sunway TaihuLight
//!
//! The paper's primary contribution: a 1-D-partitioned, direction-optimized
//! Breadth-First Search built from three techniques —
//!
//! 1. **Pipelined module mapping** (§4.2): the BFS is decomposed into the
//!    Figure 1 modules (Forward Generator / Relay / Handler, Backward
//!    Generator / Relay / Handler); MPEs do communication, CPE clusters do
//!    module processing, coordinated by flag polling ([`mapping`]).
//! 2. **Contention-free data shuffling** (§4.3): every reaction module's
//!    scatter runs on the `sw-arch` producer/router/consumer shuffle engine
//!    instead of atomics ([`modules`], [`shuffling`]).
//! 3. **Group-based message batching** (§4.4): messages travel through the
//!    `sw-net` N×M relay layout so a node keeps `N+M-1` connections instead
//!    of `N×M` ([`exchange`]).
//!
//! Two execution backends run the *same* module code:
//!
//! * [`engine`] — the unified superstep engine: every simulated node is a
//!   real rank; messages really move over a pluggable [`Transport`] fabric
//!   ([`SharedMem`] pooled arena, or [`Channels`] OS threads + crossbeam
//!   mesh); results validate under Graph500 rules. Ground truth at up to a
//!   few hundred ranks. [`threaded`] and [`channels`] are its deprecated
//!   per-transport facades.
//! * [`modeled`] — per-level traffic statistics (measured by the engine,
//!   [`traffic`]) are replayed through the chip and network cost
//!   models at up to the full 40,960-node machine, reproducing Figures 11
//!   and 12 including the Direct-mode crash points.
//!
//! [`baseline`] holds the comparison implementations (single-node BFS and
//! the plain top-down distributed BFS), and [`policy`] the direction
//! heuristic.

pub mod arena;
pub mod baseline;
pub mod baseline2d;
pub mod channels;
pub mod compress;
pub mod config;
pub mod construction;
pub mod engine;
pub mod error;
pub mod exchange;
pub mod faults;
pub mod frontier;
pub mod hubs;
pub mod instrument;
pub mod mapping;
pub mod messages;
pub mod modeled;
pub mod modules;
pub mod policy;
pub mod rank;
pub mod result;
pub mod shuffling;
pub mod threaded;
pub mod traffic;

pub use config::{BfsConfig, Messaging, Processing};
pub use engine::{Channels, ClusterBuilder, SharedMem, SuperstepEngine, Transport};
pub use error::{ExchangeError, ExecError};
pub use faults::{FaultKind, FaultPlan, FaultSession, InjectionEvent, RetryPolicy};
pub use instrument::{absorb_exchange, absorb_store, exchange_view, StoreStats};
pub use modeled::{ModelOutcome, ModeledCluster};
pub use result::{BfsOutput, LevelStats};
pub use channels::ChannelCluster;
pub use threaded::ThreadedCluster;
pub use traffic::LevelProfile;

/// Sentinel for "no parent assigned yet".
pub const NO_PARENT: sw_graph::Vid = sw_graph::Vid::MAX;
