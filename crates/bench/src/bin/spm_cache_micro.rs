//! Demonstrates §3.1's "collaboratively using the whole SPM in a CPE
//! cluster": random bitmap lookups through the cluster-wide sharded SPM
//! cache versus the main-memory path.
//!
//! Usage: `spm_cache_micro [bits] [lookups]`

use rand::{Rng, SeedableRng};
use sw_arch::spm_cache::ClusterBitmap;
use sw_arch::{ChipConfig, CpeId};
use sw_bench::print_table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bits: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16 << 20);
    let lookups: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1 << 20);
    let chip = ChipConfig::sw26010();

    println!("§3.1 collaborative SPM: {bits} bit cluster bitmap, {lookups} random lookups\n");
    println!(
        "aggregate SPM capacity at 32 KB/CPE reserve: {} Mbit ({} MB of state)",
        ClusterBitmap::capacity_bits(&chip, 32 * 1024) >> 20,
        ClusterBitmap::capacity_bits(&chip, 32 * 1024) >> 23
    );

    let mut cb = ClusterBitmap::new(chip, bits, 16 * 1024).expect("bitmap fits");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut hits = 0u64;
    for i in 0..lookups {
        let from = CpeId::new(rng.gen_range(0..8), rng.gen_range(0..8));
        let bit = rng.gen_range(0..bits);
        if i % 3 == 0 {
            cb.set(from, bit);
        } else if cb.get(from, bit) {
            hits += 1;
        }
    }

    let spm_ns = cb.elapsed_ns();
    let mem_ns = cb.memory_equivalent_ns();
    let rows = vec![
        vec![
            "cluster SPM (sharded, register hops)".into(),
            format!("{:.0}", spm_ns / 1e3),
            format!("{:.1}", spm_ns / lookups as f64),
        ],
        vec![
            "main memory (per-access latency)".into(),
            format!("{:.0}", mem_ns / 1e3),
            format!("{:.1}", mem_ns / lookups as f64),
        ],
    ];
    print_table(&["path", "total (µs)", "ns/lookup"], &rows);
    println!(
        "\nspeedup {:.1}x  (shard {} B/CPE; {} hits observed — functional, not just timed)",
        mem_ns / spm_ns,
        cb.shard_bytes(),
        hits
    );
    println!("Paper: SPM's next level is global memory 'with a latency that is");
    println!("100 times larger' — collaborative SPM keeps the random range on-chip.");
}
