//! Degree-aware hub vertex selection (paper §5, "Degree aware prefetch").
//!
//! Power-law graphs concentrate most edges on a few high-degree "hub"
//! vertices. The paper replicates the frontier state of a fixed number of
//! hubs on every node (2^12 for Top-Down, 2^14 for Bottom-Up), compressed
//! as a bitmap, so edge look-ups that hit a hub need no network message.
//!
//! This module picks the global top-k vertices by degree and assigns each a
//! dense *hub index* used to address the replicated bitmap.

use crate::{Csr, Vid};
use std::collections::HashMap;

/// Number of hub vertices the paper replicates during Top-Down levels.
pub const TOP_DOWN_HUBS: usize = 1 << 12;
/// Number of hub vertices the paper replicates during Bottom-Up levels.
pub const BOTTOM_UP_HUBS: usize = 1 << 14;

/// The global hub set: the `k` highest-degree vertices, each with a dense
/// index into the replicated hub bitmap.
#[derive(Clone, Debug, Default)]
pub struct HubSet {
    /// Hub global ids, ordered by descending degree (ties by ascending id).
    hubs: Vec<Vid>,
    /// Reverse map global id -> dense hub index.
    index: HashMap<Vid, u32>,
}

impl HubSet {
    /// Selects the top-`k` vertices by degree from a whole-graph CSR.
    ///
    /// Deterministic: ties broken by ascending vertex id. If the graph has
    /// fewer than `k` vertices with nonzero degree, only those are hubs.
    pub fn top_k(csr: &Csr, k: usize) -> Self {
        let mut by_degree: Vec<(u64, Vid)> = csr
            .rows()
            .enumerate()
            .filter(|(_, (_, nbrs))| !nbrs.is_empty())
            .map(|(i, (v, _))| (csr.degree_local(i), v))
            .collect();
        by_degree.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        by_degree.truncate(k);
        let hubs: Vec<Vid> = by_degree.into_iter().map(|(_, v)| v).collect();
        let index = hubs
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        Self { hubs, index }
    }

    /// Builds a hub set from per-rank degree observations: each entry is
    /// `(vertex, degree)`. Used by the distributed build where no single
    /// rank holds the whole CSR.
    pub fn from_degrees(mut degrees: Vec<(Vid, u64)>, k: usize) -> Self {
        degrees.retain(|&(_, d)| d > 0);
        degrees.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        degrees.truncate(k);
        let hubs: Vec<Vid> = degrees.into_iter().map(|(v, _)| v).collect();
        let index = hubs
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        Self { hubs, index }
    }

    /// Number of hubs actually selected.
    pub fn len(&self) -> usize {
        self.hubs.len()
    }

    /// True if no hubs were selected.
    pub fn is_empty(&self) -> bool {
        self.hubs.is_empty()
    }

    /// Dense hub index of a vertex, if it is a hub.
    pub fn hub_index(&self, v: Vid) -> Option<u32> {
        self.index.get(&v).copied()
    }

    /// Global id of hub `i`.
    pub fn hub_vertex(&self, i: u32) -> Vid {
        self.hubs[i as usize]
    }

    /// All hub ids, descending by degree.
    pub fn hubs(&self) -> &[Vid] {
        &self.hubs
    }

    /// Bytes of the replicated frontier bitmap for this hub set.
    pub fn bitmap_bytes(&self) -> usize {
        self.hubs.len().div_ceil(64) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_kronecker, EdgeList, KroneckerConfig};

    fn star_plus_path() -> Csr {
        // 0 is a hub (degree 4), 5-6-7 a path.
        let el = EdgeList::new(
            8,
            vec![(0, 1), (0, 2), (0, 3), (0, 4), (5, 6), (6, 7)],
        );
        Csr::from_edge_list(&el)
    }

    #[test]
    fn picks_highest_degree_first() {
        let hs = HubSet::top_k(&star_plus_path(), 2);
        assert_eq!(hs.len(), 2);
        assert_eq!(hs.hub_vertex(0), 0); // degree 4
        assert_eq!(hs.hub_vertex(1), 6); // degree 2
        assert_eq!(hs.hub_index(0), Some(0));
        assert_eq!(hs.hub_index(6), Some(1));
        assert_eq!(hs.hub_index(5), None);
    }

    #[test]
    fn skips_isolated_vertices() {
        let el = EdgeList::new(10, vec![(0, 1)]);
        let hs = HubSet::top_k(&Csr::from_edge_list(&el), 5);
        assert_eq!(hs.len(), 2);
        assert!(!hs.is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        // All degree-1 pairs: hubs must be ascending ids.
        let el = EdgeList::new(8, vec![(0, 1), (2, 3), (4, 5), (6, 7)]);
        let hs = HubSet::top_k(&Csr::from_edge_list(&el), 3);
        assert_eq!(hs.hubs(), &[0, 1, 2]);
    }

    #[test]
    fn from_degrees_matches_top_k() {
        let csr = Csr::from_edge_list(&generate_kronecker(&KroneckerConfig::graph500(10, 3)));
        let degrees: Vec<(Vid, u64)> = csr.rows().map(|(v, n)| (v, n.len() as u64)).collect();
        let a = HubSet::top_k(&csr, 64);
        let b = HubSet::from_degrees(degrees, 64);
        assert_eq!(a.hubs(), b.hubs());
    }

    #[test]
    fn hubs_cover_disproportionate_edges() {
        // Power-law check: top 1% of vertices should own far more than 1%
        // of edge endpoints on a Kronecker graph.
        let csr = Csr::from_edge_list(&generate_kronecker(&KroneckerConfig::graph500(12, 5)));
        let k = (csr.num_vertices() / 100) as usize;
        let hs = HubSet::top_k(&csr, k);
        let hub_entries: u64 = hs.hubs().iter().map(|&v| csr.degree(v)).sum();
        let frac = hub_entries as f64 / csr.num_entries() as f64;
        assert!(frac > 0.10, "top 1% hubs only cover {frac:.3} of entries");
    }

    #[test]
    fn bitmap_bytes_rounds_to_words() {
        let el = EdgeList::new(4, vec![(0, 1), (2, 3)]);
        let hs = HubSet::top_k(&Csr::from_edge_list(&el), 3);
        assert_eq!(hs.bitmap_bytes(), 8);
    }
}
