//! Shared distributed scaffolding for the non-BFS kernels: 1-D partitioned
//! CSRs plus the BFS's record exchange, over any [`Transport`].

use rayon::prelude::*;
use std::path::Path;
use sw_graph::store::{partition_path, PartitionMeta};
use sw_graph::{Csr, EdgeList, GraphStore, Partition1D, StorageBackend, StoreManifest, Vid};
use sw_net::GroupLayout;
use sw_trace::{CounterSet, Tracer};
use swbfs_core::config::Messaging;
use swbfs_core::engine::{SharedMem, Transport};
use swbfs_core::exchange::{Codec, ExchangeStats};
use swbfs_core::instrument as ins;
use swbfs_core::messages::EdgeRec;
use swbfs_core::modules::Outboxes;

/// A cluster of ranks for shuffle-shaped graph kernels.
///
/// Generic over the same [`Transport`] seam the BFS engine runs on:
/// kernels written against `AlgoCluster` run unchanged over the pooled
/// shared-memory fabric (the default) or any other registered
/// transport.
pub struct AlgoCluster<T: Transport = SharedMem> {
    /// Vertex ownership.
    pub part: Partition1D,
    /// Relay-group arrangement.
    pub layout: GroupLayout,
    /// Per-rank CSR partitions.
    pub csrs: Vec<Csr>,
    /// Transport mode for every exchange.
    pub messaging: Messaging,
    /// Accumulated exchange statistics.
    pub stats: ExchangeStats,
    /// The message fabric every round's records travel through.
    transport: T,
    /// Optional span recorder (same `Option<&Tracer>` hooks as the BFS
    /// engine; a `None` costs one discriminant check per phase).
    tracer: Option<Tracer>,
    /// Canonical flattened counters (`exchange.*`/`pool.*`/`faults.*`/
    /// `store.*`), merged through `absorb_exchange` + `absorb_store`
    /// like the BFS engine.
    metrics: CounterSet,
    /// Current algorithm round, used as the span level tag.
    round: u32,
    /// Undirected input-edge count (persisted into store manifests).
    input_edges: u64,
}

impl AlgoCluster<SharedMem> {
    /// Partitions `el` over `ranks` ranks with relay groups of
    /// `group_size`, on the default shared-memory transport.
    pub fn new(el: &EdgeList, ranks: u32, group_size: u32, messaging: Messaging) -> Self {
        Self::with_transport(el, ranks, group_size, messaging, SharedMem::new())
    }

    /// Reopens a persisted store directory on the default shared-memory
    /// transport, each partition's CSR a zero-copy view over its file.
    pub fn from_store_dir(
        dir: &Path,
        backend: StorageBackend,
        group_size: u32,
        messaging: Messaging,
    ) -> std::io::Result<Self> {
        Self::from_store_with_transport(dir, backend, group_size, messaging, SharedMem::new())
    }
}

impl<T: Transport> AlgoCluster<T> {
    /// [`AlgoCluster::new`] over an explicit message fabric.
    pub fn with_transport(
        el: &EdgeList,
        ranks: u32,
        group_size: u32,
        messaging: Messaging,
        mut transport: T,
    ) -> Self {
        assert!(ranks > 0 && el.num_vertices >= ranks as u64);
        let part = Partition1D::new(el.num_vertices, ranks);
        let csrs: Vec<Csr> = (0..ranks)
            .into_par_iter()
            .map(|r| {
                let (s, e) = part.range(r);
                Csr::from_edge_list_rows(el, s, e - s)
            })
            .collect();
        transport.setup(ranks as usize);
        let mut metrics = CounterSet::new();
        // Key-set parity with the BFS engine: the storage counters exist
        // on every cluster, zero when no store was opened.
        ins::absorb_store(&mut metrics, &ins::StoreStats::default());
        Self {
            part,
            layout: GroupLayout::new(ranks, group_size.min(ranks)),
            csrs,
            messaging,
            stats: ExchangeStats::default(),
            transport,
            tracer: None,
            metrics,
            round: 0,
            input_edges: el.len() as u64,
        }
    }

    /// [`AlgoCluster::from_store_dir`] over an explicit message fabric.
    ///
    /// The analytics kernels traverse the plain CSR only, so any store
    /// opens — including one persisted by the BFS engine with a hub
    /// sidecar — but a degree-reordered store is refused: neighbour
    /// order changes floating-point summation order in PageRank and
    /// betweenness, and these kernels have no reorder-aware oracle.
    pub fn from_store_with_transport(
        dir: &Path,
        backend: StorageBackend,
        group_size: u32,
        messaging: Messaging,
        mut transport: T,
    ) -> std::io::Result<Self> {
        let corrupt =
            |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
        let manifest = StoreManifest::read(dir)?;
        if manifest.degree_ordered {
            return Err(corrupt(format!(
                "store {} holds a degree-reordered adjacency; the analytics kernels \
                 need the natural neighbour order — rebuild the store without reordering",
                dir.display()
            )));
        }
        let ranks = manifest.num_ranks;
        if ranks == 0 || manifest.num_vertices < ranks as u64 {
            return Err(corrupt(format!(
                "store {}: {} ranks for {} vertices",
                dir.display(),
                ranks,
                manifest.num_vertices
            )));
        }
        let part = Partition1D::new(manifest.num_vertices, ranks);
        let mut store_stats = ins::StoreStats::default();
        let mut csrs = Vec::with_capacity(ranks as usize);
        for r in 0..ranks {
            let path = partition_path(dir, r as usize);
            let store = GraphStore::open(&path, backend)?;
            let h = store.header();
            let (lo, hi) = part.range(r);
            if h.rank != r
                || h.num_ranks != ranks
                || h.num_vertices != manifest.num_vertices
                || h.row_base != lo
                || h.rows != hi - lo
            {
                return Err(corrupt(format!(
                    "{}: partition header disagrees with the manifest",
                    path.display()
                )));
            }
            store_stats.absorb_open(store.stats());
            csrs.push(store.csr());
        }
        transport.setup(ranks as usize);
        let mut metrics = CounterSet::new();
        ins::absorb_store(&mut metrics, &store_stats);
        Ok(Self {
            part,
            layout: GroupLayout::new(ranks, group_size.min(ranks)),
            csrs,
            messaging,
            stats: ExchangeStats::default(),
            transport,
            tracer: None,
            metrics,
            round: 0,
            input_edges: manifest.input_edges,
        })
    }

    /// Persists every partition plus the manifest under `dir` (created
    /// if absent): a plain store — natural neighbour order, no sidecar —
    /// which is exactly what [`Self::from_store_with_transport`] accepts.
    pub fn persist_store(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (r, csr) in self.csrs.iter().enumerate() {
            let meta = PartitionMeta {
                rank: r as u32,
                num_ranks: self.part.num_ranks(),
                input_edges: self.input_edges,
                degree_ordered: false,
                hub_min_degree: 0,
            };
            GraphStore::persist(dir, csr, None, &meta)?;
        }
        StoreManifest {
            num_vertices: self.part.num_vertices(),
            num_ranks: self.part.num_ranks(),
            input_edges: self.input_edges,
            degree_ordered: false,
            compressed: false,
            hub_min_degree: 0,
        }
        .write(dir)
    }

    /// Arms (or disarms) span/counter recording. Also arms the
    /// transport, so exchange rounds record `bucket`/`deliver` spans on
    /// the rank lanes exactly like the BFS engine.
    pub fn set_tracer(&mut self, t: Option<Tracer>) {
        self.transport.set_tracer(t.clone());
        self.tracer = t;
    }

    /// The armed tracer, if any (kernels clone this cheap handle once
    /// per run to keep borrows of the cluster free).
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Canonical flattened counters accumulated by
    /// [`Self::exchange_round`] — the same `exchange.*`/`pool.*`/
    /// `faults.*` key set the BFS engine reports.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Tags subsequent spans (including the transport's bucket/deliver
    /// spans) with algorithm round `round` as the level.
    pub fn set_round(&mut self, round: u32) {
        self.round = round;
        self.transport.set_trace_level(round);
    }

    /// The current round set by [`Self::set_round`].
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> u32 {
        self.part.num_ranks()
    }

    /// Global vertex count.
    pub fn num_vertices(&self) -> Vid {
        self.part.num_vertices()
    }

    /// Runs one exchange round under the configured transport, sorting
    /// inboxes for determinism, and accumulates traffic statistics.
    ///
    /// # Panics
    /// Panics if the fabric fails structurally (e.g. a socket peer
    /// died); the analytics kernels have no retry story of their own.
    pub fn exchange_round(&mut self, out: Vec<Outboxes>) -> Vec<Vec<EdgeRec>> {
        let (mut inboxes, st) = self
            .transport
            .exchange(self.messaging, out, &self.layout, Codec::Fixed(16))
            .expect("transport failed structurally mid-round");
        self.stats.absorb(&st);
        ins::absorb_exchange(&mut self.metrics, &st);
        if !self.transport.delivers_sorted() {
            inboxes.par_iter_mut().for_each(|b| b.sort_unstable());
        }
        inboxes
    }

    /// Checks per-rank outboxes out of the transport (cleared, with
    /// whatever capacity a pooled fabric retained from earlier rounds).
    pub fn lend_outboxes(&mut self) -> Vec<Outboxes> {
        self.transport.lend_outboxes()
    }

    /// Returns inbox buffers to the transport after a round's records
    /// have been applied, so multi-round kernels on a pooled fabric stop
    /// allocating once buffers reach the working size.
    pub fn recycle_inboxes(&mut self, inboxes: Vec<Vec<EdgeRec>>) {
        self.transport.recycle_inboxes(inboxes);
    }
}

/// Deterministic synthetic edge weight in `1..=max_weight` (the paper's
/// substrate has no weighted inputs; SSSP needs weights that both the
/// distributed kernel and the oracle can recompute from the endpoints).
pub fn edge_weight(u: Vid, v: Vid, max_weight: u64) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 31;
    1 + z % max_weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use swbfs_core::engine::Channels;

    #[test]
    fn cluster_partitions_cover_graph() {
        let el = EdgeList::new(10, vec![(0, 9), (4, 5)]);
        let c = AlgoCluster::new(&el, 3, 2, Messaging::Relay);
        let rows: u64 = c.csrs.iter().map(|x| x.num_rows()).sum();
        assert_eq!(rows, 10);
        assert_eq!(c.csrs[2].neighbors(9), &[0]);
    }

    #[test]
    fn exchange_round_delivers_and_sorts() {
        let el = EdgeList::new(4, vec![(0, 1)]);
        let mut c = AlgoCluster::new(&el, 2, 2, Messaging::Direct);
        let mut out = c.lend_outboxes();
        out[0].push(1, EdgeRec { u: 9, v: 1 });
        out[0].push(1, EdgeRec { u: 3, v: 2 });
        let inbox = c.exchange_round(out);
        assert_eq!(
            inbox[1],
            vec![EdgeRec { u: 3, v: 2 }, EdgeRec { u: 9, v: 1 }]
        );
        assert!(c.stats.messages > 0);
        c.recycle_inboxes(inbox);
    }

    #[test]
    fn repeated_rounds_reuse_pooled_buffers() {
        let el = EdgeList::new(4, vec![(0, 1)]);
        let mut c = AlgoCluster::new(&el, 2, 2, Messaging::Direct);
        for round in 0..3 {
            let mut out = c.lend_outboxes();
            for i in 0..32u64 {
                out[0].push(1, EdgeRec { u: i, v: round });
            }
            let inbox = c.exchange_round(out);
            assert_eq!(inbox[1].len(), 32);
            c.recycle_inboxes(inbox);
        }
        // Warm-up round may grow buffers; later identical rounds must not.
        assert!(c.stats.pool_reused_bytes > 0);
    }

    #[test]
    fn transports_deliver_identical_rounds() {
        let el = EdgeList::new(6, vec![(0, 1), (2, 3)]);
        let mut shm = AlgoCluster::new(&el, 3, 2, Messaging::Direct);
        let mut chn =
            AlgoCluster::with_transport(&el, 3, 2, Messaging::Direct, Channels::new());
        let fill = |out: &mut Vec<Outboxes>| {
            for i in 0..16u64 {
                out[0].push(1, EdgeRec { u: 16 - i, v: i });
                out[2].push(1, EdgeRec { u: i, v: 7 });
            }
        };
        let mut a = shm.lend_outboxes();
        fill(&mut a);
        let mut b = chn.lend_outboxes();
        fill(&mut b);
        let ia = shm.exchange_round(a);
        let ib = chn.exchange_round(b);
        assert_eq!(ia, ib, "fabrics deliver different records");
        assert_eq!(
            shm.stats.record_hops, chn.stats.record_hops,
            "fabrics count different hops"
        );
    }

    #[test]
    fn edge_weight_symmetric_and_bounded() {
        for (u, v) in [(0u64, 1u64), (17, 3), (1000, 1000)] {
            let w = edge_weight(u, v, 10);
            assert_eq!(w, edge_weight(v, u, 10));
            assert!((1..=10).contains(&w));
        }
        assert_ne!(edge_weight(0, 1, 1000), edge_weight(0, 2, 1000));
    }
}
