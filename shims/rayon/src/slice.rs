//! Parallel slice extensions (rayon's `par_chunks`/`par_chunks_mut`).

use crate::iter::{Chunks, ChunksMut};

/// Chunked parallel iteration over a shared slice.
pub trait ParallelSlice<T: Sync> {
    /// Splits into `chunk_size`-sized chunks (last may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
        Chunks::new(self, chunk_size)
    }
}

/// Chunked parallel iteration over a unique slice.
pub trait ParallelSliceMut<T: Send> {
    /// Splits into `chunk_size`-sized mutable chunks (last may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        ChunksMut::new(self, chunk_size)
    }
}
