//! The work-stealing pool behind the shim's par-iter consumers.
//!
//! One process-wide pool, sized by `SW_POOL_THREADS` (default 1). At
//! the default size no threads are spawned and every operation runs
//! inline on the caller, so single-threaded behaviour — and every
//! committed baseline measured under it — is unchanged. At size `W`
//! the pool spawns `W - 1` workers; the submitting thread participates
//! as the `W`-th, executing stolen jobs while it waits, which also
//! makes nested parallel operations deadlock-free.
//!
//! Topology is the classic crossbeam-deque shape: a shared
//! [`Injector`] receives submitted jobs, each worker owns a local
//! [`Worker`] deque it batches injector jobs into, and every thread
//! (submitter included) steals from the injector and from other
//! workers' [`Stealer`]s when its own sources run dry.
//!
//! Panics inside a job are caught, stashed on the operation, and
//! re-raised on the submitting thread once the operation drains.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Chunks handed out per pool thread; >1 so early-finishing threads
/// have leftovers to steal.
const CHUNKS_PER_THREAD: usize = 4;

/// One fan-out operation: the lifetime-erased chunk body plus a
/// completion latch and the first captured panic.
struct Op {
    /// Erased `&'scope (dyn Fn(usize) + Sync)`; valid until `remaining`
    /// reaches zero because the submitting frame blocks on the latch.
    body: *const (dyn Fn(usize) + Sync),
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `body` is only dereferenced while the submitting stack frame
// (which owns the pointee) is blocked in `PoolCore::run`.
unsafe impl Send for Op {}
unsafe impl Sync for Op {}

/// One schedulable unit: chunk `idx` of operation `op`.
struct Job {
    op: Arc<Op>,
    idx: usize,
}

impl Job {
    fn run(self) {
        // SAFETY: see `Op::body`.
        let body = unsafe { &*self.op.body };
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| body(self.idx))) {
            *self.op.panic.lock().unwrap() = Some(p);
        }
        if self.op.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.op.done.lock().unwrap() = true;
            self.op.done_cv.notify_all();
        }
    }
}

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

/// A work-stealing pool of `threads - 1` workers plus the submitter.
pub(crate) struct PoolCore {
    shared: Arc<Shared>,
    threads: usize,
}

impl PoolCore {
    /// Spawns `threads - 1` parked workers (no-op pool for `threads <= 1`).
    pub(crate) fn new(threads: usize) -> Self {
        let workers: Vec<Worker<Job>> =
            (0..threads.saturating_sub(1)).map(|_| Worker::new_fifo()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers: workers.iter().map(|w| w.stealer()).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        for (i, local) in workers.into_iter().enumerate() {
            let sh = shared.clone();
            std::thread::Builder::new()
                .name(format!("sw-pool-{i}"))
                .spawn(move || worker_loop(i, local, sh))
                .expect("failed to spawn pool worker");
        }
        Self { shared, threads }
    }

    /// Configured thread count (workers + submitter).
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `body(0) .. body(n-1)` across the pool, returning once all
    /// calls finished. The submitting thread helps by executing stolen
    /// jobs while it waits. A panic in any call resurfaces here.
    pub(crate) fn run(&self, n: usize, body: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        // Erase the borrow lifetime; sound because this frame blocks
        // until every job (the only derefs) has completed.
        let body: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
        let op = Arc::new(Op {
            body,
            remaining: AtomicUsize::new(n),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        for idx in 0..n {
            self.shared.injector.push(Job { op: op.clone(), idx });
        }
        self.shared.wake.notify_all();
        while op.remaining.load(Ordering::Acquire) != 0 {
            if let Some(job) = steal_any(&self.shared) {
                job.run();
            } else {
                // Our remaining jobs are in flight on workers: sleep on
                // the latch (timeout bounds a lost notify race).
                let guard = op.done.lock().unwrap();
                if !*guard {
                    let _ = op
                        .done_cv
                        .wait_timeout(guard, Duration::from_millis(1))
                        .unwrap();
                }
            }
        }
        let panicked = op.panic.lock().unwrap().take();
        if let Some(p) = panicked {
            resume_unwind(p);
        }
    }
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
    }
}

fn worker_loop(me: usize, local: Worker<Job>, sh: Arc<Shared>) {
    loop {
        if sh.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(job) = local.pop().or_else(|| take_batch(&sh, me, &local)) {
            job.run();
            continue;
        }
        let guard = sh.sleep.lock().unwrap();
        let _ = sh.wake.wait_timeout(guard, Duration::from_millis(5)).unwrap();
    }
}

/// Worker-side acquisition: drain a small batch from the injector into
/// the local deque (so siblings can steal the surplus back), else steal
/// from a sibling.
fn take_batch(sh: &Shared, me: usize, local: &Worker<Job>) -> Option<Job> {
    if let Steal::Success(job) = sh.injector.steal() {
        for _ in 0..2 {
            match sh.injector.steal() {
                Steal::Success(extra) => local.push(extra),
                _ => break,
            }
        }
        return Some(job);
    }
    sh.stealers
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != me)
        .find_map(|(_, s)| s.steal().success())
}

/// Submitter-side acquisition (no local deque): injector, then workers.
fn steal_any(sh: &Shared) -> Option<Job> {
    if let Steal::Success(job) = sh.injector.steal() {
        return Some(job);
    }
    sh.stealers.iter().find_map(|s| s.steal().success())
}

fn configured_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("SW_POOL_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

fn global() -> Option<&'static PoolCore> {
    static POOL: OnceLock<Option<PoolCore>> = OnceLock::new();
    POOL.get_or_init(|| {
        let n = configured_threads();
        (n > 1).then(|| PoolCore::new(n))
    })
    .as_ref()
}

/// True when no pool is active and consumers should run inline.
pub(crate) fn sequential() -> bool {
    global().is_none()
}

/// Splits `0..len` into contiguous chunks, evaluates `f(lo, hi)` per
/// chunk across the pool, and returns the results **in chunk order**.
///
/// This is the shim's one reduction shape: sequential fold inside each
/// chunk, ordered concatenation outside, no atomic accumulation — which
/// is what makes every derived reduction (collect, sum, for_each side
/// effects on disjoint data) bit-identical at any thread count.
pub(crate) fn run_chunked<R: Send>(
    len: usize,
    f: &(dyn Fn(usize, usize) -> R + Sync),
) -> Vec<R> {
    run_chunked_on(global(), len, f)
}

pub(crate) fn run_chunked_on<R: Send>(
    pool: Option<&PoolCore>,
    len: usize,
    f: &(dyn Fn(usize, usize) -> R + Sync),
) -> Vec<R> {
    let Some(pool) = pool else {
        return vec![f(0, len)];
    };
    if len <= 1 {
        return vec![f(0, len)];
    }
    let chunks = (pool.threads() * CHUNKS_PER_THREAD).min(len);
    let size = len.div_ceil(chunks);
    let chunks = len.div_ceil(size);
    let slots: Vec<Mutex<Option<R>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    pool.run(chunks, &|i| {
        let lo = i * size;
        let hi = ((i + 1) * size).min(len);
        *slots[i].lock().unwrap() = Some(f(lo, hi));
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("pool chunk completed"))
        .collect()
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
///
/// The shim has exactly one process-wide pool (sized by
/// `SW_POOL_THREADS`), so the requested thread count is recorded but
/// does not spawn a separate pool.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    _threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the requested size (the process-wide pool is env-sized).
    pub fn num_threads(mut self, n: usize) -> Self {
        self._threads = n;
        self
    }

    /// Builds a handle onto the process-wide pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (unreachable in shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Handle onto the process-wide pool.
pub struct ThreadPool;

impl ThreadPool {
    /// Runs `f` "inside" the pool: `f` executes on the caller and its
    /// parallel operations use the process-wide pool. Results are
    /// thread-count-invariant (see [`run_chunked`]), so scoping to a
    /// differently-sized pool — what upstream `install` does — could
    /// not change any outcome, only timing.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }
}

/// Runs both closures — on the pool when one is active — and returns
/// both results. Panics from either closure resurface here.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match global() {
        None => (a(), b()),
        Some(pool) => {
            let fa = Mutex::new(Some(a));
            let fb = Mutex::new(Some(b));
            let ra = Mutex::new(None);
            let rb = Mutex::new(None);
            pool.run(2, &|i| {
                if i == 0 {
                    let f = fa.lock().unwrap().take().expect("join arm ran once");
                    *ra.lock().unwrap() = Some(f());
                } else {
                    let f = fb.lock().unwrap().take().expect("join arm ran once");
                    *rb.lock().unwrap() = Some(f());
                }
            });
            (
                ra.into_inner().unwrap().expect("join arm completed"),
                rb.into_inner().unwrap().expect("join arm completed"),
            )
        }
    }
}

/// Number of pool threads (workers + participating submitter).
pub fn current_num_threads() -> usize {
    configured_threads()
}
