//! The traversal policy: Beamer's direction-optimizing heuristic
//! (Algorithm 1's `TRAVERSAL_POLICY`, following reference \[7\] of the
//! paper).
//!
//! Top-Down work is proportional to the frontier's out-edges (`m_f`);
//! Bottom-Up work is proportional to the unvisited vertices' in-edges
//! (`m_u`) but short-circuits as soon as a parent is found, which is a big
//! win exactly when the frontier covers a large fraction of all edges. The
//! heuristic switches down when `m_f > m_u / α` and back up when the
//! frontier shrinks below `n / β`.

use serde::{Deserialize, Serialize};

/// Traversal direction of one level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Scan frontier vertices' edges, claim unvisited targets.
    #[default]
    TopDown,
    /// Scan unvisited vertices' edges, look for frontier parents.
    BottomUp,
}

/// Runtime statistics the policy consumes at each level boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyInputs {
    /// Global frontier vertex count (`n_f`).
    pub frontier_vertices: u64,
    /// Global sum of frontier vertices' degrees (`m_f`).
    pub frontier_edges: u64,
    /// Global sum of unvisited vertices' degrees (`m_u`).
    pub unvisited_edges: u64,
    /// Total vertices (`n`).
    pub total_vertices: u64,
}

/// The direction-optimizing policy with Beamer's α/β thresholds.
#[derive(Clone, Copy, Debug)]
pub struct TraversalPolicy {
    alpha: u64,
    beta: u64,
    state: Direction,
}

impl TraversalPolicy {
    /// A policy starting in Top-Down with the given thresholds.
    pub fn new(alpha: u64, beta: u64) -> Self {
        assert!(alpha > 0 && beta > 0, "zero thresholds");
        Self {
            alpha,
            beta,
            state: Direction::TopDown,
        }
    }

    /// Current direction without advancing.
    pub fn current(&self) -> Direction {
        self.state
    }

    /// Decides the direction for the next level and records it.
    pub fn decide(&mut self, inp: &PolicyInputs) -> Direction {
        self.state = match self.state {
            Direction::TopDown => {
                if inp.frontier_edges > inp.unvisited_edges / self.alpha {
                    Direction::BottomUp
                } else {
                    Direction::TopDown
                }
            }
            Direction::BottomUp => {
                if inp.frontier_vertices < inp.total_vertices / self.beta {
                    Direction::TopDown
                } else {
                    Direction::BottomUp
                }
            }
        };
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> TraversalPolicy {
        TraversalPolicy::new(14, 24)
    }

    #[test]
    fn starts_top_down() {
        assert_eq!(policy().current(), Direction::TopDown);
    }

    #[test]
    fn small_frontier_stays_top_down() {
        let mut p = policy();
        let d = p.decide(&PolicyInputs {
            frontier_vertices: 1,
            frontier_edges: 10,
            unvisited_edges: 1_000_000,
            total_vertices: 100_000,
        });
        assert_eq!(d, Direction::TopDown);
    }

    #[test]
    fn heavy_frontier_switches_bottom_up() {
        let mut p = policy();
        let d = p.decide(&PolicyInputs {
            frontier_vertices: 50_000,
            frontier_edges: 500_000,
            unvisited_edges: 1_000_000,
            total_vertices: 100_000,
        });
        assert_eq!(d, Direction::BottomUp);
    }

    #[test]
    fn shrunken_frontier_switches_back() {
        let mut p = policy();
        p.decide(&PolicyInputs {
            frontier_vertices: 50_000,
            frontier_edges: 500_000,
            unvisited_edges: 1_000_000,
            total_vertices: 100_000,
        });
        assert_eq!(p.current(), Direction::BottomUp);
        let d = p.decide(&PolicyInputs {
            frontier_vertices: 100,
            frontier_edges: 300,
            unvisited_edges: 100,
            total_vertices: 100_000,
        });
        assert_eq!(d, Direction::TopDown);
    }

    #[test]
    fn bottom_up_is_sticky_while_frontier_large() {
        let mut p = policy();
        p.decide(&PolicyInputs {
            frontier_vertices: 50_000,
            frontier_edges: 500_000,
            unvisited_edges: 1_000_000,
            total_vertices: 100_000,
        });
        let d = p.decide(&PolicyInputs {
            frontier_vertices: 30_000,
            frontier_edges: 1,
            unvisited_edges: 1_000_000_000,
            total_vertices: 100_000,
        });
        assert_eq!(d, Direction::BottomUp);
    }

    #[test]
    fn typical_rmat_trace_is_td_bu_td() {
        // A stylized Kronecker trace: tiny frontier, explosive middle,
        // dwindling tail — the classic TopDown, BottomUp×2, TopDown shape.
        let mut p = policy();
        let n = 1_000_000u64;
        let m = 32_000_000u64;
        let trace = [
            (1u64, 40u64, m),                 // root level
            (40, 40_000, m - 100),            // small expansion
            (60_000, 20_000_000, m / 2),      // explosion -> bottom-up
            (500_000, 9_000_000, m / 50),     // still wide -> bottom-up
            (10_000, 100_000, m / 400),       // shrinks -> top-down
        ];
        let dirs: Vec<Direction> = trace
            .iter()
            .map(|&(nf, mf, mu)| {
                p.decide(&PolicyInputs {
                    frontier_vertices: nf,
                    frontier_edges: mf,
                    unvisited_edges: mu,
                    total_vertices: n,
                })
            })
            .collect();
        assert_eq!(
            dirs,
            vec![
                Direction::TopDown,
                Direction::TopDown,
                Direction::BottomUp,
                Direction::BottomUp,
                Direction::TopDown,
            ]
        );
    }

    #[test]
    #[should_panic(expected = "zero thresholds")]
    fn zero_alpha_rejected() {
        TraversalPolicy::new(0, 24);
    }
}
