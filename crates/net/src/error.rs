//! Structured network-layer failures.

use std::fmt;

/// A modeled network failure.
#[derive(Clone, Debug, PartialEq)]
pub enum NetError {
    /// MPI connection state no longer fits in node memory — the failure
    /// that killed Direct messaging at 16 Ki nodes in Figure 11.
    ConnectionMemoryExhausted {
        /// Node that exhausted its memory.
        node: u32,
        /// Open connections at the point of failure.
        connections: usize,
        /// Bytes MPI state would need.
        required_bytes: u64,
        /// Bytes available to MPI after the application's share.
        available_bytes: u64,
    },
    /// A node id outside the job.
    BadNode {
        /// Offending id.
        node: u32,
        /// Job size.
        nodes: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::ConnectionMemoryExhausted {
                node,
                connections,
                required_bytes,
                available_bytes,
            } => write!(
                f,
                "node {node}: {connections} MPI connections need {required_bytes} B but only {available_bytes} B are free"
            ),
            NetError::BadNode { node, nodes } => {
                write!(f, "node id {node} outside job of {nodes} nodes")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::ConnectionMemoryExhausted {
            node: 7,
            connections: 16384,
            required_bytes: 1 << 34,
            available_bytes: 1 << 33,
        };
        assert!(e.to_string().contains("16384"));
        let e = NetError::BadNode { node: 9, nodes: 8 };
        assert!(e.to_string().contains("outside job"));
    }
}
