//! The merged end-of-run artifact and its three exporters.
//!
//! A [`TraceReport`] is a plain value: lane snapshots plus a counter
//! snapshot, tagged with the clock domain. In a virtual domain the
//! whole report — including every exporter's output — is a pure
//! function of the run's input, so golden tests can compare serialized
//! bytes directly.

use crate::json::{escape, us_from_ns};
use crate::metrics::CounterSet;
use crate::tracer::{ClockDomain, EventKind, TraceEvent, NO_LEVEL};
use std::collections::BTreeMap;

/// One lane's (rank's) recorded events, in claim order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneReport {
    /// Display name (`rank3`, `run`).
    pub name: String,
    /// Published events, in claim order.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow on this lane.
    pub dropped: u64,
}

/// The merged trace: every lane plus the counter snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceReport {
    /// What the timestamps mean.
    pub domain: ClockDomain,
    /// One entry per lane, in lane order.
    pub lanes: Vec<LaneReport>,
    /// Registry snapshot at report time.
    pub counters: CounterSet,
}

impl TraceReport {
    /// Total events across lanes.
    pub fn total_events(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// Total overflow drops across lanes.
    pub fn total_dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }

    /// The full report as deterministic JSON: domain, lanes with their
    /// events, drop counts, and the counter snapshot. This is the
    /// golden-trace format — byte-identical for identical runs in a
    /// virtual domain.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.total_events() * 96);
        out.push_str("{\n");
        out.push_str(&format!("  \"clock_domain\": \"{}\",\n", self.domain.as_str()));
        out.push_str("  \"lanes\": [\n");
        for (i, lane) in self.lanes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"dropped\": {}, \"events\": [",
                escape(&lane.name),
                lane.dropped
            ));
            for (j, ev) in lane.events.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&event_json(ev));
            }
            out.push_str("]}");
            if i + 1 < self.lanes.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"counters\": ");
        out.push_str(&indent_object(&self.counters.to_json(), "  "));
        out.push_str("\n}\n");
        out
    }

    /// Chrome `trace_event` JSON: one `pid 0` process, one `tid` per
    /// lane (named via `thread_name` metadata), `ph:"X"` complete
    /// events for spans and `ph:"i"` thread-scoped instants. Times are
    /// microseconds with fixed three-decimal formatting — in virtual
    /// domains 1 µs ≙ 1000 work units, which Perfetto renders fine.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.total_events() * 160);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut emit = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };
        for (tid, lane) in self.lanes.iter().enumerate() {
            emit(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape(&lane.name)
                ),
                &mut out,
            );
        }
        for (tid, lane) in self.lanes.iter().enumerate() {
            for ev in &lane.events {
                let mut args = format!("\"arg\":{}", ev.arg);
                if ev.level != NO_LEVEL {
                    args.push_str(&format!(",\"level\":{}", ev.level));
                }
                let line = match ev.kind {
                    EventKind::Span => format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\
                         \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                        escape(ev.name),
                        escape(ev.cat),
                        us_from_ns(ev.ts_ns),
                        us_from_ns(ev.dur_ns),
                    ),
                    EventKind::Instant => format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\
                         \"tid\":{tid},\"ts\":{},\"args\":{{{args}}}}}",
                        escape(ev.name),
                        escape(ev.cat),
                        us_from_ns(ev.ts_ns),
                    ),
                };
                emit(line, &mut out);
            }
        }
        out.push_str(&format!(
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"clock_domain\":\"{}\",\
             \"dropped_events\":{}}}}}\n",
            self.domain.as_str(),
            self.total_dropped()
        ));
        out
    }

    /// Flat metrics snapshot: the counter set plus `trace.events` /
    /// `trace.dropped_events` bookkeeping, as one JSON object.
    pub fn metrics_json(&self) -> String {
        let mut cs = self.counters.clone();
        cs.set("trace.events", self.total_events() as u64);
        cs.set("trace.dropped_events", self.total_dropped());
        let mut s = cs.to_json();
        s.push('\n');
        s
    }

    /// Sums span durations per (BFS level, phase name) across all
    /// lanes. Spans with [`NO_LEVEL`] are excluded.
    pub fn level_breakdown(&self) -> BTreeMap<u32, BTreeMap<&'static str, u64>> {
        let mut out: BTreeMap<u32, BTreeMap<&'static str, u64>> = BTreeMap::new();
        for lane in &self.lanes {
            for ev in &lane.events {
                if ev.kind == EventKind::Span && ev.level != NO_LEVEL {
                    *out.entry(ev.level).or_default().entry(ev.name).or_insert(0) +=
                        ev.dur_ns;
                }
            }
        }
        out
    }

    /// A terminal per-level time-breakdown table in the style of the
    /// paper's Fig. 9: one row per BFS level, one column per phase,
    /// units from the clock domain (ns or work units).
    pub fn level_table(&self) -> String {
        let breakdown = self.level_breakdown();
        let mut phases: Vec<&'static str> = Vec::new();
        for row in breakdown.values() {
            for &p in row.keys() {
                if !phases.contains(&p) {
                    phases.push(p);
                }
            }
        }
        phases.sort_unstable();
        let unit = if self.domain == ClockDomain::Wall {
            "ns"
        } else {
            "units"
        };
        let mut widths: Vec<usize> = phases.iter().map(|p| p.len().max(8)).collect();
        for row in breakdown.values() {
            for (i, p) in phases.iter().enumerate() {
                let w = row.get(p).copied().unwrap_or(0).to_string().len();
                widths[i] = widths[i].max(w);
            }
        }
        let mut out = format!(
            "per-level breakdown ({}, {unit})\n",
            self.domain.as_str()
        );
        out.push_str("level");
        for (i, p) in phases.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", p, w = widths[i]));
        }
        out.push_str("     total\n");
        for (level, row) in &breakdown {
            out.push_str(&format!("{level:>5}"));
            let mut total = 0u64;
            for (i, p) in phases.iter().enumerate() {
                let v = row.get(p).copied().unwrap_or(0);
                total += v;
                out.push_str(&format!("  {v:>w$}", w = widths[i]));
            }
            out.push_str(&format!("  {total:>8}\n"));
        }
        if self.total_dropped() > 0 {
            out.push_str(&format!(
                "(truncated: {} events dropped on ring overflow)\n",
                self.total_dropped()
            ));
        }
        out
    }
}

fn event_json(ev: &TraceEvent) -> String {
    let kind = match ev.kind {
        EventKind::Span => "span",
        EventKind::Instant => "instant",
    };
    let mut s = format!(
        "{{\"ts\": {}, \"dur\": {}, \"name\": \"{}\", \"cat\": \"{}\", \"kind\": \"{kind}\"",
        ev.ts_ns,
        ev.dur_ns,
        escape(ev.name),
        escape(ev.cat)
    );
    if ev.level != NO_LEVEL {
        s.push_str(&format!(", \"level\": {}", ev.level));
    }
    s.push_str(&format!(", \"arg\": {}}}", ev.arg));
    s
}

/// Re-indents a `CounterSet::to_json` object so it nests inside an
/// outer object at `pad` depth.
fn indent_object(obj: &str, pad: &str) -> String {
    let mut lines = obj.lines();
    let mut out = String::from(lines.next().unwrap_or("{}"));
    for line in lines {
        out.push('\n');
        out.push_str(pad);
        out.push_str(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::check_syntax;
    use crate::tracer::{ClockDomain, Tracer};

    fn sample() -> TraceReport {
        let t = Tracer::for_ranks(ClockDomain::VirtualWork, 2, 16);
        t.end(0, "gen", "compute", 0, 0, 10);
        t.end(0, "deliver", "net", 0, 0, 4);
        t.end(1, "gen", "compute", 0, 0, 8);
        t.end(0, "gen", "compute", 1, 0, 3);
        t.instant(t.run_lane(), "retry", "fault", 1, 2);
        t.end(t.run_lane(), "level", "run", 1, 0, 25);
        t.registry().counter("exchange.messages").add(7);
        t.report()
    }

    #[test]
    fn exports_are_valid_json() {
        let rep = sample();
        check_syntax(&rep.to_json()).expect("report json");
        check_syntax(&rep.chrome_trace_json()).expect("chrome json");
        check_syntax(&rep.metrics_json()).expect("metrics json");
    }

    #[test]
    fn chrome_export_names_lanes_and_spans() {
        let chrome = sample().chrome_trace_json();
        assert!(chrome.contains("\"thread_name\""));
        assert!(chrome.contains("\"rank0\""));
        assert!(chrome.contains("\"run\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"level\":1"));
        assert!(chrome.contains("\"clock_domain\":\"virtual-work\""));
    }

    #[test]
    fn virtual_report_is_byte_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
        assert_eq!(sample().chrome_trace_json(), sample().chrome_trace_json());
    }

    #[test]
    fn level_breakdown_sums_across_lanes() {
        let b = sample().level_breakdown();
        assert_eq!(b[&0]["gen"], 18, "rank0 + rank1");
        assert_eq!(b[&0]["deliver"], 4);
        assert_eq!(b[&1]["gen"], 3);
        assert_eq!(b[&1]["level"], 25);
        let table = sample().level_table();
        assert!(table.contains("level"));
        assert!(table.contains("gen"));
        assert!(table.contains("virtual-work"));
    }

    #[test]
    fn metrics_json_includes_bookkeeping() {
        let m = sample().metrics_json();
        assert!(m.contains("\"exchange.messages\": 7"));
        assert!(m.contains("\"trace.events\": 6"));
        assert!(m.contains("\"trace.dropped_events\": 0"));
    }
}
