//! Contention-free data shuffling within a CPE cluster (paper §4.3).
//!
//! The reaction modules of the BFS (and of any shuffle-shaped graph kernel)
//! must take a stream of dynamically generated records and scatter them
//! into per-destination buffers in main memory — *without* main-memory
//! atomics (slow, incomplete ISA) and *without* arbitrary CPE↔CPE messages
//! (the synchronous mesh would deadlock). The paper's answer is a static
//! dataflow over the 8×8 mesh:
//!
//! ```text
//!  columns:   0   1   2   3  |  4     5   |  6   7
//!  role:      producers      |  routers   |  consumers
//!                            |  (up) (dn) |
//! ```
//!
//! * **Producers** DMA-read input in batches, compute each record's
//!   destination bucket, and pass records rightwards along their row to a
//!   router column.
//! * **Routers** move records vertically to the destination consumer's
//!   row — column 4 strictly upwards, column 5 strictly downwards, so no
//!   circular wait can form — then pass them rightwards to the consumer.
//! * **Consumers** own disjoint bucket sets (bucket *mod* consumer count)
//!   and disjoint output regions, buffering each bucket to a 256 B batch in
//!   SPM and DMA-writing full batches — contention-free by construction.
//!
//! [`ShuffleEngine::run`] executes this dataflow functionally (records
//! really move and land in their buckets), validates the route set against
//! the mesh deadlock detector, enforces the SPM bucket-capacity limit
//! (§4.3's "up to 1024 destinations in practice"), and accounts simulated
//! time, from which the §4.3 micro-benchmark (≈10 GB/s of a 14.5 GB/s
//! memory-shared bound) is regenerated.

use crate::config::ChipConfig;
use crate::dma::DmaEngine;
use crate::error::ArchError;
use crate::mesh::{CpeId, Mesh, Route};
use crate::SimNanos;
use std::collections::HashMap;

/// Role of a CPE column in the shuffle dataflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Reads input from memory, generates records.
    Producer,
    /// Moves records vertically (strictly up).
    RouterUp,
    /// Moves records vertically (strictly down).
    RouterDown,
    /// Buffers records per bucket and writes batches to memory.
    Consumer,
}

/// Column-role assignment over the mesh.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShuffleLayout {
    /// Producer column indices.
    pub producer_cols: Vec<u8>,
    /// The column routing upwards.
    pub router_up_col: u8,
    /// The column routing downwards.
    pub router_down_col: u8,
    /// Consumer column indices.
    pub consumer_cols: Vec<u8>,
    /// SPM bytes reserved per consumer for input staging, code and stack
    /// (not available for bucket buffers).
    pub consumer_reserved_bytes: u32,
    /// Bucket batch size (256 B — the DMA knee).
    pub batch_bytes: u32,
    /// Buffers per bucket (2 = double buffering so DMA overlaps fill).
    pub buffers_per_bucket: u32,
}

impl ShuffleLayout {
    /// The paper's Figure 6 layout: four producer columns, one up-router,
    /// one down-router, two consumer columns; 256 B double-buffered bucket
    /// batches with half the SPM reserved. Yields exactly the paper's
    /// "up to 1024 destinations in practice".
    pub fn paper_default() -> Self {
        Self {
            producer_cols: vec![0, 1, 2, 3],
            router_up_col: 4,
            router_down_col: 5,
            consumer_cols: vec![6, 7],
            consumer_reserved_bytes: 32 * 1024,
            batch_bytes: 256,
            buffers_per_bucket: 2,
        }
    }

    /// Validates the layout against a mesh side length.
    pub fn validate(&self, side: u8) -> Result<(), ArchError> {
        let mut seen = vec![false; side as usize];
        let mut mark = |c: u8, what: &str| -> Result<(), ArchError> {
            if c >= side {
                return Err(ArchError::BadLayout(format!("{what} column {c} outside mesh")));
            }
            if seen[c as usize] {
                return Err(ArchError::BadLayout(format!("column {c} has two roles")));
            }
            seen[c as usize] = true;
            Ok(())
        };
        if self.producer_cols.is_empty() {
            return Err(ArchError::BadLayout("no producer columns".into()));
        }
        if self.consumer_cols.is_empty() {
            return Err(ArchError::BadLayout("no consumer columns".into()));
        }
        for &c in &self.producer_cols {
            mark(c, "producer")?;
        }
        mark(self.router_up_col, "router-up")?;
        mark(self.router_down_col, "router-down")?;
        for &c in &self.consumer_cols {
            mark(c, "consumer")?;
        }
        if self.batch_bytes == 0 || self.buffers_per_bucket == 0 {
            return Err(ArchError::BadLayout("zero batch size or buffer count".into()));
        }
        Ok(())
    }

    /// Role of a column, if it has one.
    pub fn role_of_col(&self, col: u8) -> Option<Role> {
        if self.producer_cols.contains(&col) {
            Some(Role::Producer)
        } else if col == self.router_up_col {
            Some(Role::RouterUp)
        } else if col == self.router_down_col {
            Some(Role::RouterDown)
        } else if self.consumer_cols.contains(&col) {
            Some(Role::Consumer)
        } else {
            None
        }
    }

    /// Producer CPEs, row-major.
    pub fn producers(&self, side: u8) -> Vec<CpeId> {
        (0..side)
            .flat_map(|r| self.producer_cols.iter().map(move |&c| CpeId::new(r, c)))
            .collect()
    }

    /// Consumer CPEs, row-major; index in this list is the consumer index
    /// used by `bucket mod consumers`.
    pub fn consumers(&self, side: u8) -> Vec<CpeId> {
        (0..side)
            .flat_map(|r| self.consumer_cols.iter().map(move |&c| CpeId::new(r, c)))
            .collect()
    }

    /// Maximum destination buckets the consumers' SPM can buffer: per
    /// consumer `(spm - reserved) / (batch * buffers)`, times the number of
    /// consumers.
    pub fn max_destinations(&self, cfg: &ChipConfig) -> usize {
        let side = cfg.mesh_side as u8;
        let per_consumer = (cfg.spm_bytes.saturating_sub(self.consumer_reserved_bytes)
            / (self.batch_bytes * self.buffers_per_bucket)) as usize;
        per_consumer * self.consumers(side).len()
    }
}

/// Outcome of a functional shuffle run.
#[derive(Clone, Debug)]
pub struct ShuffleReport<T> {
    /// Records grouped by destination bucket — the shuffle's output, as it
    /// would land in the per-destination memory regions.
    pub buckets: Vec<Vec<T>>,
    /// Simulated wall time of the run.
    pub elapsed_ns: SimNanos,
    /// Bytes of input read by producers (equals bytes written, up to final
    /// partial batches).
    pub moved_bytes: u64,
    /// Busiest register link's flit count.
    pub max_link_flits: u64,
    /// Number of distinct routes exercised (all verified deadlock-free).
    pub routes_checked: usize,
}

impl<T> ShuffleReport<T> {
    /// Achieved shuffle throughput in GB/s (input-side).
    pub fn throughput_gbps(&self) -> f64 {
        crate::gbps(self.moved_bytes, self.elapsed_ns)
    }
}

/// The contention-free shuffle engine for one CPE cluster.
///
/// ```
/// use sw_arch::{ChipConfig, ShuffleEngine, ShuffleLayout};
///
/// let engine = ShuffleEngine::new(ChipConfig::sw26010(), ShuffleLayout::paper_default()).unwrap();
/// engine.verify_deadlock_free().unwrap();
/// let report = engine.run(&[1u32, 2, 3, 4], 4, 8, |x| (*x as usize) % 4).unwrap();
/// assert_eq!(report.buckets[0], vec![4]);
/// assert_eq!(report.buckets[1], vec![1]);
/// ```
#[derive(Clone, Debug)]
pub struct ShuffleEngine {
    cfg: ChipConfig,
    layout: ShuffleLayout,
    mesh: Mesh,
    dma: DmaEngine,
}

impl ShuffleEngine {
    /// Builds an engine, validating the layout.
    pub fn new(cfg: ChipConfig, layout: ShuffleLayout) -> Result<Self, ArchError> {
        layout.validate(cfg.mesh_side as u8)?;
        Ok(Self {
            mesh: Mesh::new(cfg.mesh_side as u8),
            dma: DmaEngine::new(cfg),
            cfg,
            layout,
        })
    }

    /// The layout in use.
    pub fn layout(&self) -> &ShuffleLayout {
        &self.layout
    }

    /// The route a record takes from `producer` to `consumer`: rightwards
    /// to the router column (up-router when the consumer row is not below,
    /// down-router otherwise), vertically to the consumer's row, rightwards
    /// to the consumer. Degenerate hops (zero distance) are elided.
    pub fn plan_route(&self, producer: CpeId, consumer: CpeId) -> Result<Route, ArchError> {
        let router_col = if consumer.row <= producer.row {
            self.layout.router_up_col
        } else {
            self.layout.router_down_col
        };
        let mut hops = vec![producer];
        let enter = CpeId::new(producer.row, router_col);
        if enter != *hops.last().unwrap() {
            hops.push(enter);
        }
        let turn = CpeId::new(consumer.row, router_col);
        if turn != *hops.last().unwrap() {
            hops.push(turn);
        }
        if consumer != *hops.last().unwrap() {
            hops.push(consumer);
        }
        let route = Route { hops };
        for (a, b) in route.links() {
            self.mesh.check_link(a, b)?;
        }
        Ok(route)
    }

    /// All producer→consumer routes of the layout, for deadlock analysis.
    pub fn all_routes(&self) -> Result<Vec<Route>, ArchError> {
        let side = self.cfg.mesh_side as u8;
        let mut routes = Vec::new();
        for p in self.layout.producers(side) {
            for c in self.layout.consumers(side) {
                routes.push(self.plan_route(p, c)?);
            }
        }
        Ok(routes)
    }

    /// Proves the layout deadlock-free under the mesh's channel-dependency
    /// criterion.
    pub fn verify_deadlock_free(&self) -> Result<usize, ArchError> {
        let routes = self.all_routes()?;
        self.mesh.check_deadlock_free(&routes)?;
        Ok(routes.len())
    }

    /// Analytic steady-state throughput bound (GB/s): reads and writes
    /// share the memory controller (≤ half the 28.9 GB/s peak each, the
    /// 14.5 GB/s of §4.3), degraded by the pipeline efficiency factor.
    /// The register links (46 GB/s each, conflict-free) never bind first.
    pub fn throughput_bound_gbps(&self) -> f64 {
        let side = self.cfg.mesh_side as u8;
        let read_cpes = self.layout.producers(side).len() as u32;
        let write_cpes = self.layout.consumers(side).len() as u32;
        let r = self.dma.cluster_gbps(self.cfg.dma_batch_bytes, read_cpes);
        let w = self.dma.cluster_gbps(self.cfg.dma_batch_bytes, write_cpes);
        let total = r + w;
        let scale = (self.cfg.cluster_peak_gbps / total).min(1.0);
        (r * scale).min(w * scale) * self.cfg.shuffle_efficiency
    }

    /// Allocates the layout's working buffers in a real [`crate::cluster::CpeCluster`]'s
    /// SPM allocators — producers' input staging (double-buffered DMA
    /// batches), routers' flit buffers, consumers' reserve plus one
    /// double-buffered batch per owned bucket — and returns the busiest
    /// CPE's usage. This is the concrete form of the §4.3 sizing
    /// arithmetic; it fails with [`ArchError::SpmOverflow`] exactly when
    /// [`ShuffleLayout::max_destinations`] says it must.
    pub fn audit_spm(
        &self,
        cluster: &mut crate::cluster::CpeCluster,
        num_buckets: usize,
    ) -> Result<usize, ArchError> {
        let side = self.cfg.mesh_side as u8;
        let batch = self.cfg.dma_batch_bytes as usize;
        cluster.reset_spms();
        for p in self.layout.producers(side) {
            cluster.spm_mut(p).alloc("input staging (double-buffered)", 2 * batch)?;
        }
        for r in 0..side {
            for col in [self.layout.router_up_col, self.layout.router_down_col] {
                cluster
                    .spm_mut(CpeId::new(r, col))
                    .alloc("router flit buffer", 2 * self.cfg.reg_bytes_per_cycle as usize)?;
            }
        }
        let consumers = self.layout.consumers(side);
        let mut max_used = 0;
        for (ci, c) in consumers.iter().enumerate() {
            let spm = cluster.spm_mut(*c);
            spm.alloc("reserve (code/stack/staging)", self.layout.consumer_reserved_bytes as usize)?;
            let owned = num_buckets / consumers.len()
                + usize::from(ci < num_buckets % consumers.len());
            spm.alloc(
                "bucket batches (double-buffered)",
                owned * (self.layout.batch_bytes * self.layout.buffers_per_bucket) as usize,
            )?;
            max_used = max_used.max(spm.in_use());
        }
        Ok(max_used)
    }

    /// Runs the shuffle functionally: every record in `inputs` is routed
    /// over the mesh to the consumer owning its bucket and lands in that
    /// bucket, in producer-order within each (producer, bucket) pair.
    ///
    /// `bucket_of` maps a record to its destination bucket in
    /// `0..num_buckets`; `item_bytes` is the record's wire size.
    ///
    /// Fails with [`ArchError::TooManyDestinations`] when `num_buckets`
    /// exceeds the SPM capacity bound — the failure mode that kills the
    /// Direct-CPE configuration past 256 nodes in Figure 11.
    pub fn run<T: Clone>(
        &self,
        inputs: &[T],
        num_buckets: usize,
        item_bytes: usize,
        bucket_of: impl Fn(&T) -> usize,
    ) -> Result<ShuffleReport<T>, ArchError> {
        let max = self.layout.max_destinations(&self.cfg);
        if num_buckets > max {
            return Err(ArchError::TooManyDestinations {
                requested: num_buckets,
                max,
            });
        }
        let routes = self.all_routes()?;
        self.mesh.check_deadlock_free(&routes)?;

        let side = self.cfg.mesh_side as u8;
        let producers = self.layout.producers(side);
        let consumers = self.layout.consumers(side);

        // Functional movement with per-link flit accounting.
        let mut buckets: Vec<Vec<T>> = vec![Vec::new(); num_buckets];
        let mut link_flits: HashMap<(CpeId, CpeId), u64> = HashMap::new();
        let flits_per_item =
            (item_bytes as u64).div_ceil(self.cfg.reg_bytes_per_cycle as u64).max(1);

        for (i, item) in inputs.iter().enumerate() {
            let b = bucket_of(item);
            assert!(b < num_buckets, "bucket {b} out of range {num_buckets}");
            let producer = producers[i % producers.len()];
            let consumer = consumers[b % consumers.len()];
            let route = self.plan_route(producer, consumer)?;
            for link in route.links() {
                *link_flits.entry(link).or_insert(0) += flits_per_item;
            }
            buckets[b].push(item.clone());
        }

        let moved_bytes = (inputs.len() * item_bytes) as u64;
        let max_link_flits = link_flits.values().copied().max().unwrap_or(0);

        // Timing: memory-shared read/write stream vs the busiest register
        // link, whichever binds; divided by the pipeline efficiency.
        let t_mem = self.dma.shared_rw_ns(
            moved_bytes,
            self.cfg.dma_batch_bytes,
            producers.len() as u32,
            moved_bytes,
            self.cfg.dma_batch_bytes,
            consumers.len() as u32,
        );
        let t_reg = max_link_flits as f64 * self.cfg.cycle_ns();
        let elapsed_ns = t_mem.max(t_reg) / self.cfg.shuffle_efficiency;

        Ok(ShuffleReport {
            buckets,
            elapsed_ns,
            moved_bytes,
            max_link_flits,
            routes_checked: routes.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ShuffleEngine {
        ShuffleEngine::new(ChipConfig::sw26010(), ShuffleLayout::paper_default()).unwrap()
    }

    #[test]
    fn paper_layout_is_valid_and_deadlock_free() {
        let e = engine();
        let routes = e.verify_deadlock_free().unwrap();
        // 32 producers × 16 consumers.
        assert_eq!(routes, 32 * 16);
    }

    #[test]
    fn paper_layout_max_destinations_is_1024() {
        let e = engine();
        assert_eq!(e.layout().max_destinations(&ChipConfig::sw26010()), 1024);
    }

    #[test]
    fn routes_only_use_legal_directions() {
        let e = engine();
        for r in e.all_routes().unwrap() {
            for (a, b) in r.links() {
                // Horizontal moves go rightwards; vertical moves stay in a
                // router column and respect its direction.
                if a.row == b.row {
                    assert!(b.col > a.col, "leftward hop {a}->{b}");
                } else {
                    assert_eq!(a.col, b.col);
                    if a.col == e.layout().router_up_col {
                        assert!(b.row < a.row, "up-router went down");
                    } else {
                        assert_eq!(a.col, e.layout().router_down_col);
                        assert!(b.row > a.row, "down-router went up");
                    }
                }
            }
        }
    }

    #[test]
    fn shuffle_is_functionally_correct() {
        let e = engine();
        let inputs: Vec<u32> = (0..10_000).collect();
        let nb = 100;
        let rep = e.run(&inputs, nb, 8, |x| (*x as usize) % nb).unwrap();
        assert_eq!(rep.buckets.len(), nb);
        let total: usize = rep.buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, inputs.len());
        for (b, items) in rep.buckets.iter().enumerate() {
            for &x in items {
                assert_eq!(x as usize % nb, b);
            }
            // Stable within a bucket per producer interleaving: just check
            // sortedness of each producer's sub-sequence is preserved for
            // the round-robin assignment (every 32nd element ascending).
            let mut last: HashMap<usize, u32> = HashMap::new();
            for &x in items {
                let p = (x as usize) % 32;
                if let Some(&prev) = last.get(&p) {
                    assert!(x > prev);
                }
                last.insert(p, x);
            }
        }
    }

    #[test]
    fn too_many_buckets_is_the_direct_cpe_crash() {
        let e = engine();
        let inputs: Vec<u32> = (0..10).collect();
        let err = e.run(&inputs, 4096, 8, |x| *x as usize % 4096).unwrap_err();
        assert!(matches!(
            err,
            ArchError::TooManyDestinations { requested: 4096, max: 1024 }
        ));
    }

    #[test]
    fn throughput_micro_benchmark_lands_near_10_gbps() {
        // §4.3: "we achieve 10 GB/s register to register bandwidth out of a
        // theoretical 14.5 GB/s".
        let e = engine();
        let bound = e.throughput_bound_gbps();
        assert!((9.0..11.0).contains(&bound), "bound = {bound}");

        // And a measured large run should land on the same number.
        let inputs: Vec<u64> = (0..2_000_000u64).collect();
        let rep = e.run(&inputs, 1024, 8, |x| (*x as usize) % 1024).unwrap();
        let got = rep.throughput_gbps();
        assert!((bound - got).abs() / bound < 0.05, "got {got}, bound {bound}");
    }

    #[test]
    fn empty_input_is_fine() {
        let e = engine();
        let rep = e.run::<u32>(&[], 16, 8, |_| 0).unwrap();
        assert_eq!(rep.moved_bytes, 0);
        assert!(rep.buckets.iter().all(|b| b.is_empty()));
    }

    #[test]
    fn invalid_layouts_rejected() {
        let cfg = ChipConfig::sw26010();
        let mut l = ShuffleLayout::paper_default();
        l.producer_cols = vec![];
        assert!(matches!(
            ShuffleEngine::new(cfg, l),
            Err(ArchError::BadLayout(_))
        ));

        let mut l = ShuffleLayout::paper_default();
        l.router_up_col = 0; // collides with a producer column
        assert!(matches!(
            ShuffleEngine::new(cfg, l),
            Err(ArchError::BadLayout(_))
        ));

        let mut l = ShuffleLayout::paper_default();
        l.consumer_cols = vec![9];
        assert!(matches!(
            ShuffleEngine::new(cfg, l),
            Err(ArchError::BadLayout(_))
        ));
    }

    #[test]
    fn spm_audit_agrees_with_max_destinations() {
        let cfg = ChipConfig::sw26010();
        let e = ShuffleEngine::new(cfg, ShuffleLayout::paper_default()).unwrap();
        let mut cluster = crate::cluster::CpeCluster::new(cfg);
        let max = e.layout().max_destinations(&cfg);
        // Exactly at capacity: fits, and the busiest consumer is full.
        let used = e.audit_spm(&mut cluster, max).unwrap();
        assert_eq!(used, cfg.spm_bytes as usize);
        // One more bucket overflows some consumer.
        let err = e.audit_spm(&mut cluster, max + 1).unwrap_err();
        assert!(matches!(err, ArchError::SpmOverflow { .. }));
        // Producers and routers stay tiny.
        let p0 = cluster.spm(CpeId::new(0, 0)).in_use();
        assert_eq!(p0, 2 * cfg.dma_batch_bytes as usize);
    }

    #[test]
    fn alternative_layout_changes_capacity() {
        // Three consumer columns -> 24 consumers -> 1536 destinations.
        let cfg = ChipConfig::sw26010();
        let l = ShuffleLayout {
            producer_cols: vec![0, 1, 2],
            router_up_col: 3,
            router_down_col: 4,
            consumer_cols: vec![5, 6, 7],
            ..ShuffleLayout::paper_default()
        };
        let e = ShuffleEngine::new(cfg, l).unwrap();
        assert_eq!(e.layout().max_destinations(&cfg), 1536);
        e.verify_deadlock_free().unwrap();
    }
}
