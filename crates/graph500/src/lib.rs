//! # sw-graph500 — the Graph500 benchmark harness
//!
//! Implements the benchmark steps the paper follows (§2.3):
//!
//! 1. generate the raw Kronecker edge list ([`sw_graph::kronecker`]),
//! 2. randomly select 64 non-trivial search roots ([`roots`]),
//! 3. construct the distributed graph (the backend's build),
//! 4. run the BFS kernel for each root ([`kernel`], over the shared
//!    per-root loop in [`harness`]),
//! 5. validate every parent tree under the benchmark's rules
//!    ([`validate`]),
//! 6. compute and report TEPS statistics ([`teps`], [`report`]).
//!
//! The kernel times the *threaded* backend with real wall clocks — these
//! are host-machine TEPS, honest numbers for the hardware they ran on. The
//! machine-scale projections of the paper's figures come from
//! `swbfs_core::modeled` and are reported separately by `sw-bench`.

pub mod harness;
pub mod kernel;
pub mod kernel2;
pub mod report;
pub mod roots;
pub mod spec;
pub mod teps;
pub mod validate;
pub mod validate_dist;

pub use harness::{drive_roots, RootAssessment, RootRun};
pub use kernel::{
    run_benchmark, run_benchmark_distributed_validation, run_benchmark_traced, BenchmarkResult,
};
pub use kernel2::{run_kernel2, Kernel2Result};
pub use roots::select_roots;
pub use spec::Graph500Spec;
pub use teps::TepsStats;
pub use validate::{validate_bfs, ValidationError};
pub use validate_dist::DistValidator;
