//! DMA engine timing model.
//!
//! CPEs touch main memory only through explicit DMA. A request costs a
//! fixed issue overhead plus a streaming transfer, and all CPEs of a core
//! group share one memory controller whose peak is 28.9 GB/s. This gives
//! the two measured curves the paper calibrates its design against:
//!
//! * **Figure 3** — cluster bandwidth vs chunk size: small chunks are
//!   dominated by per-request overhead; ≥256 B chunks reach the controller
//!   peak. The MPE path saturates ~10× lower (9.4 GB/s).
//! * **Figure 5** — bandwidth vs number of participating CPEs at 256 B
//!   chunks: each CPE sustains ~1.8 GB/s, so ~16 CPEs saturate the
//!   controller; more CPEs add nothing.
//!
//! The model is analytic but exposed as a *timing engine*: callers issue
//! simulated transfers and receive simulated nanoseconds, so benchmarks
//! regenerate the curves by measurement rather than by printing the
//! formula's inputs.

use crate::config::ChipConfig;
use crate::SimNanos;

/// The per-core-group DMA/memory-controller timing model.
#[derive(Clone, Copy, Debug)]
pub struct DmaEngine {
    cfg: ChipConfig,
}

impl DmaEngine {
    /// A DMA engine for the given chip.
    pub fn new(cfg: ChipConfig) -> Self {
        Self { cfg }
    }

    /// Sustained bandwidth (GB/s) of one CPE issuing back-to-back DMA
    /// requests of `chunk` bytes, ignoring controller saturation.
    pub fn per_cpe_gbps(&self, chunk: u32) -> f64 {
        if chunk == 0 {
            return 0.0;
        }
        let transfer_ns = chunk as f64 / self.cfg.cpe_dma_line_gbps;
        chunk as f64 / (self.cfg.cpe_dma_overhead_ns + transfer_ns)
    }

    /// Bandwidth ceiling (GB/s) the memory controller imposes for
    /// `chunk`-byte requests: one request per [`ChipConfig::mem_request_ns`]
    /// slot, capped at the streaming peak. At 256 B the two limits meet —
    /// the knee of Figure 3.
    pub fn controller_cap_gbps(&self, chunk: u32) -> f64 {
        (chunk as f64 / self.cfg.mem_request_ns).min(self.cfg.cluster_peak_gbps)
    }

    /// Sustained bandwidth (GB/s) of `ncpes` CPEs issuing `chunk`-byte DMA
    /// requests concurrently: per-CPE rate × count, capped by the memory
    /// controller. This is the quantity Figures 3 and 5 plot.
    pub fn cluster_gbps(&self, chunk: u32, ncpes: u32) -> f64 {
        (self.per_cpe_gbps(chunk) * ncpes as f64).min(self.controller_cap_gbps(chunk))
    }

    /// Simulated time for `ncpes` CPEs to collectively move `bytes` of
    /// memory traffic in `chunk`-byte requests (read or write — the paper
    /// measured reads and notes writes perform similarly).
    pub fn transfer_ns(&self, bytes: u64, chunk: u32, ncpes: u32) -> SimNanos {
        let bw = self.cluster_gbps(chunk, ncpes);
        if bw <= 0.0 {
            return f64::INFINITY;
        }
        bytes as f64 / bw
    }

    /// Simulated time when reads and writes of the given sizes share the
    /// memory controller (the shuffle's steady state: producers stream in
    /// while consumers stream out).
    pub fn shared_rw_ns(
        &self,
        read_bytes: u64,
        read_chunk: u32,
        read_cpes: u32,
        write_bytes: u64,
        write_chunk: u32,
        write_cpes: u32,
    ) -> SimNanos {
        let r = self.cluster_gbps(read_chunk, read_cpes);
        let w = self.cluster_gbps(write_chunk, write_cpes);
        if r <= 0.0 || w <= 0.0 {
            return f64::INFINITY;
        }
        // Scale both streams down proportionally if their sum exceeds the
        // controller peak.
        let total = r + w;
        let scale = (self.cfg.cluster_peak_gbps / total).min(1.0);
        let t_read = read_bytes as f64 / (r * scale);
        let t_write = write_bytes as f64 / (w * scale);
        t_read.max(t_write)
    }

    /// The chip configuration this engine models.
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// A degraded copy of this engine (fault injection: a straggler core
    /// group): every DMA request pays `extra_overhead_ns` more issue
    /// latency and the memory controller streams at `peak_derate` of its
    /// nominal peak. `(0.0, 1.0)` returns an engine with identical
    /// timing.
    pub fn degraded(&self, extra_overhead_ns: f64, peak_derate: f64) -> DmaEngine {
        assert!(
            extra_overhead_ns >= 0.0 && peak_derate > 0.0 && peak_derate <= 1.0,
            "degradation must slow the engine, not speed it up"
        );
        let mut cfg = self.cfg;
        cfg.cpe_dma_overhead_ns += extra_overhead_ns;
        cfg.cluster_peak_gbps *= peak_derate;
        DmaEngine::new(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbps;

    fn engine() -> DmaEngine {
        DmaEngine::new(ChipConfig::sw26010())
    }

    #[test]
    fn figure3_shape_saturation_at_256b() {
        let e = engine();
        let full = |chunk| e.cluster_gbps(chunk, 64);
        // Monotone non-decreasing in chunk size.
        let chunks = [8u32, 16, 32, 64, 128, 256, 512, 1024, 4096];
        for w in chunks.windows(2) {
            assert!(full(w[0]) <= full(w[1]) + 1e-9);
        }
        // ≥256 B reaches the 28.9 GB/s peak; 8 B is far below it.
        assert!((full(256) - 28.9).abs() < 1e-6, "got {}", full(256));
        assert!(full(8) < 28.9 * 0.5, "got {}", full(8));
    }

    #[test]
    fn figure3_cpe_vs_mpe_is_about_10x() {
        let e = engine();
        let cpe = e.cluster_gbps(256, 64);
        let mpe = crate::mpe::Mpe::new(*e.config()).bandwidth_gbps(256);
        let ratio = cpe / mpe;
        assert!(
            (9.0..11.0).contains(&ratio),
            "CPE/MPE ratio {ratio} should be ~10x (Fig. 3 caption)"
        );
    }

    #[test]
    fn figure5_shape_16_cpes_saturate() {
        let e = engine();
        let bw = |n| e.cluster_gbps(256, n);
        for n in 1..16 {
            assert!(bw(n) < bw(n + 1) || bw(n) >= 28.9 - 1e-6);
        }
        // 16 CPEs give ≥90% of peak; 64 give no more than peak.
        assert!(bw(16) > 0.9 * 28.9, "bw(16) = {}", bw(16));
        assert_eq!(bw(16).max(bw(64)), bw(64));
        assert!((bw(64) - 28.9).abs() < 1e-6);
        // 1 CPE is far from saturating.
        assert!(bw(1) < 0.1 * 28.9);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        let e = engine();
        let bytes = 1 << 20;
        let ns = e.transfer_ns(bytes, 256, 64);
        let measured = gbps(bytes, ns);
        assert!((measured - e.cluster_gbps(256, 64)).abs() < 1e-6);
    }

    #[test]
    fn zero_chunk_never_completes() {
        let e = engine();
        assert_eq!(e.per_cpe_gbps(0), 0.0);
        assert!(e.transfer_ns(100, 0, 64).is_infinite());
    }

    #[test]
    fn shared_rw_halves_peak() {
        // Symmetric read+write streams at saturating chunk sizes can each
        // get at most half the controller: the 14.5 GB/s bound of §4.3.
        let e = engine();
        let bytes = 1 << 24;
        let ns = e.shared_rw_ns(bytes, 256, 32, bytes, 256, 16);
        let per_stream = gbps(bytes, ns);
        assert!(
            (per_stream - 28.9 / 2.0).abs() < 1.5,
            "per-stream {per_stream} GB/s"
        );
    }

    #[test]
    fn degraded_engine_is_strictly_slower() {
        let e = engine();
        let d = e.degraded(50.0, 0.6);
        for chunk in [32u32, 256, 4096] {
            assert!(d.per_cpe_gbps(chunk) < e.per_cpe_gbps(chunk));
            assert!(d.cluster_gbps(chunk, 64) <= e.cluster_gbps(chunk, 64));
            // Not strictly slower everywhere: at tiny chunks the
            // request-slot cap (untouched by degradation) binds both.
            assert!(d.transfer_ns(1 << 20, chunk, 64) >= e.transfer_ns(1 << 20, chunk, 64));
        }
        // Where the nominal engine saturates the controller, the derated
        // peak must bite.
        assert!(d.transfer_ns(1 << 20, 256, 64) > e.transfer_ns(1 << 20, 256, 64));
        // Derated peak shows directly at the saturating chunk size.
        assert!((d.cluster_gbps(256, 64) - 28.9 * 0.6).abs() < 1e-6);
        // The identity degradation changes nothing.
        let id = e.degraded(0.0, 1.0);
        assert_eq!(id.cluster_gbps(256, 64), e.cluster_gbps(256, 64));
        assert_eq!(id.transfer_ns(1 << 20, 256, 64), e.transfer_ns(1 << 20, 256, 64));
    }

    #[test]
    #[should_panic(expected = "not speed it up")]
    fn degraded_rejects_speedups() {
        engine().degraded(-1.0, 1.0);
    }

    #[test]
    fn shared_rw_reduces_to_transfer_when_one_side_idle() {
        let e = engine();
        let ns_shared = e.shared_rw_ns(1 << 20, 256, 16, 0, 256, 16);
        let ns_plain = e.transfer_ns(1 << 20, 256, 16);
        // Write side idle: read still shares the controller rating but has
        // no competing bytes, so times differ only by the proportional
        // scale-down of the rating.
        assert!(ns_shared >= ns_plain * 0.99);
    }
}
