//! Protein-interaction reachability — the paper's other motivating domain
//! ("unstructured data such as ... protein structures").
//!
//! Builds a synthetic protein-protein interaction (PPI) network (an R-MAT
//! graph with a flatter initiator than the social default — PPI networks
//! are heavy-tailed but less extreme), then answers reachability and
//! pathway-cost queries:
//!
//! * which proteins are in the same interaction cluster as a query protein
//!   (BFS reachability + hop distance),
//! * minimum interaction-cost pathways (SSSP with confidence-derived
//!   weights),
//! * how deep the query protein sits in the interaction core (k-core).
//!
//! Run with: `cargo run --release --example protein_reachability`

use swbfs::algos::sssp::INF;
use swbfs::algos::{kcore_distributed, sssp_distributed, AlgoCluster};
use swbfs::bfs::config::Messaging;
use swbfs::bfs::{BfsConfig, ClusterBuilder};
use swbfs::graph::kronecker::{generate_kronecker, KroneckerConfig};

fn main() {
    // A flatter initiator (A=0.45) than Graph500's 0.57: still scale-free,
    // closer to measured PPI degree exponents.
    let cfg = KroneckerConfig {
        scale: 14,
        edge_factor: 8,
        a: 0.45,
        b: 0.22,
        c: 0.22,
        seed: 99,
        permute_vertices: true,
    };
    let el = generate_kronecker(&cfg);
    println!(
        "synthetic PPI network: {} proteins, {} interactions\n",
        el.num_vertices,
        el.len()
    );

    // Query protein: a mid-degree one (not the hub — hubs are trivially
    // connected to everything).
    let mut bfs = ClusterBuilder::new(&el, 6, BfsConfig::threaded_small(3))
        .build()
        .unwrap();
    let query = (0..el.num_vertices)
        .find(|&v| (4..=8).contains(&bfs.degree_of(v)))
        .expect("a mid-degree protein");
    println!(
        "query protein: {query} ({} direct interactions)",
        bfs.degree_of(query)
    );

    // Reachability + hop distances.
    let out = bfs.run(query).unwrap();
    let levels = out.levels_from_parents();
    println!(
        "interaction cluster: {} proteins reachable, max path length {}",
        out.reached(),
        out.depth()
    );
    let within3 = levels
        .iter()
        .flatten()
        .filter(|&&l| l <= 3 && l > 0)
        .count();
    println!("proteins within 3 interaction hops: {within3}");

    // Minimum-cost pathways: weight = synthetic interaction confidence.
    let mut cluster = AlgoCluster::new(&el, 6, 3, Messaging::Relay);
    let dist = sssp_distributed(&mut cluster, query, 100);
    let reachable: Vec<u64> = dist.iter().copied().filter(|&d| d != INF).collect();
    let max_cost = reachable.iter().max().unwrap();
    let mean_cost: f64 =
        reachable.iter().sum::<u64>() as f64 / reachable.len() as f64;
    println!(
        "\npathway costs from {query}: mean {mean_cost:.1}, max {max_cost} \
         (confidence-weighted; {} pathways)",
        reachable.len() - 1
    );

    // Hop-optimal vs cost-optimal divergence: proteins where the cheapest
    // pathway is NOT a shortest-hop pathway would show dist > hops * max_w.
    let divergent = levels
        .iter()
        .zip(dist.iter())
        .filter(|(l, &d)| matches!(l, Some(h) if d != INF && d > *h as u64 * 100))
        .count();
    println!("(sanity: {divergent} proteins violate the hop-cost bound — expect 0)");

    // Core placement.
    println!("\ninteraction-core membership of the query protein:");
    for k in [2u64, 3, 4, 6, 8] {
        let mut cluster = AlgoCluster::new(&el, 6, 3, Messaging::Relay);
        let core = kcore_distributed(&mut cluster, k);
        let total = core.iter().filter(|&&x| x).count();
        println!(
            "  {k}-core: {}, core size {total}",
            if core[query as usize] { "IN " } else { "out" }
        );
    }
}
