//! Regenerates Table 2: comparison with published distributed-BFS systems.
//! The literature rows are the paper's own citations; the "present work"
//! row is the paper's measured result; the reproduction rows are produced
//! by this codebase (modeled full machine + honest host-scale threaded
//! run).

use std::time::Instant;
use sw_arch::ChipConfig;
use sw_bench::{experiment_profile, print_table};
use sw_graph500::{run_benchmark, Graph500Spec};
use sw_net::NetworkConfig;
use swbfs_core::traffic::extrapolate_depth;
use swbfs_core::{BfsConfig, ModelOutcome, ModeledCluster};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let host_scale: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(18);

    // Modeled full machine: 40,768 nodes, 26.2M vertices/node (scale 40).
    eprintln!("measuring traffic profile...");
    let base = experiment_profile(18, 16);
    let vpn = 26_200_000u64;
    let growth = (40_768u64 * vpn) as f64 / (1u64 << 18) as f64;
    let outcome = ModeledCluster::new(
        ChipConfig::sw26010(),
        NetworkConfig::taihulight(40_768),
        BfsConfig::paper(),
        vpn,
        extrapolate_depth(&base, growth),
    )
    .run();
    let modeled_gteps = match &outcome {
        ModelOutcome::Completed(r) => r.gteps,
        ModelOutcome::Crashed { error } => panic!("full-machine model crashed: {error}"),
    };

    // Honest host-scale run on the threaded backend.
    eprintln!("running host-scale Graph500 (scale {host_scale}, 8 ranks, 8 roots)...");
    let t0 = Instant::now();
    let res = run_benchmark(
        &Graph500Spec::quick(host_scale, 2, 8),
        8,
        BfsConfig::threaded_small(4),
    )
    .expect("host benchmark");
    eprintln!("host benchmark took {:.1}s", t0.elapsed().as_secs_f64());
    let host_gteps = res.stats.harmonic_mean / 1e9;

    println!("\nTable 2: distributed BFS results (paper rows + this reproduction)\n");
    let rows = vec![
        row("Ueno [11]", 2013, 35, 317.0, "1,366 + 4096 GPUs", "Xeon X5670 + Fermi M2050", "Hetero."),
        row("Beamer [3]", 2013, 35, 240.0, "7,187 (115.0K cores)", "Cray XK6", "Homo."),
        row("Hiragushi [12]", 2013, 31, 117.0, "1,024", "Tesla M2090", "Hetero."),
        row("Checconi [4]", 2014, 40, 15_363.0, "65,536 (1.05M cores)", "Blue Gene/Q", "Homo."),
        row("Buluc [5]", 2015, 36, 865.3, "4,817 (115.6K cores)", "Cray XC30", "Homo."),
        row("K Computer [2]", 2015, 40, 38_621.4, "82,944 (663.5K cores)", "SPARC64 VIIIfx", "Homo."),
        row("Bisson [13]", 2016, 33, 830.0, "4,096", "Kepler K20X", "Hetero."),
        row("Lin (paper)", 2016, 40, 23_755.7, "40,768 (10.6M cores)", "SW26010", "Hetero."),
        row(
            "This repro (modeled)",
            2026,
            40,
            modeled_gteps,
            "40,768 (modeled)",
            "SW26010 simulator",
            "Hetero.",
        ),
        row(
            "This repro (host)",
            2026,
            host_scale,
            host_gteps,
            "8 threaded ranks",
            "host CPU",
            "Homo.",
        ),
    ];
    print_table(
        &["Authors", "Year", "Scale", "GTEPS", "Processors", "Architecture", "Type"],
        &rows,
    );
    println!(
        "\nModeled-vs-paper headline: {:.0} vs 23,755.7 GTEPS ({:+.0}%).",
        modeled_gteps,
        100.0 * (modeled_gteps - 23_755.7) / 23_755.7
    );
}

fn row(
    who: &str,
    year: u32,
    scale: u32,
    gteps: f64,
    procs: &str,
    arch: &str,
    ty: &str,
) -> Vec<String> {
    vec![
        who.into(),
        year.to_string(),
        scale.to_string(),
        if gteps >= 100.0 {
            format!("{gteps:.1}")
        } else {
            format!("{gteps:.3}")
        },
        procs.into(),
        arch.into(),
        ty.into(),
    ]
}
