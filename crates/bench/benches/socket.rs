//! The cost of a real process boundary: full scale-14 BFS runs on the
//! in-process shared-memory fabric vs the multi-process socket fabric
//! (Unix-domain and TCP loopback), plus the one-time price of spawning
//! and tearing down an 8-process fabric.
//!
//! The socket groups discover `swbfs-rankd` at runtime and are skipped
//! (with a note) when the daemon binary was never built, so
//! `cargo bench` stays runnable from a cold checkout.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig};
use swbfs_core::config::BfsConfig;
use swbfs_core::engine::{ClusterBuilder, SharedMem, SocketTransport, Transport};

const RANKS: u32 = 8;
const ROOT: u64 = 1;

fn scale14() -> EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(14, 8))
}

fn bench_engine<T: Transport>(c: &mut Criterion, el: &EdgeList, name: &str, transport: T) {
    let cfg = BfsConfig::threaded_small(4);
    let mut engine = ClusterBuilder::new(el, RANKS, cfg)
        .transport(transport)
        .build()
        .unwrap();
    let edges = engine.run(ROOT).unwrap().total_edges_scanned();
    let mut g = c.benchmark_group("bfs_scale14_8ranks");
    g.sample_size(10);
    g.throughput(Throughput::Elements(edges));
    g.bench_function(name, |b| {
        b.iter(|| engine.run(ROOT).unwrap());
    });
    g.finish();
}

fn bench_fabrics(c: &mut Criterion) {
    let el = scale14();
    bench_engine(c, &el, "shared_mem", SharedMem::new());
    if SocketTransport::unix().resolve_rankd().is_none() {
        eprintln!(
            "socket benches skipped: swbfs-rankd not found — \
             `cargo build --release -p swbfs-core --bin swbfs-rankd` or set SWBFS_RANKD"
        );
        return;
    }
    bench_engine(c, &el, "socket_unix", SocketTransport::unix());
    bench_engine(c, &el, "socket_tcp", SocketTransport::tcp());
}

/// Spawn 8 rank daemons, handshake, run one exchange-bearing BFS, tear
/// everything down — the fixed cost a short-lived socket fabric pays.
fn bench_fabric_lifecycle(c: &mut Criterion) {
    if SocketTransport::unix().resolve_rankd().is_none() {
        return;
    }
    let el = generate_kronecker(&KroneckerConfig::graph500(10, 8));
    let cfg = BfsConfig::threaded_small(2);
    let mut g = c.benchmark_group("socket_fabric_lifecycle");
    g.sample_size(10);
    g.bench_function("spawn_bfs10_teardown_8ranks", |b| {
        b.iter(|| {
            let mut engine = ClusterBuilder::new(&el, RANKS, cfg)
                .transport(SocketTransport::unix())
                .build()
                .unwrap();
            engine.run(ROOT).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fabrics, bench_fabric_lifecycle);
criterion_main!(benches);
