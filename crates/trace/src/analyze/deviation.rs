//! Model-vs-measured deviation reporting.
//!
//! Compares two counter sets key by key — typically sw-net's flow-level
//! predictions (`netmodel.*`, stripped to bare keys with
//! `CounterSet::section`) against the event simulator's achieved tier
//! busy times (`net.*`, same stripping) — and reports the per-key
//! relative error in integer permille. Busy-time rows validate the
//! shared accounting (both sides charge the same serialization
//! formulas, so they should sit near zero); the makespan row carries
//! the honest deviation, because the flow model averages away queueing
//! and convoy effects the event simulator reproduces.

use crate::metrics::CounterSet;

/// One compared key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviationRow {
    /// Key name (as found in the *predicted* set).
    pub key: String,
    /// Model prediction.
    pub predicted: u64,
    /// Measured value (0 when the key is absent from the measured set).
    pub measured: u64,
    /// `1000 × |measured − predicted| / max(predicted, 1)`.
    pub error_permille: u64,
}

/// The full comparison, rows in key order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeviationReport {
    /// One row per predicted key.
    pub rows: Vec<DeviationRow>,
}

impl DeviationReport {
    /// The row with the largest relative error, if any.
    pub fn worst(&self) -> Option<&DeviationRow> {
        self.rows.iter().max_by_key(|r| r.error_permille)
    }

    /// Flattens the comparison for a metrics snapshot: one
    /// `prefix.<key>.error_permille` entry per row plus a summary
    /// `prefix.max_error_permille`.
    pub fn to_counters(&self, prefix: &str, cs: &mut CounterSet) {
        let prefix = prefix.strip_suffix('.').unwrap_or(prefix);
        for r in &self.rows {
            cs.set(&format!("{prefix}.{}.error_permille", r.key), r.error_permille);
        }
        cs.set(
            &format!("{prefix}.max_error_permille"),
            self.worst().map_or(0, |r| r.error_permille),
        );
    }

    /// Deterministic text table.
    pub fn to_text(&self) -> String {
        let mut out = String::from("key                              predicted    measured    error\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:<32} {:>9} {:>11}    {}\n",
                r.key,
                r.predicted,
                r.measured,
                super::permille_str(r.error_permille)
            ));
        }
        if let Some(w) = self.worst() {
            out.push_str(&format!(
                "worst: {} off by {}\n",
                w.key,
                super::permille_str(w.error_permille)
            ));
        }
        out
    }
}

/// Compares every key of `predicted` against the same key in
/// `measured`. Keys only in `measured` are ignored (the model predicts
/// a subset of what the simulator measures).
pub fn compare(predicted: &CounterSet, measured: &CounterSet) -> DeviationReport {
    let rows = predicted
        .iter()
        .map(|(k, p)| {
            let m = measured.get(k);
            DeviationRow {
                key: k.to_string(),
                predicted: p,
                measured: m,
                error_permille: m.abs_diff(p).saturating_mul(1000) / p.max(1),
            }
        })
        .collect();
    DeviationReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_relative_to_prediction() {
        let mut p = CounterSet::new();
        p.set("makespan_ns", 1000);
        p.set("uplink_busy_ns", 400);
        let mut m = CounterSet::new();
        m.set("makespan_ns", 1300);
        m.set("uplink_busy_ns", 400);
        m.set("extra_measured", 7);
        let d = compare(&p, &m);
        assert_eq!(d.rows.len(), 2, "measured-only keys ignored");
        assert_eq!(d.rows[0].key, "makespan_ns");
        assert_eq!(d.rows[0].error_permille, 300);
        assert_eq!(d.rows[1].error_permille, 0);
        assert_eq!(d.worst().unwrap().key, "makespan_ns");
    }

    #[test]
    fn zero_prediction_does_not_divide_by_zero() {
        let mut p = CounterSet::new();
        p.set("idle_ns", 0);
        let mut m = CounterSet::new();
        m.set("idle_ns", 5);
        let d = compare(&p, &m);
        assert_eq!(d.rows[0].error_permille, 5000);
    }

    #[test]
    fn counters_and_text_are_deterministic() {
        let mut p = CounterSet::new();
        p.set("a", 100);
        let mut m = CounterSet::new();
        m.set("a", 90);
        let d = compare(&p, &m);
        let mut cs = CounterSet::new();
        d.to_counters("model", &mut cs);
        assert_eq!(cs.get("model.a.error_permille"), 100);
        assert_eq!(cs.get("model.max_error_permille"), 100);
        assert_eq!(d.to_text(), d.to_text());
        assert!(d.to_text().contains("worst: a off by 0.100"));
    }
}
