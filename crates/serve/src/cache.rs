//! LRU cache of hot-root level arrays.
//!
//! Every service operation is a function of its root's BFS level
//! array, so the unit of caching is the whole array (`Arc`-shared with
//! in-flight answers). Capacity is small (tens of entries — a scale-20
//! level array is 4 MB), so eviction does a plain O(capacity) scan for
//! the stalest recency stamp instead of carrying an intrusive list.

use std::collections::HashMap;
use std::sync::Arc;
use sw_graph::Vid;

/// An LRU map from root vertex to its level array.
#[derive(Debug)]
pub struct LevelCache {
    cap: usize,
    tick: u64,
    map: HashMap<Vid, (Arc<Vec<u32>>, u64)>,
    evictions: u64,
}

impl LevelCache {
    /// An empty cache holding at most `cap` roots (`cap` = 0 disables
    /// caching entirely).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            tick: 0,
            map: HashMap::with_capacity(cap.saturating_add(1)),
            evictions: 0,
        }
    }

    /// Looks `root` up, refreshing its recency on a hit.
    pub fn get(&mut self, root: Vid) -> Option<Arc<Vec<u32>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&root).map(|(levels, used)| {
            *used = tick;
            Arc::clone(levels)
        })
    }

    /// Inserts (or refreshes) `root`'s level array, evicting the least
    /// recently used entry when over capacity.
    pub fn insert(&mut self, root: Vid, levels: Arc<Vec<u32>>) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        self.map.insert(root, (levels, self.tick));
        while self.map.len() > self.cap {
            let stalest = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(&r, _)| r)
                .expect("non-empty map over capacity");
            self.map.remove(&stalest);
            self.evictions += 1;
        }
    }

    /// Roots currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(v: u32) -> Arc<Vec<u32>> {
        Arc::new(vec![v])
    }

    #[test]
    fn hit_refreshes_recency() {
        let mut c = LevelCache::new(2);
        c.insert(1, arc(1));
        c.insert(2, arc(2));
        assert!(c.get(1).is_some()); // 1 is now fresher than 2
        c.insert(3, arc(3));
        assert!(c.get(2).is_none(), "2 was stalest and must be evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn reinsert_does_not_grow() {
        let mut c = LevelCache::new(2);
        c.insert(1, arc(1));
        c.insert(1, arc(10));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1).unwrap()[0], 10);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LevelCache::new(0);
        c.insert(1, arc(1));
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }
}
