//! Load-imbalance statistics over lanes and supernode groups.
//!
//! All statistics are integer permille (value × 1000) computed in
//! `u128` fixed point with an integer square root, so a report built
//! from a virtual-domain trace is byte-deterministic — no float
//! formatting, no platform-dependent rounding.

use crate::report::TraceReport;
use crate::tracer::{EventKind, NO_LEVEL};
use std::collections::BTreeMap;

/// Integer square root (largest `r` with `r*r <= n`).
pub fn isqrt(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    let mut lo = 1u128;
    let mut hi = 1u128 << (n.ilog2() / 2 + 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if mid.checked_mul(mid).map(|m| m <= n).unwrap_or(false) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Dispersion of a set of work totals: the paper's balance metrics
/// (max/mean ratio, coefficient of variation) in integer permille.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dispersion {
    /// Number of entities (ranks, supernodes).
    pub n: usize,
    /// Largest single total.
    pub max: u64,
    /// Sum of all totals.
    pub sum: u64,
    /// `1000 × max / mean` (0 when the sum is 0).
    pub max_mean_permille: u64,
    /// `1000 × stddev / mean`, population form (0 when the sum is 0).
    pub cv_permille: u64,
}

/// Computes the dispersion of `vals`.
pub fn dispersion(vals: &[u64]) -> Dispersion {
    let n = vals.len();
    let sum: u128 = vals.iter().map(|&v| v as u128).sum();
    let max = vals.iter().copied().max().unwrap_or(0);
    if n == 0 || sum == 0 {
        return Dispersion {
            n,
            max,
            sum: sum as u64,
            ..Default::default()
        };
    }
    // max/mean = max * n / sum.
    let max_mean_permille = (1000u128 * max as u128 * n as u128 / sum) as u64;
    // cv = stddev/mean = sqrt(n*Σv² − S²) / S  (population stddev).
    let sum_sq: u128 = vals.iter().map(|&v| (v as u128) * (v as u128)).sum();
    let var_num = (n as u128 * sum_sq).saturating_sub(sum * sum);
    let cv_permille = (isqrt(1_000_000u128 * var_num) / sum) as u64;
    Dispersion {
        n,
        max,
        sum: sum as u64,
        max_mean_permille,
        cv_permille,
    }
}

/// Per-level rank dispersion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelImbalance {
    /// BFS level (or algorithm round).
    pub level: u32,
    /// Dispersion of per-rank work at this level.
    pub ranks: Dispersion,
}

/// Rank- and supernode-level balance of one trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImbalanceReport {
    /// Rank-lane display names, in lane order (`run` excluded).
    pub rank_names: Vec<String>,
    /// Total span work per rank lane.
    pub rank_work: Vec<u64>,
    /// Dispersion over ranks.
    pub ranks: Dispersion,
    /// Ranks per supernode group used for the grouping (0 = ungrouped).
    pub group_size: usize,
    /// Total span work per supernode (contiguous rank groups).
    pub supernode_work: Vec<u64>,
    /// Dispersion over supernodes.
    pub supernodes: Dispersion,
    /// Per-level rank dispersion, levels in ascending order.
    pub per_level: Vec<LevelImbalance>,
}

/// Extracts balance statistics from `rep`: every span's duration on a
/// rank lane (any lane not named `run`) counts as that rank's work;
/// supernodes are contiguous groups of `group_size` rank lanes
/// (matching `GroupLayout`'s block arrangement). `group_size` of 0, or
/// larger than the rank count, collapses to a single group.
pub fn extract(rep: &TraceReport, group_size: usize) -> ImbalanceReport {
    let rank_lanes: Vec<usize> = (0..rep.lanes.len())
        .filter(|&i| rep.lanes[i].name != "run")
        .collect();
    let rank_names: Vec<String> = rank_lanes
        .iter()
        .map(|&i| rep.lanes[i].name.clone())
        .collect();

    let mut rank_work = vec![0u64; rank_lanes.len()];
    let mut per_level: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for (pos, &i) in rank_lanes.iter().enumerate() {
        for ev in &rep.lanes[i].events {
            if ev.kind != EventKind::Span {
                continue;
            }
            rank_work[pos] += ev.dur_ns;
            if ev.level != NO_LEVEL {
                per_level.entry(ev.level).or_insert_with(|| vec![0; rank_lanes.len()])[pos] +=
                    ev.dur_ns;
            }
        }
    }

    let g = if group_size == 0 || group_size >= rank_work.len().max(1) {
        rank_work.len().max(1)
    } else {
        group_size
    };
    let supernode_work: Vec<u64> = rank_work.chunks(g).map(|c| c.iter().sum()).collect();

    ImbalanceReport {
        ranks: dispersion(&rank_work),
        supernodes: dispersion(&supernode_work),
        rank_names,
        rank_work,
        group_size: g,
        supernode_work,
        per_level: per_level
            .into_iter()
            .map(|(level, w)| LevelImbalance {
                level,
                ranks: dispersion(&w),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{ClockDomain, Tracer};

    #[test]
    fn isqrt_exact_and_floor() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(3), 1);
        assert_eq!(isqrt(4), 2);
        assert_eq!(isqrt(99), 9);
        assert_eq!(isqrt(100), 10);
        assert_eq!(isqrt(u128::from(u64::MAX)) , (1u128 << 32) - 1);
    }

    #[test]
    fn dispersion_balanced_and_skewed() {
        let even = dispersion(&[10, 10, 10, 10]);
        assert_eq!(even.max_mean_permille, 1000);
        assert_eq!(even.cv_permille, 0);

        let skew = dispersion(&[30, 10, 10, 10]);
        // mean 15, max 30 → 2.0×; stddev = sqrt(75) ≈ 8.66, cv ≈ 0.577.
        assert_eq!(skew.max_mean_permille, 2000);
        assert_eq!(skew.cv_permille, 577);

        let empty = dispersion(&[]);
        assert_eq!(empty.max_mean_permille, 0);
        assert_eq!(dispersion(&[0, 0]).cv_permille, 0);
    }

    #[test]
    fn extract_groups_ranks_into_supernodes() {
        let t = Tracer::for_ranks(ClockDomain::VirtualWork, 4, 32);
        for (lane, work) in [(0usize, 40u64), (1, 20), (2, 20), (3, 20)] {
            t.end(lane, "gen", "compute", 0, 0, work);
        }
        t.end(t.run_lane(), "level", "run", 0, 0, 100); // ignored
        let imb = extract(&t.report(), 2);
        assert_eq!(imb.rank_names, vec!["rank0", "rank1", "rank2", "rank3"]);
        assert_eq!(imb.rank_work, vec![40, 20, 20, 20]);
        assert_eq!(imb.supernode_work, vec![60, 40]);
        assert_eq!(imb.ranks.max_mean_permille, 1600);
        assert_eq!(imb.supernodes.max_mean_permille, 1200);
        assert_eq!(imb.per_level.len(), 1);
        assert_eq!(imb.per_level[0].ranks.max_mean_permille, 1600);
    }

    #[test]
    fn zero_group_size_collapses_to_one_group() {
        let t = Tracer::for_ranks(ClockDomain::VirtualWork, 3, 8);
        t.end(0, "gen", "compute", 0, 0, 5);
        let imb = extract(&t.report(), 0);
        assert_eq!(imb.supernode_work, vec![5]);
        assert_eq!(imb.supernodes.max_mean_permille, 1000);
    }
}
