//! Scratch-pad memory (SPM) capacity accounting.
//!
//! Each CPE owns 64 KB of software-managed SPM and nothing else — there is
//! no data cache. Every buffer an algorithm keeps on-core (input staging,
//! destination batches, double buffers) must fit, and the paper's
//! contention-free shuffle is sized precisely by this constraint: with 16
//! consumers × 64 KB and 256 B batches "we can handle up to 1024
//! destinations in practice" (§4.3). [`Spm`] is a bump allocator with
//! overflow errors so that infeasible configurations fail loudly, the way
//! the real Direct-CPE implementation "crashes when the scale increases
//! because of the limitation of SPM size" (§6.1).

use crate::error::ArchError;
use crate::mesh::CpeId;

/// One CPE's scratch-pad: named bump allocations against a fixed capacity.
#[derive(Clone, Debug)]
pub struct Spm {
    owner: CpeId,
    capacity: usize,
    in_use: usize,
    allocations: Vec<(String, usize)>,
}

impl Spm {
    /// A fresh SPM of `capacity` bytes owned by `owner`.
    pub fn new(owner: CpeId, capacity: usize) -> Self {
        Self {
            owner,
            capacity,
            in_use: 0,
            allocations: Vec::new(),
        }
    }

    /// Capacity in bytes (64 KB on SW26010).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Bytes still free.
    pub fn free(&self) -> usize {
        self.capacity - self.in_use
    }

    /// Allocates `bytes` under a descriptive label.
    pub fn alloc(&mut self, label: &str, bytes: usize) -> Result<(), ArchError> {
        if self.in_use + bytes > self.capacity {
            return Err(ArchError::SpmOverflow {
                cpe: self.owner,
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.allocations.push((label.to_string(), bytes));
        Ok(())
    }

    /// Releases every allocation.
    pub fn reset(&mut self) {
        self.in_use = 0;
        self.allocations.clear();
    }

    /// Injects SPM pressure (fault injection: a resident library pinning
    /// scratch-pad the kernel was counting on). The pressure is a
    /// labelled allocation, so it survives until [`Spm::reset`] and
    /// over-commitment fails with the same structured
    /// [`ArchError::SpmOverflow`] as an organically oversized kernel.
    pub fn inject_pressure(&mut self, bytes: usize) -> Result<(), ArchError> {
        self.alloc("fault: injected SPM pressure", bytes)
    }

    /// Labelled allocations, in allocation order.
    pub fn allocations(&self) -> &[(String, usize)] {
        &self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_full() {
        let mut spm = Spm::new(CpeId::new(0, 6), 64 * 1024);
        spm.alloc("input stage", 16 * 1024).unwrap();
        spm.alloc("buckets", 48 * 1024).unwrap();
        assert_eq!(spm.free(), 0);
        let err = spm.alloc("one more byte", 1).unwrap_err();
        assert!(matches!(err, ArchError::SpmOverflow { requested: 1, .. }));
    }

    #[test]
    fn reset_restores_capacity() {
        let mut spm = Spm::new(CpeId::new(1, 1), 1024);
        spm.alloc("x", 1000).unwrap();
        spm.reset();
        assert_eq!(spm.in_use(), 0);
        spm.alloc("y", 1024).unwrap();
    }

    #[test]
    fn allocations_are_recorded() {
        let mut spm = Spm::new(CpeId::new(2, 3), 4096);
        spm.alloc("a", 100).unwrap();
        spm.alloc("b", 200).unwrap();
        assert_eq!(
            spm.allocations(),
            &[("a".to_string(), 100), ("b".to_string(), 200)]
        );
        assert_eq!(spm.in_use(), 300);
    }

    #[test]
    fn injected_pressure_shrinks_the_budget_until_reset() {
        let mut spm = Spm::new(CpeId::new(0, 2), 64 * 1024);
        spm.inject_pressure(60 * 1024).unwrap();
        let err = spm.alloc("buckets", 8 * 1024).unwrap_err();
        assert!(matches!(err, ArchError::SpmOverflow { .. }));
        // The pressure is an ordinary labelled allocation…
        assert!(spm.allocations()[0].0.contains("fault"));
        // …and reset clears it like any other.
        spm.reset();
        spm.alloc("buckets", 8 * 1024).unwrap();
        // Pressure beyond capacity is itself a structured error.
        let mut tiny = Spm::new(CpeId::new(0, 3), 128);
        assert!(tiny.inject_pressure(256).is_err());
    }

    #[test]
    fn exact_fit_is_accepted() {
        let mut spm = Spm::new(CpeId::new(0, 0), 256);
        spm.alloc("exact", 256).unwrap();
        assert_eq!(spm.free(), 0);
    }
}
