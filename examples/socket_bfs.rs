//! Multi-process BFS: the same traversal as `quickstart`, but with every
//! rank an OS process wired together over Unix-domain sockets — the
//! socket fabric from `swbfs::bfs::engine::SocketTransport`.
//!
//! Build the rank daemon first, then run:
//!
//! ```text
//! cargo build --release -p swbfs-core --bin swbfs-rankd
//! cargo run --release --example socket_bfs
//! ```
//!
//! The daemon is discovered next to the current executable or via the
//! `SWBFS_RANKD` environment variable; the example exits with a hint
//! (not a panic) when it is missing.

use swbfs::bfs::engine::SocketTransport;
use swbfs::bfs::{BfsConfig, ClusterBuilder};
use swbfs::graph::{generate_kronecker, KroneckerConfig};
use swbfs::graph500::{select_roots, validate_bfs};

fn main() {
    let transport = SocketTransport::unix();
    let Some(rankd) = transport.resolve_rankd() else {
        eprintln!(
            "swbfs-rankd not found. Build it first:\n\
             \n    cargo build --release -p swbfs-core --bin swbfs-rankd\n\
             \nor point SWBFS_RANKD at the binary."
        );
        std::process::exit(1);
    };
    println!("rank daemon: {}", rankd.display());

    // 1. A scale-14 Kronecker instance (16,384 vertices, ~260k tuples).
    let el = generate_kronecker(&KroneckerConfig::graph500(14, 42));
    println!(
        "generated Kronecker graph: {} vertices, {} edge tuples",
        el.num_vertices,
        el.len()
    );

    // 2. Eight ranks, each a separate `swbfs-rankd` process; the
    //    orchestrator keeps the BFS compute and the children move the
    //    frontier batches across a real socket mesh.
    let cfg = BfsConfig::threaded_small(4);
    let mut cluster = ClusterBuilder::new(&el, 8, cfg)
        .socket()
        .build()
        .expect("cluster build");

    // 3. Traverse and validate — byte-identical semantics to the
    //    in-process backends, proven by the conformance battery.
    let root = select_roots(&el, 1, 7)[0];
    let out = cluster.run(root).expect("bfs over the socket fabric");
    let traversed = validate_bfs(&el, &out).expect("benchmark validation");
    println!(
        "\nBFS from root {root}: reached {} of {} vertices in {} levels \
         ({traversed} edges traversed)",
        out.reached(),
        el.num_vertices,
        out.depth()
    );
    for l in &out.levels {
        println!(
            "  level {:>2} [{:?}] frontier {:>6} scanned {:>8}",
            l.level, l.direction, l.frontier_vertices, l.edges_scanned
        );
    }

    // 4. Teardown is part of the contract: reaping all eight children
    //    happens on drop, or explicitly — after which the transport
    //    reports every child's exit code.
    use swbfs::bfs::engine::Transport;
    cluster.transport_mut().teardown();
    println!(
        "\nchild exit codes after teardown: {:?}",
        cluster.transport().last_exits()
    );
}
