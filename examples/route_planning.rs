//! Route planning on a weighted network — exercises the SSSP kernels and
//! the Δ-stepping refinement side by side.
//!
//! Models a logistics network as a random power-law graph with synthetic
//! per-link costs, then answers: cheapest routes from a depot, how Δ (the
//! bucket width) trades rounds for redundant relaxations, and how the two
//! SSSP kernels compare in exchanged traffic.
//!
//! Run with: `cargo run --release --example route_planning`

use std::time::Instant;
use swbfs::algos::sssp::{sssp_distributed, sssp_oracle, INF};
use swbfs::algos::{sssp_delta_stepping, AlgoCluster};
use swbfs::bfs::config::Messaging;
use swbfs::graph::{generate_kronecker, KroneckerConfig};

fn main() {
    let el = generate_kronecker(&KroneckerConfig::graph500(14, 77));
    let depot = 0u64;
    let max_w = 100;
    println!(
        "logistics network: {} sites, {} links, costs 1..={max_w}\n",
        el.num_vertices,
        el.len()
    );

    // Ground truth.
    let oracle = sssp_oracle(&el, depot, max_w);
    let reachable = oracle.iter().filter(|&&d| d != INF).count();
    let max_cost = oracle.iter().filter(|&&d| d != INF).max().unwrap();
    println!("from depot {depot}: {reachable} sites reachable, costliest route {max_cost}");

    // Distributed Bellman-Ford.
    let mut c = AlgoCluster::new(&el, 8, 4, Messaging::Relay);
    let t = Instant::now();
    let bf = sssp_distributed(&mut c, depot, max_w);
    let t_bf = t.elapsed().as_secs_f64();
    assert_eq!(bf, oracle);
    let bf_records = c.stats.record_hops;

    println!("\nkernel comparison (8 ranks, relay transport):");
    println!(
        "  bellman-ford      : {:.3}s, {:>9} record-hops",
        t_bf, bf_records
    );

    // Δ-stepping at several bucket widths.
    for delta in [5u64, 20, 50, 200] {
        let mut c = AlgoCluster::new(&el, 8, 4, Messaging::Relay);
        let t = Instant::now();
        let ds = sssp_delta_stepping(&mut c, depot, max_w, delta);
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(ds, oracle, "delta {delta} wrong");
        println!(
            "  Δ-stepping Δ={delta:<4}: {:.3}s, {:>9} record-hops",
            dt, c.stats.record_hops
        );
    }

    // A few concrete routes.
    println!("\nsample cheapest-route costs from the depot:");
    for target in [42u64, 999, 7777, 16000] {
        let d = oracle[target as usize % oracle.len()];
        if d == INF {
            println!("  site {target:>6}: unreachable");
        } else {
            println!("  site {target:>6}: cost {d}");
        }
    }
}
