//! Regenerates the §4.3 micro-benchmark: contention-free shuffle
//! throughput on the CPE cluster — the paper reports ≈10 GB/s achieved
//! out of a 14.5 GB/s theoretical bound (half of the 28.9 GB/s memory
//! peak, since reads and writes share the controller).
//!
//! Runs the functional shuffle engine on real records and reports the
//! measured simulated throughput, the analytic bound, and the deadlock
//! verification of the Figure 6 layout.

use sw_arch::{ChipConfig, ShuffleEngine, ShuffleLayout};
use sw_bench::print_table;

fn main() {
    let chip = ChipConfig::sw26010();
    let engine = ShuffleEngine::new(chip, ShuffleLayout::paper_default()).unwrap();

    let routes = engine.verify_deadlock_free().unwrap();
    println!("§4.3 micro-benchmark: contention-free data shuffling\n");
    println!("layout: 4 producer cols, 1 up-router, 1 down-router, 2 consumer cols");
    println!("deadlock check: {routes} producer→consumer routes, channel graph acyclic");
    println!(
        "max destinations (1 consumer SPM bucket per dest, double-buffered 256 B): {}\n",
        engine.layout().max_destinations(&chip)
    );

    let mut rows = Vec::new();
    for (label, items) in [("100K", 100_000u64), ("1M", 1_000_000), ("4M", 4_000_000)] {
        let inputs: Vec<u64> = (0..items).collect();
        let rep = engine
            .run(&inputs, 1024, 8, |x| (*x as usize) % 1024)
            .unwrap();
        rows.push(vec![
            label.to_string(),
            format!("{}", rep.moved_bytes >> 20),
            format!("{:.2}", rep.throughput_gbps()),
            format!("{:.2}", engine.throughput_bound_gbps()),
            format!("{:.2}", chip.cluster_peak_gbps / 2.0),
        ]);
    }
    print_table(
        &[
            "records",
            "MiB moved",
            "measured (GB/s)",
            "pipeline bound (GB/s)",
            "theoretical (GB/s)",
        ],
        &rows,
    );
    println!();
    println!("Paper: \"we achieve 10 GB/s register to register bandwidth out of a");
    println!("theoretical 14.5 GB/s\" — the measured column should sit near 10.");

    // Cycle-stepped cross-check: flits really hop port-by-port at the
    // DMA-paced injection/drain rates.
    let stepper = sw_arch::CycleSim::new(chip, ShuffleLayout::paper_default()).unwrap();
    let (inject, drain) = stepper.paced_intervals();
    let rep = stepper.run(400, inject, drain).unwrap();
    println!(
        "\ncycle-stepped pipeline: {} flits in {} cycles -> {:.2} GB/s \
         (peak {} flits in flight; inject/drain every {inject}/{drain} cycles)",
        rep.delivered, rep.cycles, rep.throughput_gbps, rep.peak_in_flight
    );
}
