//! The BFS benchmark driver (kernel 1): a thin strategy wrapper over the
//! shared [`crate::harness`] loop — this module only decides *which*
//! kernel runs (the superstep engine's BFS) and *how* a result is
//! validated (centralized or distributed checker); generation, root
//! selection, timing, and TEPS statistics live in the harness.

use crate::harness::{build_instance, drive_roots, RootAssessment};
use crate::spec::Graph500Spec;
use crate::teps::TepsStats;
use crate::validate::{validate_bfs, ValidationError};
use std::time::Instant;
use sw_graph::Vid;
use sw_trace::Tracer;
use swbfs_core::{BfsConfig, ClusterBuilder, ExecError};

pub use crate::harness::RootRun;

/// Span names the traced benchmark records on the tracer's run lane.
pub const SPAN_CONSTRUCT: &str = "construct";
/// Kernel (one BFS root) span name.
pub const SPAN_KERNEL: &str = "kernel";
/// Validation span name.
pub const SPAN_VALIDATE: &str = "validate";
/// Category of all benchmark-step spans.
pub const CAT_BENCH: &str = "graph500";

/// Results of a full benchmark run.
#[derive(Clone, Debug)]
pub struct BenchmarkResult {
    /// The instance parameters.
    pub spec: Graph500Spec,
    /// Number of simulated ranks.
    pub ranks: u32,
    /// Graph construction wall time, seconds.
    pub construction_s: f64,
    /// Per-root kernel runs.
    pub runs: Vec<RootRun>,
    /// TEPS statistics over the runs.
    pub stats: TepsStats,
}

/// Why a benchmark could not complete.
#[derive(Debug)]
pub enum BenchmarkError {
    /// The backend failed.
    Exec(ExecError),
    /// A parent tree failed validation — the whole benchmark is void.
    Invalid {
        /// The root whose result failed.
        root: Vid,
        /// The violated rule.
        error: ValidationError,
    },
    /// No eligible roots or degenerate TEPS.
    Degenerate(String),
}

impl std::fmt::Display for BenchmarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchmarkError::Exec(e) => write!(f, "execution failed: {e}"),
            BenchmarkError::Invalid { root, error } => {
                write!(f, "validation failed for root {root}: {error}")
            }
            BenchmarkError::Degenerate(m) => write!(f, "degenerate benchmark: {m}"),
        }
    }
}

impl std::error::Error for BenchmarkError {}

impl From<ExecError> for BenchmarkError {
    fn from(e: ExecError) -> Self {
        BenchmarkError::Exec(e)
    }
}

/// Runs the whole benchmark (steps 1–6) on the threaded backend with
/// `ranks` simulated nodes, validating with the centralized checker.
pub fn run_benchmark(
    spec: &Graph500Spec,
    ranks: u32,
    cfg: BfsConfig,
) -> Result<BenchmarkResult, BenchmarkError> {
    run_benchmark_with(spec, ranks, cfg, false, None)
}

/// Like [`run_benchmark`] but validating with the §5 *distributed*
/// validator (pointer jumping over the same exchanges as the BFS).
pub fn run_benchmark_distributed_validation(
    spec: &Graph500Spec,
    ranks: u32,
    cfg: BfsConfig,
) -> Result<BenchmarkResult, BenchmarkError> {
    run_benchmark_with(spec, ranks, cfg, true, None)
}

/// [`run_benchmark`] with an armed span tracer: benchmark steps
/// (construction, each root's kernel, each validation) land as spans on
/// the tracer's run lane — `level` carries the root's run index — and
/// headline totals accumulate in the tracer's registry under
/// `graph500.*` keys. The BFS cluster itself is armed with the same
/// tracer, so per-rank `gen`/`bucket`/`deliver` spans interleave with
/// the benchmark-step spans in one export.
pub fn run_benchmark_traced(
    spec: &Graph500Spec,
    ranks: u32,
    cfg: BfsConfig,
    distributed_validation: bool,
    tracer: Option<&Tracer>,
) -> Result<BenchmarkResult, BenchmarkError> {
    run_benchmark_with(spec, ranks, cfg, distributed_validation, tracer)
}

fn run_benchmark_with(
    spec: &Graph500Spec,
    ranks: u32,
    cfg: BfsConfig,
    distributed_validation: bool,
    tracer: Option<&Tracer>,
) -> Result<BenchmarkResult, BenchmarkError> {
    // Steps 1–2.
    let (el, roots) = build_instance(spec, 0);
    if roots.is_empty() {
        return Err(BenchmarkError::Degenerate("no eligible roots".into()));
    }
    // Wall spans report real elapsed time; virtual-domain tracers get
    // charged deterministic work (edges built, vertices reached, edges
    // validated) instead.
    let span = |t0: u64, name: &'static str, level: u32, work: u64| {
        if let Some(t) = tracer {
            t.end(t.run_lane(), name, CAT_BENCH, level, t0, work);
        }
    };

    // Step 3 (timed, reported separately — the paper also reports only
    // the kernel in its headline). Uses the distributed construction
    // path: generator chunks are shuffled to endpoint owners before the
    // local CSR builds, as on the real machine.
    let s0 = tracer.map_or(0, |t| t.begin());
    let t0 = Instant::now();
    let (mut cluster, _construction_traffic) =
        ClusterBuilder::new(&el, ranks, cfg).build_distributed()?;
    let construction_s = t0.elapsed().as_secs_f64();
    span(s0, SPAN_CONSTRUCT, sw_trace::NO_LEVEL, el.edges.len() as u64);
    cluster.set_tracer(tracer.cloned());

    // Steps 4–6: the shared loop; this kernel's strategy is the BFS run
    // plus the chosen validator.
    let (runs, stats) = drive_roots(
        &roots,
        |i, root| {
            let s0 = tracer.map_or(0, |t| t.begin());
            let out = cluster.run(root)?;
            span(s0, SPAN_KERNEL, i as u32, out.reached());
            Ok::<_, BenchmarkError>(out)
        },
        |i, root, out| {
            let s0 = tracer.map_or(0, |t| t.begin());
            let traversed = if distributed_validation {
                crate::validate_dist::DistValidator::new(
                    el.num_vertices,
                    ranks,
                    cfg.group_size.min(ranks),
                    cfg.messaging,
                )
                .validate(&el, &out)
            } else {
                validate_bfs(&el, &out)
            }
            .map_err(|error| BenchmarkError::Invalid { root, error })?;
            span(s0, SPAN_VALIDATE, i as u32, traversed);
            if let Some(t) = tracer {
                let reg = t.registry();
                reg.counter("graph500.roots_run").incr();
                reg.counter("graph500.traversed_edges").add(traversed);
                reg.counter("graph500.reached_vertices").add(out.reached());
                reg.gauge("graph500.max_depth").record_max(out.depth() as u64);
            }
            Ok(RootAssessment {
                traversed_edges: traversed,
                reached: out.reached(),
                depth: out.depth(),
            })
        },
        BenchmarkError::Degenerate,
    )?;
    Ok(BenchmarkResult {
        spec: *spec,
        ranks,
        construction_s,
        runs,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_benchmark_completes_and_validates() {
        let spec = Graph500Spec::quick(10, 42, 4);
        let res = run_benchmark(&spec, 4, BfsConfig::threaded_small(2)).unwrap();
        assert_eq!(res.runs.len(), 4);
        assert!(res.stats.harmonic_mean > 0.0);
        for r in &res.runs {
            assert!(r.traversed_edges > 0);
            assert!(r.reached > 1);
            assert!(r.depth >= 1);
        }
    }

    #[test]
    fn direct_and_relay_benchmarks_agree_on_traversal() {
        let spec = Graph500Spec::quick(9, 7, 3);
        let a = run_benchmark(
            &spec,
            5,
            BfsConfig::threaded_small(2).with_messaging(swbfs_core::Messaging::Direct),
        )
        .unwrap();
        let b = run_benchmark(&spec, 5, BfsConfig::threaded_small(2)).unwrap();
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.root, rb.root);
            assert_eq!(ra.traversed_edges, rb.traversed_edges);
            assert_eq!(ra.reached, rb.reached);
        }
    }

    #[test]
    fn distributed_validation_gives_identical_results() {
        let spec = Graph500Spec::quick(9, 4, 3);
        let a = run_benchmark(&spec, 4, BfsConfig::threaded_small(2)).unwrap();
        let b = run_benchmark_distributed_validation(&spec, 4, BfsConfig::threaded_small(2))
            .unwrap();
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.root, y.root);
            assert_eq!(x.traversed_edges, y.traversed_edges);
        }
    }

    #[test]
    fn traced_benchmark_records_spans_and_counters() {
        let spec = Graph500Spec::quick(9, 5, 2);
        let tracer = Tracer::for_ranks(sw_trace::ClockDomain::Wall, 3, 4096);
        let res = run_benchmark_traced(
            &spec,
            3,
            BfsConfig::threaded_small(2),
            false,
            Some(&tracer),
        )
        .unwrap();
        assert_eq!(res.runs.len(), 2);
        let report = tracer.report();
        let run_lane = &report.lanes[tracer.run_lane()];
        assert!(run_lane.events.iter().any(|e| e.name == SPAN_CONSTRUCT));
        let kernels = run_lane.events.iter().filter(|e| e.name == SPAN_KERNEL);
        assert_eq!(kernels.count(), 2, "one kernel span per root");
        assert_eq!(
            run_lane
                .events
                .iter()
                .filter(|e| e.name == SPAN_VALIDATE)
                .count(),
            2
        );
        assert_eq!(report.counters.get("graph500.roots_run"), 2);
        assert!(report.counters.get("graph500.traversed_edges") > 0);
        assert!(report.counters.get("graph500.max_depth") >= 1);
        // The armed cluster traced its own per-rank module phases too.
        assert!(
            report.lanes[0].events.iter().any(|e| e.cat == "compute"),
            "rank lanes carry BFS module spans"
        );
    }

    /// Build-once/serve-forever under the benchmark's rules: a BFS over
    /// an mmap-restored store must pass full Graph500 validation on
    /// every root and answer bit-identically to the cold build — while
    /// copying zero adjacency bytes.
    #[test]
    fn store_restored_engine_passes_benchmark_validation() {
        let spec = Graph500Spec::quick(10, 13, 3);
        let (el, roots) = build_instance(&spec, 0);
        assert!(!roots.is_empty());
        let cfg = BfsConfig::threaded_small(2);
        let mut cold = ClusterBuilder::new(&el, 4, cfg).build().unwrap();
        let dir = std::env::temp_dir().join("sw_g500_store_restart");
        std::fs::remove_dir_all(&dir).ok();
        cold.persist_store(&dir).unwrap();
        let mut warm = ClusterBuilder::from_store_dir(&dir, cfg).build().unwrap();
        for &root in &roots {
            let a = cold.run(root).unwrap();
            let b = warm.run(root).unwrap();
            assert_eq!(a, b, "root {root}: restart diverges from cold build");
            let traversed = validate_bfs(&el, &b)
                .unwrap_or_else(|e| panic!("root {root} failed validation: {e}"));
            assert!(traversed > 0);
        }
        let (mapped, copied, _, parts) = warm.store_counters();
        assert!(mapped > 0 && copied == 0, "restart must be zero-copy");
        assert_eq!(parts, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_rank_benchmark() {
        let spec = Graph500Spec::quick(9, 3, 2);
        let res = run_benchmark(&spec, 1, BfsConfig::threaded_small(1)).unwrap();
        assert_eq!(res.ranks, 1);
        assert_eq!(res.runs.len(), 2);
    }
}
