//! Golden-trace and counter-parity guarantees of the `sw-trace`
//! integration:
//!
//! 1. A virtual-work trace of a fixed-seed BFS is **bit-reproducible**:
//!    two runs export byte-identical `TraceReport` JSON.
//! 2. It is **transport-invariant**: with faults disabled, Direct and
//!    Relay messaging charge identical work (records generated,
//!    records delivered, edges scanned), so the full report is
//!    byte-identical across transports — relay forwarding appears only
//!    in wall-domain traces.
//! 3. The threaded and channel backends report the **same counter key
//!    set** and identical `exchange.*`/`faults.*` values on identical
//!    traffic (the single-merge-path fix).
//! 4. A tracer with a tiny ring **drops instead of blocking** and the
//!    truncated trace still exports well-formed Chrome JSON.

use swbfs_core::{BfsConfig, ChannelCluster, FaultPlan, Messaging, ThreadedCluster};
use sw_graph::{generate_kronecker, EdgeList, KroneckerConfig};
use sw_trace::{check_syntax, ClockDomain, Tracer};

fn graph(scale: u32, seed: u64) -> EdgeList {
    generate_kronecker(&KroneckerConfig::graph500(scale, seed))
}

#[test]
fn virtual_trace_is_bit_reproducible_and_transport_invariant() {
    let el = graph(14, 8);
    let ranks = 8u32;
    let root = 1u64;

    let run_traced = |messaging: Messaging| {
        let cfg = BfsConfig::threaded_small(4).with_messaging(messaging);
        let mut cluster = ThreadedCluster::new(&el, ranks, cfg).unwrap();
        let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, ranks as usize, 1 << 14);
        cluster.set_tracer(Some(tracer.clone()));
        let out = cluster.run(root).unwrap();
        (out.parents, tracer.report().to_json())
    };

    let (pa, ja) = run_traced(Messaging::Relay);
    let (pb, jb) = run_traced(Messaging::Relay);
    assert_eq!(pa, pb, "BFS itself must be deterministic");
    assert_eq!(ja, jb, "same transport, same seed: byte-identical trace");

    let (pc, jc) = run_traced(Messaging::Direct);
    assert_eq!(pa, pc, "transports agree on the parent map");
    assert_eq!(
        ja, jc,
        "virtual-work traces charge transport-invariant work, so \
         Direct and Relay exports must be byte-identical"
    );
    assert!(check_syntax(&ja).is_ok(), "report JSON well-formed");
}

#[test]
fn trace_survives_cluster_reuse_identically() {
    let el = graph(11, 6);
    let cfg = BfsConfig::threaded_small(3);
    let mut cluster = ThreadedCluster::new(&el, 5, cfg).unwrap();
    let mut exports = Vec::new();
    for _ in 0..2 {
        let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, 5, 1 << 12);
        cluster.set_tracer(Some(tracer.clone()));
        cluster.run(9).unwrap();
        exports.push(tracer.report().to_json());
    }
    assert_eq!(
        exports[0], exports[1],
        "a reused cluster with a fresh tracer reproduces the trace"
    );
}

/// The satellite fix: both backends flatten their per-phase
/// [`swbfs_core::exchange::ExchangeStats`] through the one
/// `absorb_exchange` merge, so identical traffic yields identical
/// counter coverage — not just similar numbers, the same key set.
#[test]
fn backends_report_identical_counter_sets_on_identical_traffic() {
    let el = graph(11, 8);
    // Direct + no compression: the channel mesh is point-to-point, so
    // this is the regime where both backends move byte-identical wire
    // traffic.
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
    let mut threaded = ThreadedCluster::new(&el, 6, cfg).unwrap();
    let mut channels = ChannelCluster::new(&el, 6, cfg).unwrap();
    for root in [0u64, 77] {
        let a = threaded.run(root).unwrap();
        let b = channels.run(root).unwrap();
        assert_eq!(a.parents, b.parents);

        let tm = threaded.metrics();
        let cm = channels.metrics();
        let tkeys: Vec<&str> = tm.iter().map(|(k, _)| k).collect();
        let ckeys: Vec<&str> = cm.iter().map(|(k, _)| k).collect();
        assert_eq!(tkeys, ckeys, "identical counter key sets (root {root})");
        for (k, v) in tm.iter() {
            if k.starts_with("exchange.") || k.starts_with("faults.") {
                assert_eq!(
                    v,
                    cm.get(k),
                    "counter {k} diverges across backends (root {root})"
                );
            }
        }
    }
}

#[test]
fn backends_count_identical_fault_telemetry() {
    let el = graph(11, 8);
    let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
    let plan = FaultPlan::lossy(0xBADD);
    let mut threaded = ThreadedCluster::new(&el, 4, cfg)
        .unwrap()
        .with_fault_plan(plan.clone());
    let mut channels = ChannelCluster::new(&el, 4, cfg)
        .unwrap()
        .with_fault_plan(plan);
    let a = threaded.run(3).unwrap();
    let b = channels.run(3).unwrap();
    assert_eq!(a.parents, b.parents, "survivable faults change nothing");
    assert_eq!(
        threaded.fault_counters(),
        channels.fault_counters(),
        "same plan, same traffic, same fault counters"
    );
    assert!(
        threaded.fault_counters().0 > 0 || threaded.fault_counters().1 > 0,
        "the lossy plan actually fired"
    );
}

#[test]
fn tiny_ring_drops_events_without_blocking() {
    let el = graph(12, 8);
    let cfg = BfsConfig::threaded_small(4);
    let mut cluster = ThreadedCluster::new(&el, 6, cfg).unwrap();
    // 8 events per lane is far less than a scale-12 BFS records.
    let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, 6, 8);
    cluster.set_tracer(Some(tracer.clone()));
    cluster.run(0).unwrap();
    assert!(
        tracer.dropped_events() > 0,
        "the tiny ring must have overflowed"
    );
    let report = tracer.report();
    assert!(report.total_dropped() > 0);
    assert!(report.total_events() > 0, "the first events were kept");
    // Truncated, but still structurally valid exports.
    check_syntax(&report.chrome_trace_json()).expect("chrome export well-formed");
    check_syntax(&report.to_json()).expect("report export well-formed");
    check_syntax(&report.metrics_json()).expect("metrics export well-formed");
}

#[test]
fn wall_trace_smoke() {
    let el = graph(10, 4);
    let cfg = BfsConfig::threaded_small(2);
    let mut cluster = ThreadedCluster::new(&el, 4, cfg).unwrap();
    let tracer = Tracer::for_ranks(ClockDomain::Wall, 4, 1 << 12);
    cluster.set_tracer(Some(tracer.clone()));
    cluster.run(5).unwrap();
    let report = tracer.report();
    assert_eq!(report.domain, ClockDomain::Wall);
    // Every rank lane saw compute spans; the run lane saw level spans.
    for lane in &report.lanes[..4] {
        assert!(
            lane.events.iter().any(|e| e.cat == "compute"),
            "lane {} has no compute spans",
            lane.name
        );
    }
    assert!(report.lanes[4].events.iter().any(|e| e.name == "level"));
    check_syntax(&report.chrome_trace_json()).expect("chrome export well-formed");
}

/// Arming the live telemetry plane must be a pure observer: the same
/// fixed-seed BFS produces byte-identical deterministic counters and
/// an identical virtual-work trace whether the plane is armed or not —
/// the only difference is that the armed run leaves wall-clock
/// exchange samples behind in the `live.*` namespace.
#[test]
fn armed_live_plane_never_perturbs_deterministic_state() {
    use sw_trace::live;

    let el = graph(12, 8);
    let run = || {
        let cfg = BfsConfig::threaded_small(4).with_messaging(Messaging::Direct);
        let mut cluster = ThreadedCluster::new(&el, 6, cfg).unwrap();
        let tracer = Tracer::for_ranks(ClockDomain::VirtualWork, 6, 1 << 14);
        cluster.set_tracer(Some(tracer.clone()));
        let out = cluster.run(1).unwrap();
        (out.parents, cluster.metrics().to_json(), tracer.report().to_json())
    };

    live::set_armed(false);
    let (pa, ma, ja) = run();

    live::set_armed(true);
    let before = live::global()
        .histogram_snapshot("exchange.micros")
        .map_or(0, |s| s.count());
    let (pb, mb, jb) = run();
    live::set_armed(false);

    assert_eq!(pa, pb, "arming live telemetry changed the BFS result");
    assert_eq!(ma, mb, "arming live telemetry moved a deterministic counter");
    assert_eq!(ja, jb, "arming live telemetry perturbed the virtual trace");

    let after = live::global()
        .histogram_snapshot("exchange.micros")
        .map_or(0, |s| s.count());
    assert!(
        after > before,
        "the armed run must have recorded exchange samples ({before} -> {after})"
    );
}
